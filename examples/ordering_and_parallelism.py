"""Reproduce the paper's two generic optimisations on a small workload.

Part 1 — data ordering (Section 3.2): train sparse logistic regression over a
label-clustered table with the three ordering policies and print epochs/time
to a common objective target.

Part 2 — parallelism (Section 3.3): train the same model with the pure-UDA
(model-averaging) scheme and the three shared-memory schemes and print the
final objective after a fixed number of epochs, plus the modelled per-epoch
speed-ups of Figure 9(B).

Run with:  python examples/ordering_and_parallelism.py
"""

from __future__ import annotations

from repro.core import (
    IGDConfig,
    PureUDAParallelism,
    SharedMemoryParallelism,
    modeled_speedup,
    train,
)
from repro.data import load_classification_table, make_sparse_classification
from repro.db import Database, SegmentedDatabase
from repro.tasks import LogisticRegressionTask


def ordering_study() -> None:
    print("=== Data ordering (Section 3.2) ===")
    dataset = make_sparse_classification(600, 3000, nonzeros_per_example=15, seed=0)
    dataset = dataset.clustered_by_label()  # the pathological in-RDBMS order
    step_size = {"kind": "epoch_decay", "alpha0": 0.05, "decay": 0.9}

    results = {}
    for policy in ("shuffle_always", "shuffle_once", "clustered"):
        database = Database("postgres", seed=0)
        load_classification_table(database, "docs", dataset.examples, sparse=True)
        results[policy] = train(
            LogisticRegressionTask(dataset.dimension),
            database,
            "docs",
            config=IGDConfig(step_size=step_size, max_epochs=15, ordering=policy, seed=0),
        )

    target = min(min(r.objective_trace()) for r in results.values()) * 1.05
    for policy, result in results.items():
        epochs = result.epochs_to_reach(target)
        seconds = result.time_to_reach(target)
        print(f"  {policy:>15}: epochs to target = {epochs}, "
              f"time = {f'{seconds:.2f}s' if seconds else 'not reached'}, "
              f"shuffle cost = {result.shuffle_seconds:.3f}s")


def parallelism_study() -> None:
    print("\n=== Parallelising IGD (Section 3.3) ===")
    dataset = make_sparse_classification(600, 3000, nonzeros_per_example=15, seed=1)
    step_size = {"kind": "epoch_decay", "alpha0": 0.05, "decay": 0.9}
    epochs = 5
    workers = 8

    segmented = SegmentedDatabase(workers, "dbms_b", seed=0)
    load_classification_table(segmented, "docs", dataset.examples, sparse=True)
    pure = train(
        LogisticRegressionTask(dataset.dimension), segmented, "docs",
        config=IGDConfig(step_size=step_size, max_epochs=epochs,
                         parallelism=PureUDAParallelism(), seed=0),
    )
    print(f"  pure UDA (model averaging): final objective {pure.final_objective:.1f}")

    for scheme in ("lock", "aig", "nolock"):
        database = Database("postgres", seed=0)
        load_classification_table(database, "docs", dataset.examples, sparse=True)
        result = train(
            LogisticRegressionTask(dataset.dimension), database, "docs",
            config=IGDConfig(step_size=step_size, max_epochs=epochs,
                             parallelism=SharedMemoryParallelism(scheme=scheme, workers=workers),
                             seed=0),
        )
        print(f"  shared memory [{scheme:>6}]: final objective {result.final_objective:.1f}")

    print("\n  Modelled per-epoch speed-up at 8 workers (Figure 9B):")
    for scheme in ("nolock", "aig", "pure_uda", "lock"):
        speedup = modeled_speedup(1.0, scheme, workers, model_passing_cost=5.0,
                                  model_parameters=3000)
        print(f"    {scheme:>8}: {speedup:.2f}x")


if __name__ == "__main__":
    ordering_study()
    parallelism_study()
