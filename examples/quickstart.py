"""Quickstart: train an SVM inside the database, exactly like Section 2.1.

Creates an in-memory database, loads a LabeledPapers-style table, installs the
MADlib-mimicking front end and runs

    SELECT SVMTrain('myModel', 'labeledpapers', 'vec', 'label');

then evaluates the persisted model with a second SQL call.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.data import load_classification_table, make_dense_classification
from repro.db import Database
from repro.frontend import install_frontend, load_model


def main() -> None:
    # 1. Stand up a database (the PostgreSQL-like personality) and load data.
    database = Database("postgres", seed=0)
    dataset = make_dense_classification(num_examples=1000, dimension=54, seed=0)
    load_classification_table(database, "labeledpapers", dataset.examples, sparse=False)
    print(f"Loaded {len(dataset)} labelled examples into table 'labeledpapers'.")

    # 2. Install the SQL front end (SVMTrain / LRTrain / ... / predictors).
    install_frontend(database)

    # 3. Train with one SQL statement — the query from the paper.
    message = database.execute(
        "SELECT SVMTrain('myModel', 'labeledpapers', 'vec', 'label')"
    ).scalar()
    print(message)

    # 4. The model is persisted as an ordinary table; query it like any other.
    coefficients = load_model(database, "myModel")["w"]
    print(f"Model has {coefficients.shape[0]} coefficients; "
          f"largest magnitude = {abs(coefficients).max():.3f}")

    # 5. Apply the model with SQL as well.
    accuracy = database.execute(
        "SELECT ClassifyAccuracy('myModel', 'labeledpapers', 'vec', 'label')"
    ).scalar()
    print(f"Training-set accuracy: {accuracy:.3f}")

    # 6. And score new rows into an output table.
    print(database.execute(
        "SELECT SVMPredict('myModel', 'labeledpapers', 'vec', 'paper_scores')"
    ).scalar())
    print(f"Scores table holds {len(database.table('paper_scores'))} rows.")


if __name__ == "__main__":
    main()
