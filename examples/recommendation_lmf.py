"""Recommendation with low-rank matrix factorisation (the paper's LMF task).

Builds a MovieLens-shaped sparse rating matrix, trains the factorisation with
Bismarck's IGD-as-a-UDA through the Python API (showing the programmatic side
of the architecture rather than the SQL front end), and compares against the
batch-gradient "native tool" baseline — a miniature Figure 7(A) for LMF.

Run with:  python examples/recommendation_lmf.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import train_batch_matrix_factorization
from repro.core import IGDConfig, train
from repro.data import load_ratings_table, make_ratings
from repro.db import Database
from repro.tasks import LowRankMatrixFactorizationTask


def main() -> None:
    # A 300-user x 200-item rating matrix observed on 6000 cells.
    ratings = make_ratings(num_rows=300, num_cols=200, num_ratings=6000, rank=5, seed=1)
    print(f"Generated {len(ratings)} ratings "
          f"({100 * ratings.density():.2f}% of the matrix observed).")

    database = Database("postgres", seed=0)
    load_ratings_table(database, "movielens_like", ratings.examples)

    task = LowRankMatrixFactorizationTask(
        ratings.num_rows, ratings.num_cols, rank=5, mu=0.01
    )
    result = train(
        task,
        database,
        "movielens_like",
        config=IGDConfig(step_size=0.05, max_epochs=20, ordering="shuffle_once", seed=0),
    )
    rmse = task.reconstruction_rmse(result.model, ratings.examples)
    print(f"Bismarck LMF: {result.epochs_run} epochs, "
          f"objective {result.final_objective:.1f}, RMSE {rmse:.3f}, "
          f"{result.total_seconds:.2f}s")

    # The native-tool analogue: full-batch gradient descent over all ratings.
    baseline = train_batch_matrix_factorization(
        LowRankMatrixFactorizationTask(ratings.num_rows, ratings.num_cols, rank=5, mu=0.01),
        ratings.examples,
        step_size=0.002,
        iterations=20,
    )
    baseline_rmse = LowRankMatrixFactorizationTask(
        ratings.num_rows, ratings.num_cols, rank=5, mu=0.01
    ).reconstruction_rmse(baseline.model, ratings.examples)
    print(f"Batch-gradient baseline: objective {baseline.final_objective:.1f}, "
          f"RMSE {baseline_rmse:.3f}, {baseline.total_seconds:.2f}s")

    # Use the factors for a recommendation: top unseen items for one user.
    user = 7
    seen = {example.col for example in ratings.examples if example.row == user}
    scores = result.model["L"][user] @ result.model["R"].T
    recommended = [item for item in np.argsort(-scores) if item not in seen][:5]
    print(f"Top-5 recommendations for user {user}: {recommended}")


if __name__ == "__main__":
    main()
