"""Next-generation analytics inside the database: CRF sequence labelling.

The paper's point about "next generation tasks" is that the same UDA-based
architecture that runs LR/SVM also runs a linear-chain conditional random
field — no new code path in the engine.  This example trains a CRF tagger on
a CoNLL-shaped synthetic corpus through the SQL front end, decodes with
Viterbi, and reports token accuracy.

Run with:  python examples/text_labeling_crf.py
"""

from __future__ import annotations

from repro.data import load_sequences_table, make_sequences
from repro.db import Database
from repro.frontend import install_frontend, load_model
from repro.tasks import ConditionalRandomFieldTask


def main() -> None:
    corpus = make_sequences(num_sequences=80, mean_length=12, num_labels=4, seed=2)
    print(f"Generated {len(corpus)} sequences, {corpus.num_tokens} tokens, "
          f"{corpus.num_features} features, {corpus.num_labels} labels.")

    database = Database("postgres", seed=0)
    load_sequences_table(database, "sentences", corpus.examples)
    install_frontend(database)

    message = database.execute(
        "SELECT CRFTrain('chunker', 'sentences', 'tokens', 'labels', 0.2, 8)"
    ).scalar()
    print(message)

    # Pull the persisted model back out and decode with Viterbi.
    model = load_model(database, "chunker")
    task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
    accuracy = task.token_accuracy(model, corpus.examples)
    print(f"Token accuracy on the training corpus: {accuracy:.3f}")

    example = corpus.examples[0]
    predicted = task.predict(model, example)
    print("Example sequence:")
    print(f"  gold labels:      {list(example.labels)}")
    print(f"  predicted labels: {predicted}")


if __name__ == "__main__":
    main()
