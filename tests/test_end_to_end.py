"""End-to-end integration tests crossing all layers of the system."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    IGDConfig,
    LossAggregate,
    PureUDAParallelism,
    SharedMemoryParallelism,
    train,
)
from repro.data import (
    load_classification_table,
    load_ratings_table,
    make_dense_classification,
    make_ratings,
    make_sparse_classification,
)
from repro.db import Database, SegmentedDatabase
from repro.frontend import install_frontend, load_model
from repro.tasks import LogisticRegressionTask, LowRankMatrixFactorizationTask, SVMTask


class TestSQLWorkflow:
    """The full Section-2.1 workflow: load, train via SQL, predict via SQL."""

    def test_classification_pipeline(self):
        database = Database("postgres", seed=0)
        full = make_dense_classification(280, 8, seed=0)
        train_examples, test_examples = full.examples[:200], full.examples[200:]
        load_classification_table(database, "train_papers", train_examples)
        load_classification_table(database, "test_papers", test_examples)
        install_frontend(database)

        database.execute("SELECT SVMTrain('clf', 'train_papers', 'vec', 'label')")
        train_accuracy = database.execute(
            "SELECT ClassifyAccuracy('clf', 'train_papers', 'vec', 'label')"
        ).scalar()
        test_accuracy = database.execute(
            "SELECT ClassifyAccuracy('clf', 'test_papers', 'vec', 'label')"
        ).scalar()
        assert train_accuracy > 0.85
        assert test_accuracy > 0.75

    def test_recommendation_pipeline(self):
        database = Database("postgres", seed=0)
        ratings = make_ratings(40, 25, 500, rank=3, noise=0.05, seed=0)
        load_ratings_table(database, "ratings", ratings.examples)
        install_frontend(database)
        database.execute(
            "SELECT LMFTrain('recsys', 'ratings', 'row_id', 'col_id', 'rating', 3, 0.05, 15)"
        )
        model = load_model(database, "recsys")
        task = LowRankMatrixFactorizationTask(40, 25, rank=3)
        rmse = task.reconstruction_rmse(model, ratings.examples)
        observed_scale = float(np.std([e.value for e in ratings.examples]))
        assert rmse < observed_scale  # clearly better than predicting the mean


class TestCrossEngineConsistency:
    """The same training run must produce comparable quality on every engine."""

    def test_three_personalities_reach_similar_objective(self):
        dataset = make_dense_classification(150, 6, seed=1)
        objectives = {}
        for engine in ("postgres", "dbms_a", "dbms_b"):
            database = Database(engine, seed=0)
            load_classification_table(database, "papers", dataset.examples)
            result = train(
                LogisticRegressionTask(6), database, "papers",
                max_epochs=5, step_size=0.1, ordering="shuffle_once", seed=0,
            )
            objectives[engine] = result.final_objective
        values = list(objectives.values())
        assert max(values) / min(values) < 1.05

    def test_serial_vs_pure_uda_vs_shared_memory_quality(self):
        dataset = make_sparse_classification(120, 100, nonzeros_per_example=6, seed=2)
        serial_db = Database("postgres", seed=0)
        load_classification_table(serial_db, "docs", dataset.examples, sparse=True)
        serial = train(
            LogisticRegressionTask(100), serial_db, "docs", max_epochs=6, step_size=0.1, seed=0
        )

        seg_db = SegmentedDatabase(4, "dbms_b", seed=0)
        load_classification_table(seg_db, "docs", dataset.examples, sparse=True)
        pure = train(
            LogisticRegressionTask(100), seg_db, "docs", max_epochs=6, step_size=0.1,
            parallelism=PureUDAParallelism(), seed=0,
        )
        shm_db = Database("postgres", seed=0)
        load_classification_table(shm_db, "docs", dataset.examples, sparse=True)
        shm = train(
            LogisticRegressionTask(100), shm_db, "docs", max_epochs=6, step_size=0.1,
            parallelism=SharedMemoryParallelism(scheme="nolock", workers=4), seed=0,
        )
        # All three converge; shared-memory tracks serial closely, while model
        # averaging may lag (Figure 9A) but must still make clear progress.
        assert shm.final_objective < serial.objective_trace()[0] * 0.8
        assert pure.final_objective < serial.objective_trace()[0] * 0.9
        assert abs(shm.final_objective - serial.final_objective) / serial.final_objective < 0.25


class TestLossUDAConsistency:
    def test_loss_uda_matches_task_objective(self):
        dataset = make_dense_classification(100, 5, seed=3)
        database = Database("postgres", seed=0)
        load_classification_table(database, "papers", dataset.examples)
        task = SVMTask(5)
        result = train(task, database, "papers", max_epochs=3, step_size=0.05, seed=0)
        via_uda = database.run_aggregate("papers", LossAggregate(task, result.model))
        direct = task.total_loss(result.model, dataset.examples)
        assert via_uda == pytest.approx(direct, rel=1e-9)

    def test_reported_objective_matches_loss_uda(self):
        dataset = make_dense_classification(100, 5, seed=3)
        database = Database("postgres", seed=0)
        load_classification_table(database, "papers", dataset.examples)
        task = SVMTask(5)
        result = train(
            task, database, "papers",
            config=IGDConfig(step_size=0.05, max_epochs=2, ordering="clustered", seed=0),
        )
        recomputed = database.run_aggregate("papers", LossAggregate(task, result.model))
        assert result.final_objective == pytest.approx(recomputed, rel=1e-9)
