"""Tests for the linear-model tasks: least squares, LR, SVM, lasso."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Model, train_in_memory
from repro.data import make_catx, make_dense_classification, make_sparse_classification
from repro.tasks import (
    LassoTask,
    LinearRegressionTask,
    LogisticRegressionTask,
    OneDimensionalLeastSquares,
    SVMTask,
    SupervisedExample,
    catx_closed_form_final,
    catx_closed_form_iterates,
    dot_product,
    feature_dimension,
    scale_and_add,
    sigmoid,
)
from repro.tasks.logistic_regression import log1p_exp


class TestFeatureHelpers:
    def test_dot_product_dense_and_sparse(self):
        weights = np.array([1.0, 2.0, 3.0])
        assert dot_product(weights, np.array([1.0, 0.0, 1.0])) == pytest.approx(4.0)
        assert dot_product(weights, {0: 2.0, 2: 1.0}) == pytest.approx(5.0)

    def test_scale_and_add(self):
        weights = np.zeros(3)
        scale_and_add(weights, np.array([1.0, 1.0, 0.0]), 2.0)
        np.testing.assert_allclose(weights, [2.0, 2.0, 0.0])
        scale_and_add(weights, {2: 4.0}, 0.5)
        np.testing.assert_allclose(weights, [2.0, 2.0, 2.0])

    def test_feature_dimension(self):
        assert feature_dimension(np.zeros(7)) == 7
        assert feature_dimension({3: 1.0, 10: 2.0}) == 11
        assert feature_dimension({}) == 0

    def test_sigmoid_stability(self):
        assert sigmoid(1000.0) == pytest.approx(1.0)
        assert sigmoid(-1000.0) == pytest.approx(0.0)
        assert sigmoid(0.0) == pytest.approx(0.5)

    def test_log1p_exp_stability(self):
        assert log1p_exp(100.0) == pytest.approx(100.0)
        assert log1p_exp(-100.0) == pytest.approx(0.0)
        assert log1p_exp(0.0) == pytest.approx(np.log(2.0))


class TestOneDimensionalLeastSquares:
    def test_gradient_step_moves_towards_label(self):
        task = OneDimensionalLeastSquares()
        model = task.initial_model()
        task.gradient_step(model, SupervisedExample(1.0, 2.0), 0.5)
        assert model["w"][0] == pytest.approx(1.0)

    def test_loss_value(self):
        task = OneDimensionalLeastSquares()
        model = Model({"w": np.array([3.0])})
        assert task.loss(model, SupervisedExample(1.0, 1.0)) == pytest.approx(2.0)

    def test_converges_to_mean_on_catx(self):
        task = OneDimensionalLeastSquares()
        dataset = make_catx(100)
        result = train_in_memory(task, dataset.examples, epochs=20, step_size=0.05, seed=0)
        assert abs(result.model["w"][0]) < 0.1

    def test_closed_form_matches_simulation(self):
        """Appendix C: the unfolded closed form equals the recursive dynamics."""
        labels = [1.0] * 10 + [-1.0] * 10
        iterates = catx_closed_form_iterates(labels, w0=1.0, alpha=0.2)
        assert iterates[0] == 1.0
        final = catx_closed_form_final(labels, w0=1.0, alpha=0.2)
        assert iterates[-1] == pytest.approx(final)

    def test_closed_form_clustered_order_approaches_minus_one(self):
        """Appendix C: with sigma(i)=i and large enough alpha, w -> ~-1."""
        n = 200
        labels = [1.0] * n + [-1.0] * n
        final = catx_closed_form_final(labels, w0=0.0, alpha=0.1)
        assert final < -0.9

    def test_example_from_row(self):
        task = OneDimensionalLeastSquares()
        example = task.example_from_row({"x": 1.0, "y": -1.0})
        assert example.features == 1.0
        assert example.label == -1.0


class TestLinearRegression:
    def test_recovers_true_weights(self):
        rng = np.random.default_rng(0)
        true_w = np.array([1.0, -2.0, 0.5])
        examples = []
        for _ in range(200):
            x = rng.normal(size=3)
            examples.append(SupervisedExample(x, float(x @ true_w) + 0.01 * rng.normal()))
        task = LinearRegressionTask(3)
        result = train_in_memory(task, examples, epochs=30, step_size=0.05, seed=0)
        np.testing.assert_allclose(result.model["w"], true_w, atol=0.1)

    def test_predict(self):
        task = LinearRegressionTask(2)
        model = Model({"w": np.array([2.0, 1.0])})
        assert task.predict(model, SupervisedExample(np.array([1.0, 3.0]), 0.0)) == pytest.approx(5.0)


class TestLogisticRegression:
    def test_gradient_matches_figure4_snippet(self):
        """One step must equal w += alpha * y * sigmoid(-y w.x) * x."""
        task = LogisticRegressionTask(3)
        model = Model({"w": np.array([0.1, -0.2, 0.3])})
        x = np.array([1.0, 2.0, -1.0])
        y = -1.0
        wx = float(model["w"] @ x)
        expected = model["w"] + 0.2 * y * sigmoid(-wx * y) * x
        task.gradient_step(model, SupervisedExample(x, y), 0.2)
        np.testing.assert_allclose(model["w"], expected)

    def test_loss_is_logistic(self):
        task = LogisticRegressionTask(1)
        model = Model({"w": np.array([1.0])})
        example = SupervisedExample(np.array([2.0]), 1.0)
        assert task.loss(model, example) == pytest.approx(np.log1p(np.exp(-2.0)))

    def test_training_improves_accuracy(self):
        dataset = make_dense_classification(300, 8, seed=1)
        task = LogisticRegressionTask(8)
        result = train_in_memory(task, dataset.examples, epochs=10, step_size=0.1, seed=0)
        correct = sum(
            1
            for example in dataset.examples
            if task.classify(result.model, example) == (1 if example.label > 0 else -1)
        )
        assert correct / len(dataset) > 0.85

    def test_sparse_features_supported(self):
        dataset = make_sparse_classification(150, 60, nonzeros_per_example=5, seed=1)
        task = LogisticRegressionTask(60)
        result = train_in_memory(task, dataset.examples, epochs=8, step_size=0.1, seed=0)
        assert result.objective_trace()[-1] < result.objective_trace()[0]

    def test_predict_is_probability(self):
        task = LogisticRegressionTask(2)
        model = Model({"w": np.array([10.0, 0.0])})
        probability = task.predict(model, SupervisedExample(np.array([1.0, 0.0]), 1.0))
        assert 0.99 < probability <= 1.0

    def test_mu_installs_l1_proximal(self):
        from repro.core import L1Proximal

        task = LogisticRegressionTask(3, mu=0.5)
        assert isinstance(task.proximal, L1Proximal)
        assert task.proximal.mu == 0.5

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            LogisticRegressionTask(0)


class TestSVM:
    def test_gradient_matches_figure4_snippet(self):
        """Update only when 1 - y*w.x > 0, by alpha * y * x."""
        task = SVMTask(2)
        model = Model({"w": np.array([0.0, 0.0])})
        x = np.array([1.0, -1.0])
        task.gradient_step(model, SupervisedExample(x, 1.0), 0.5)
        np.testing.assert_allclose(model["w"], [0.5, -0.5])

    def test_no_update_outside_margin(self):
        task = SVMTask(2)
        model = Model({"w": np.array([10.0, 0.0])})
        before = model["w"].copy()
        task.gradient_step(model, SupervisedExample(np.array([1.0, 0.0]), 1.0), 0.5)
        np.testing.assert_allclose(model["w"], before)

    def test_hinge_loss(self):
        task = SVMTask(2)
        model = Model({"w": np.array([1.0, 0.0])})
        assert task.loss(model, SupervisedExample(np.array([0.5, 0.0]), 1.0)) == pytest.approx(0.5)
        assert task.loss(model, SupervisedExample(np.array([2.0, 0.0]), 1.0)) == 0.0

    def test_training_separates_data(self):
        dataset = make_dense_classification(300, 8, seed=2)
        task = SVMTask(8)
        result = train_in_memory(task, dataset.examples, epochs=10, step_size=0.05, seed=0)
        correct = sum(
            1
            for example in dataset.examples
            if task.classify(result.model, example) == (1 if example.label > 0 else -1)
        )
        assert correct / len(dataset) > 0.85


class TestLasso:
    def test_lasso_produces_sparser_model_than_plain_regression(self):
        rng = np.random.default_rng(0)
        true_w = np.zeros(20)
        true_w[:3] = [2.0, -1.5, 1.0]
        examples = []
        for _ in range(200):
            x = rng.normal(size=20)
            examples.append(SupervisedExample(x, float(x @ true_w) + 0.05 * rng.normal()))
        lasso = LassoTask(20, mu=0.5)
        plain = LinearRegressionTask(20)
        lasso_result = train_in_memory(lasso, examples, epochs=20, step_size=0.02, seed=0)
        plain_result = train_in_memory(plain, examples, epochs=20, step_size=0.02, seed=0)
        lasso_small = np.sum(np.abs(lasso_result.model["w"]) < 1e-3)
        plain_small = np.sum(np.abs(plain_result.model["w"]) < 1e-3)
        assert lasso_small > plain_small

    def test_lasso_rejects_negative_mu(self):
        with pytest.raises(ValueError):
            LassoTask(5, mu=-0.1)

    def test_objective_includes_penalty(self):
        task = LassoTask(2, mu=1.0)
        model = Model({"w": np.array([1.0, -1.0])})
        example = SupervisedExample(np.array([0.0, 0.0]), 0.0)
        assert task.objective(model, [example]) == pytest.approx(2.0)
