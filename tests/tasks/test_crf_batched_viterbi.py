"""Batched Viterbi decode: parity with the per-sequence kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_sequences
from repro.tasks.crf import ConditionalRandomFieldTask, SequenceBatch, SequenceExample


@pytest.fixture(scope="module")
def corpus():
    return make_sequences(40, num_labels=4, seed=9)


@pytest.fixture(scope="module")
def trained_model(corpus):
    task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
    rng = np.random.default_rng(2)
    model = task.initial_model()
    model["emission"][:] = rng.normal(scale=0.8, size=model["emission"].shape)
    model["transition"][:] = rng.normal(scale=0.8, size=model["transition"].shape)
    return task, model


class TestPredictBatch:
    def test_matches_per_sequence_predict_exactly(self, corpus, trained_model):
        task, model = trained_model
        batch = SequenceBatch(list(corpus.examples))
        batched = task.predict_batch(model, batch)
        assert batched == [task.predict(model, e) for e in corpus.examples]

    def test_single_sequence_and_single_token(self, trained_model):
        task, model = trained_model
        one_token = SequenceExample(token_features=((0, 2),), labels=(1,))
        batch = SequenceBatch([one_token])
        assert task.predict_batch(model, batch) == [task.predict(model, one_token)]

    def test_mixed_lengths_and_empty_feature_tokens(self, trained_model):
        task, model = trained_model
        examples = [
            SequenceExample(token_features=((0,), (), (1, 3)), labels=(0, 1, 2)),
            SequenceExample(token_features=((2,),), labels=(1,)),
            SequenceExample(token_features=((), (), (), (0,), (1,)), labels=(0, 0, 1, 2, 3)),
        ]
        batch = SequenceBatch(examples)
        assert task.predict_batch(model, batch) == [task.predict(model, e) for e in examples]

    def test_empty_batch(self, trained_model):
        task, model = trained_model
        assert task.predict_batch(model, SequenceBatch([])) == []

    def test_gathered_batch_decodes_identically(self, corpus, trained_model):
        """take() reorders the cached flat arrays; decode must follow."""
        task, model = trained_model
        batch = SequenceBatch(list(corpus.examples))
        order = np.random.default_rng(4).permutation(len(corpus.examples))
        gathered = batch.take(order)
        assert task.predict_batch(model, gathered) == [
            task.predict(model, corpus.examples[int(i)]) for i in order
        ]


class TestTokenAccuracy:
    def test_accuracy_equals_per_sequence_computation(self, corpus, trained_model):
        task, model = trained_model
        correct = 0
        total = 0
        for example in corpus.examples:
            predicted = task.predict(model, example)
            correct += sum(1 for p, g in zip(predicted, example.labels) if p == g)
            total += len(example)
        assert task.token_accuracy(model, corpus.examples) == pytest.approx(correct / total)

    def test_accepts_cached_sequence_batch(self, corpus, trained_model):
        task, model = trained_model
        batch = SequenceBatch(list(corpus.examples))
        assert task.token_accuracy(model, batch) == task.token_accuracy(model, corpus.examples)

    def test_empty_corpus(self, trained_model):
        task, model = trained_model
        assert task.token_accuracy(model, []) == 0.0
