"""Tests for the structured tasks: LMF, CRF, Kalman smoothing, portfolio."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Model, train_in_memory
from repro.data import (
    make_noisy_timeseries,
    make_portfolio_returns,
    make_ratings,
    make_sequences,
)
from repro.tasks import (
    ConditionalRandomFieldTask,
    KalmanSmoothingTask,
    LowRankMatrixFactorizationTask,
    PortfolioOptimizationTask,
    RatingExample,
    ReturnSample,
    SequenceExample,
    create_task,
    is_registered,
    register_task,
    task_names,
    unregister_task,
)


class TestMatrixFactorization:
    def test_initial_model_shapes(self):
        task = LowRankMatrixFactorizationTask(10, 8, rank=3)
        model = task.initial_model(np.random.default_rng(0))
        assert model["L"].shape == (10, 3)
        assert model["R"].shape == (8, 3)

    def test_gradient_step_reduces_residual(self):
        task = LowRankMatrixFactorizationTask(5, 5, rank=2, mu=0.0)
        model = task.initial_model(np.random.default_rng(0))
        example = RatingExample(1, 2, 3.0)
        before = task.loss(model, example)
        for _ in range(50):
            task.gradient_step(model, example, 0.1)
        assert task.loss(model, example) < before

    def test_training_recovers_low_rank_structure(self):
        dataset = make_ratings(40, 30, 600, rank=3, noise=0.05, seed=0)
        task = LowRankMatrixFactorizationTask(40, 30, rank=3, mu=0.001)
        result = train_in_memory(task, dataset.examples, epochs=30, step_size=0.05, seed=0)
        rmse = task.reconstruction_rmse(result.model, dataset.examples)
        assert rmse < 0.5

    def test_full_objective_includes_regularizer(self):
        task = LowRankMatrixFactorizationTask(3, 3, rank=1, mu=1.0)
        model = Model({"L": np.ones((3, 1)), "R": np.ones((3, 1))})
        assert task.regularization_penalty(model) == pytest.approx(6.0)
        assert task.full_objective(model, []) == pytest.approx(6.0)

    def test_example_from_row(self):
        task = LowRankMatrixFactorizationTask(5, 5, rank=2)
        example = task.example_from_row({"row_id": 2, "col_id": 3, "rating": 4.5})
        assert (example.row, example.col, example.value) == (2, 3, 4.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LowRankMatrixFactorizationTask(0, 5)
        with pytest.raises(ValueError):
            LowRankMatrixFactorizationTask(5, 5, rank=0)
        with pytest.raises(ValueError):
            LowRankMatrixFactorizationTask(5, 5, rank=2, mu=-1.0)


class TestCRF:
    @pytest.fixture
    def corpus(self):
        return make_sequences(25, mean_length=8, num_labels=3, seed=4)

    def test_loss_decreases_with_training(self, corpus):
        task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
        result = train_in_memory(task, corpus.examples, epochs=5, step_size=0.2, seed=0)
        trace = result.objective_trace()
        assert trace[-1] < trace[0]

    def test_token_accuracy_improves_over_uniform(self, corpus):
        task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
        result = train_in_memory(task, corpus.examples, epochs=6, step_size=0.2, seed=0)
        accuracy = task.token_accuracy(result.model, corpus.examples)
        assert accuracy > 0.8

    def test_gradient_matches_finite_differences(self):
        """The IGD update direction must equal -d(loss)/d(theta)."""
        task = ConditionalRandomFieldTask(6, 3)
        example = SequenceExample(
            token_features=((0, 3), (1,), (2, 5)), labels=(0, 1, 2)
        )
        rng = np.random.default_rng(0)
        model = Model(
            {
                "emission": rng.normal(scale=0.1, size=(6, 3)),
                "transition": rng.normal(scale=0.1, size=(3, 3)),
            }
        )
        # Analytic step with alpha=1 applied to a copy gives model + direction.
        stepped = model.copy()
        task.gradient_step(stepped, example, 1.0)
        analytic_direction = stepped.as_flat_vector() - model.as_flat_vector()

        epsilon = 1e-5
        flat = model.as_flat_vector()
        numeric = np.zeros_like(flat)
        for i in range(flat.size):
            plus = model.copy()
            plus_flat = flat.copy()
            plus_flat[i] += epsilon
            plus.load_flat_vector(plus_flat)
            minus = model.copy()
            minus_flat = flat.copy()
            minus_flat[i] -= epsilon
            minus.load_flat_vector(minus_flat)
            numeric[i] = (task.loss(plus, example) - task.loss(minus, example)) / (2 * epsilon)
        np.testing.assert_allclose(analytic_direction, -numeric, atol=1e-4)

    def test_loss_is_positive_and_finite(self):
        task = ConditionalRandomFieldTask(4, 2)
        example = SequenceExample(token_features=((0,), (1,)), labels=(0, 1))
        loss = task.loss(task.initial_model(), example)
        assert np.isfinite(loss)
        assert loss > 0

    def test_viterbi_prediction_length(self):
        task = ConditionalRandomFieldTask(4, 2)
        example = SequenceExample(token_features=((0,), (1,), (2,)), labels=(0, 1, 0))
        predicted = task.predict(task.initial_model(), example)
        assert len(predicted) == 3
        assert all(0 <= label < 2 for label in predicted)

    def test_example_encoding_roundtrip(self):
        task = ConditionalRandomFieldTask(10, 3)
        example = task.example_from_row({"tokens": "1,2|3|4,5", "labels": "0 1 2"})
        assert example.token_features == ((1, 2), (3,), (4, 5))
        assert example.labels == (0, 1, 2)

    def test_sequence_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SequenceExample(token_features=((0,),), labels=(0, 1))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ConditionalRandomFieldTask(0, 3)
        with pytest.raises(ValueError):
            ConditionalRandomFieldTask(5, 1)


class TestKalman:
    def test_smoothing_recovers_states(self):
        series = make_noisy_timeseries(60, 2, noise_scale=0.3, seed=1)
        task = KalmanSmoothingTask(
            num_steps=60,
            state_dim=2,
            dynamics=series.dynamics,
            observation_matrix=series.observation_matrix,
            smoothing_weight=1.0,
        )
        result = train_in_memory(task, series.examples, epochs=30, step_size=0.05, seed=0)
        smoothed = task.smoothed_trajectory(result.model)
        raw_error = np.mean(
            [
                np.linalg.norm(example.observation - series.true_states[example.time_index])
                for example in series.examples
            ]
        )
        smoothed_error = np.mean(np.linalg.norm(smoothed - series.true_states, axis=1))
        assert smoothed_error < raw_error

    def test_loss_includes_dynamics_term(self):
        task = KalmanSmoothingTask(num_steps=5, state_dim=1)
        model = task.initial_model()
        model["states"][1] = 2.0
        from repro.tasks import ObservationExample

        loss = task.loss(model, ObservationExample(1, np.array([0.0])))
        # Observation residual 2^2 plus dynamics residual (2-0)^2.
        assert loss == pytest.approx(8.0)

    def test_first_step_has_no_dynamics_term(self):
        task = KalmanSmoothingTask(num_steps=5, state_dim=1)
        from repro.tasks import ObservationExample

        loss = task.loss(task.initial_model(), ObservationExample(0, np.array([3.0])))
        assert loss == pytest.approx(9.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            KalmanSmoothingTask(num_steps=1, state_dim=2)
        with pytest.raises(ValueError):
            KalmanSmoothingTask(num_steps=5, state_dim=2, dynamics=np.eye(3))


class TestPortfolio:
    def test_model_starts_in_simplex_and_stays_there(self):
        data = make_portfolio_returns(6, 200, seed=2)
        task = PortfolioOptimizationTask(
            6, data.expected_returns, num_samples=len(data), risk_aversion=2.0
        )
        result = train_in_memory(task, data.examples, epochs=10, step_size=0.05, seed=0)
        assert task.is_feasible(result.model)

    def test_risk_decreases_relative_to_uniform(self):
        data = make_portfolio_returns(6, 400, correlation=0.1, seed=3)
        task = PortfolioOptimizationTask(
            6, data.expected_returns, num_samples=len(data), risk_aversion=5.0
        )
        uniform = task.initial_model()
        result = train_in_memory(task, data.examples, epochs=20, step_size=0.1, seed=0)
        covariance = data.sample_covariance()
        assert task.analytic_objective(result.model, covariance) <= task.analytic_objective(
            uniform, covariance
        ) + 1e-6

    def test_example_from_row(self):
        data = make_portfolio_returns(4, 10, seed=0)
        task = PortfolioOptimizationTask(4, data.expected_returns, num_samples=10)
        example = task.example_from_row({"returns": np.array([0.1, 0.2, 0.0, -0.1])})
        assert isinstance(example, ReturnSample)
        assert example.returns.shape == (4,)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PortfolioOptimizationTask(1, np.zeros(1), num_samples=10)
        with pytest.raises(ValueError):
            PortfolioOptimizationTask(3, np.zeros(2), num_samples=10)
        with pytest.raises(ValueError):
            PortfolioOptimizationTask(3, np.zeros(3), num_samples=0)


class TestRegistry:
    def test_builtin_tasks_registered(self):
        for name in ("lr", "svm", "lmf", "crf", "kalman", "portfolio", "lasso"):
            assert is_registered(name)

    def test_create_task_by_name(self):
        task = create_task("logistic_regression", dimension=5)
        assert task.dimension == 5

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            create_task("clustering")

    def test_register_and_unregister(self):
        from repro.tasks import SVMTask

        register_task("my_svm", SVMTask)
        assert is_registered("my_svm")
        assert "my_svm" in task_names()
        unregister_task("my_svm")
        assert not is_registered("my_svm")
