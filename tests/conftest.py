"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "backends: parallel/segmented execution-backend tests (run explicitly in "
        "the CI backend matrix via `pytest -m backends`)",
    )

from repro.data import (
    load_classification_table,
    make_dense_classification,
    make_sparse_classification,
)
from repro.db import ColumnType, Database, Schema, Table


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def simple_schema():
    return Schema.of(
        ("id", ColumnType.INTEGER),
        ("value", ColumnType.FLOAT),
        ("name", ColumnType.TEXT),
    )


@pytest.fixture
def people_table(simple_schema):
    table = Table("people", simple_schema)
    table.insert_many(
        [
            (1, 3.5, "ann"),
            (2, -1.0, "bob"),
            (3, 7.25, "carol"),
            (4, 0.0, "dave"),
        ]
    )
    return table


@pytest.fixture
def database():
    return Database("postgres", seed=0)


@pytest.fixture
def dense_dataset():
    return make_dense_classification(120, 8, seed=7)


@pytest.fixture
def sparse_dataset():
    return make_sparse_classification(80, 50, nonzeros_per_example=6, seed=7)


@pytest.fixture
def classification_db(database, dense_dataset):
    load_classification_table(database, "papers", dense_dataset.examples, sparse=False)
    return database
