"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Model, ReservoirSampler, project_to_simplex
from repro.core.stepsize import DiminishingStepSize, GeometricStepSize
from repro.db import ColumnType, Schema, Table
from repro.db.aggregates import AvgAggregate, StddevAggregate, SumAggregate
from repro.tasks import (
    LogisticRegressionTask,
    SVMTask,
    SupervisedExample,
    catx_closed_form_final,
    catx_closed_form_iterates,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestAggregateProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=60), st.integers(min_value=1, max_value=59))
    @settings(max_examples=50, deadline=None)
    def test_sum_merge_equals_serial(self, values, split):
        split = min(split, len(values))
        aggregate = SumAggregate()
        serial = aggregate.run(values)
        state_a = aggregate.initialize()
        for value in values[:split]:
            state_a = aggregate.transition(state_a, value)
        state_b = aggregate.initialize()
        for value in values[split:]:
            state_b = aggregate.transition(state_b, value)
        merged = aggregate.terminate(aggregate.merge(state_a, state_b))
        assert merged == pytest.approx(serial, rel=1e-9, abs=1e-6)

    @given(st.lists(finite_floats, min_size=2, max_size=40), st.integers(min_value=1, max_value=39))
    @settings(max_examples=50, deadline=None)
    def test_stddev_merge_equals_serial(self, values, split):
        split = min(split, len(values) - 1)
        aggregate = StddevAggregate()
        serial = aggregate.run(values)
        state_a = aggregate.initialize()
        for value in values[:split]:
            state_a = aggregate.transition(state_a, value)
        state_b = aggregate.initialize()
        for value in values[split:]:
            state_b = aggregate.transition(state_b, value)
        merged = aggregate.terminate(aggregate.merge(state_a, state_b))
        assert merged == pytest.approx(serial, rel=1e-6, abs=1e-6)

    @given(st.lists(finite_floats, min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_avg_matches_numpy(self, values):
        assert AvgAggregate().run(values) == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-6)


class TestSimplexProjectionProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_result_lies_on_simplex(self, values):
        projected = project_to_simplex(np.array(values, dtype=np.float64))
        assert projected.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(projected >= -1e-12)

    @given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=2, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_projection_is_idempotent(self, values):
        vector = np.array(values)
        vector /= vector.sum()
        np.testing.assert_allclose(project_to_simplex(vector), vector, atol=1e-9)


class TestReservoirProperties:
    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=200),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_capacity(self, capacity, extra, seed):
        total = capacity + extra
        sampler = ReservoirSampler(capacity, np.random.default_rng(seed))
        dropped = []
        for item in range(total):
            out = sampler.offer(item)
            if out is not None:
                dropped.append(out)
        assert len(sampler) == min(capacity, total)
        assert sorted(dropped + sampler.sample()) == list(range(total))
        assert len(dropped) == max(0, total - capacity)


class TestModelProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_flat_vector_roundtrip(self, values):
        model = Model({"w": np.array(values)})
        clone = model.zeros_like()
        clone.load_flat_vector(model.as_flat_vector())
        assert clone.allclose(model)

    @given(
        st.lists(finite_floats, min_size=3, max_size=3),
        st.lists(finite_floats, min_size=3, max_size=3),
        st.floats(min_value=0.01, max_value=100.0),
        st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_weighted_average_between_models(self, a_values, b_values, weight_a, weight_b):
        a = Model({"w": np.array(a_values)})
        b = Model({"w": np.array(b_values)})
        average = Model.average([a, b], weights=[weight_a, weight_b])
        lower = np.minimum(a["w"], b["w"]) - 1e-9
        upper = np.maximum(a["w"], b["w"]) + 1e-9
        assert np.all(average["w"] >= lower - 1e-6 * np.abs(lower))
        assert np.all(average["w"] <= upper + 1e-6 * np.abs(upper))


class TestStepSizeProperties:
    @given(st.floats(min_value=1e-3, max_value=10.0), st.floats(min_value=0.1, max_value=1.0),
           st.integers(min_value=0, max_value=10000))
    @settings(max_examples=50, deadline=None)
    def test_diminishing_is_positive_and_nonincreasing(self, alpha0, power, k):
        schedule = DiminishingStepSize(alpha0=alpha0, power=power)
        value = schedule.step_size(k, 0)
        next_value = schedule.step_size(k + 1, 0)
        assert value > 0
        assert next_value <= value

    @given(st.floats(min_value=1e-3, max_value=10.0), st.floats(min_value=0.5, max_value=0.99),
           st.integers(min_value=0, max_value=300))
    @settings(max_examples=50, deadline=None)
    def test_geometric_is_nonincreasing_and_nonnegative(self, alpha0, rho, k):
        schedule = GeometricStepSize(alpha0=alpha0, rho=rho)
        current = schedule.step_size(k, 0)
        following = schedule.step_size(k + 1, 0)
        assert 0 <= following <= current


class TestCATXClosedFormProperties:
    @given(st.integers(min_value=1, max_value=50), st.floats(min_value=0.01, max_value=0.9),
           st.floats(min_value=-2.0, max_value=2.0))
    @settings(max_examples=50, deadline=None)
    def test_recursion_matches_closed_form(self, n, alpha, w0):
        labels = [1.0] * n + [-1.0] * n
        iterates = catx_closed_form_iterates(labels, w0=w0, alpha=alpha)
        final = catx_closed_form_final(labels, w0=w0, alpha=alpha)
        assert iterates[-1] == pytest.approx(final, rel=1e-9, abs=1e-9)

    @given(st.floats(min_value=0.01, max_value=0.5), st.floats(min_value=-1.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_iterates_stay_bounded(self, alpha, w0):
        labels = ([1.0] * 20 + [-1.0] * 20) * 3
        iterates = catx_closed_form_iterates(labels, w0=w0, alpha=alpha)
        assert np.all(np.abs(iterates) <= max(1.0, abs(w0)) + 1e-9)


class TestTaskInvariantProperties:
    @given(
        st.lists(st.floats(min_value=-3.0, max_value=3.0), min_size=4, max_size=4),
        st.sampled_from([1.0, -1.0]),
        st.floats(min_value=0.001, max_value=0.5),
    )
    @settings(max_examples=80, deadline=None)
    def test_lr_single_step_never_increases_that_examples_loss(self, features, label, alpha):
        task = LogisticRegressionTask(4)
        model = task.initial_model()
        example = SupervisedExample(np.array(features), label)
        before = task.loss(model, example)
        task.gradient_step(model, example, alpha)
        after = task.loss(model, example)
        assert after <= before + 1e-9

    @given(
        st.lists(st.floats(min_value=-3.0, max_value=3.0), min_size=4, max_size=4),
        st.sampled_from([1.0, -1.0]),
        st.floats(min_value=0.001, max_value=0.3),
    )
    @settings(max_examples=80, deadline=None)
    def test_svm_step_never_increases_that_examples_loss(self, features, label, alpha):
        task = SVMTask(4)
        model = task.initial_model()
        example = SupervisedExample(np.array(features), label)
        before = task.loss(model, example)
        task.gradient_step(model, example, alpha)
        assert task.loss(model, example) <= before + 1e-9


class TestSchemaCoercionProperties:
    @given(st.lists(st.tuples(st.integers(min_value=-1000, max_value=1000), finite_floats),
                    min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_table_roundtrips_rows(self, rows):
        schema = Schema.of(("id", ColumnType.INTEGER), ("value", ColumnType.FLOAT))
        table = Table("t", schema, page_size=7)
        table.insert_many(rows)
        scanned = [(row["id"], row["value"]) for row in table.scan()]
        assert scanned == [(int(i), float(v)) for i, v in rows]

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=100), finite_floats),
                    min_size=1, max_size=50),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_shuffle_preserves_row_multiset(self, rows, seed):
        schema = Schema.of(("id", ColumnType.INTEGER), ("value", ColumnType.FLOAT))
        table = Table("t", schema, page_size=5)
        table.insert_many(rows)
        before = sorted(table.scan_values())
        table.shuffle(seed=seed)
        assert sorted(table.scan_values()) == before
