"""Unit tests for ``benchmarks/run_bench.py --compare`` snapshot diffing."""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_run_bench():
    spec = importlib.util.spec_from_file_location(
        "run_bench", REPO_ROOT / "benchmarks" / "run_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


run_bench = _load_run_bench()


def snapshot(**figure_seconds) -> dict:
    return {
        "figure_seconds": dict(figure_seconds),
        "figure_total_seconds": round(sum(figure_seconds.values()), 4),
    }


class TestCompareSnapshots:
    def test_no_regression_within_threshold(self):
        _lines, regressions = run_bench.compare_snapshots(
            snapshot(fig_a=1.10, fig_b=0.50),
            snapshot(fig_a=1.00, fig_b=0.52),
        )
        assert regressions == []

    def test_flags_large_regression(self):
        lines, regressions = run_bench.compare_snapshots(
            snapshot(fig_a=2.00), snapshot(fig_a=1.00)
        )
        assert regressions == ["fig_a"]
        assert any("REGRESSION" in line for line in lines)

    def test_custom_threshold(self):
        _lines, regressions = run_bench.compare_snapshots(
            snapshot(fig_a=1.20), snapshot(fig_a=1.00), threshold=0.10
        )
        assert regressions == ["fig_a"]
        _lines, regressions = run_bench.compare_snapshots(
            snapshot(fig_a=1.20), snapshot(fig_a=1.00), threshold=0.30
        )
        assert regressions == []

    def test_absolute_floor_filters_tiny_figures(self):
        # 0.010s -> 0.030s is a 200% slowdown but only 20ms: scheduler noise.
        _lines, regressions = run_bench.compare_snapshots(
            snapshot(tiny=0.030), snapshot(tiny=0.010)
        )
        assert regressions == []

    def test_new_and_removed_figures_never_fail(self):
        lines, regressions = run_bench.compare_snapshots(
            snapshot(fig_new=5.0), snapshot(fig_old=5.0)
        )
        assert regressions == []
        assert any("new figure" in line for line in lines)
        assert any("removed" in line for line in lines)

    def test_improvements_are_reported(self):
        lines, regressions = run_bench.compare_snapshots(
            snapshot(fig_a=0.50), snapshot(fig_a=1.00)
        )
        assert regressions == []
        assert any("-50.0%" in line for line in lines)
