"""Tests for step-size schedules (Appendix B) and proximal operators (Appendix A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BoxProjection,
    ComposedProximal,
    ConstantStepSize,
    DiminishingStepSize,
    EpochDecayStepSize,
    GeometricStepSize,
    IdentityProximal,
    L1Proximal,
    L2BallProjection,
    L2Proximal,
    Model,
    SimplexProjection,
    make_schedule,
    project_to_simplex,
)


class TestStepSizes:
    def test_constant(self):
        schedule = ConstantStepSize(0.3)
        assert schedule.step_size(0, 0) == schedule.step_size(1000, 7) == 0.3

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantStepSize(0.0)

    def test_diminishing_goes_to_zero_but_diverges_in_sum(self):
        schedule = DiminishingStepSize(alpha0=1.0, power=1.0)
        values = [schedule.step_size(k, 0) for k in range(10000)]
        assert values[-1] < 1e-3
        assert sum(values) > 9.0  # harmonic series grows without bound

    def test_diminishing_power_validation(self):
        with pytest.raises(ValueError):
            DiminishingStepSize(alpha0=1.0, power=1.5)

    def test_geometric_decay(self):
        schedule = GeometricStepSize(alpha0=1.0, rho=0.5)
        assert schedule.step_size(3, 0) == pytest.approx(0.125)

    def test_geometric_rho_validation(self):
        with pytest.raises(ValueError):
            GeometricStepSize(alpha0=1.0, rho=1.0)

    def test_epoch_decay_constant_within_epoch(self):
        schedule = EpochDecayStepSize(alpha0=0.1, decay=0.5)
        assert schedule.step_size(5, 0) == schedule.step_size(900, 0) == pytest.approx(0.1)
        assert schedule.step_size(0, 2) == pytest.approx(0.025)

    def test_make_schedule_from_float_dict_and_passthrough(self):
        assert isinstance(make_schedule(0.1), ConstantStepSize)
        schedule = make_schedule({"kind": "epoch_decay", "alpha0": 0.2, "decay": 0.9})
        assert isinstance(schedule, EpochDecayStepSize)
        assert make_schedule(schedule) is schedule

    def test_make_schedule_unknown_kind(self):
        with pytest.raises(ValueError):
            make_schedule({"kind": "warp_drive"})

    def test_make_schedule_bad_type(self):
        with pytest.raises(TypeError):
            make_schedule("fast")

    def test_describe_strings(self):
        assert "0.1" in ConstantStepSize(0.1).describe()
        assert "geometric" in GeometricStepSize(1.0, 0.9).describe()


class TestProximalOperators:
    def test_identity_is_noop(self):
        model = Model({"w": np.array([1.0, -2.0])})
        IdentityProximal().apply(model, 0.5)
        np.testing.assert_allclose(model["w"], [1.0, -2.0])

    def test_l1_soft_thresholding(self):
        model = Model({"w": np.array([0.5, -0.05, 2.0])})
        L1Proximal(mu=1.0).apply(model, 0.1)
        np.testing.assert_allclose(model["w"], [0.4, 0.0, 1.9])

    def test_l1_penalty_value(self):
        model = Model({"w": np.array([1.0, -2.0])})
        assert L1Proximal(mu=0.5).penalty(model) == pytest.approx(1.5)

    def test_l2_shrinkage(self):
        model = Model({"w": np.array([2.0])})
        L2Proximal(mu=1.0).apply(model, 1.0)
        np.testing.assert_allclose(model["w"], [1.0])

    def test_l2_penalty_value(self):
        model = Model({"w": np.array([3.0, 4.0])})
        assert L2Proximal(mu=2.0).penalty(model) == pytest.approx(25.0)

    def test_box_projection(self):
        model = Model({"w": np.array([-1.0, 0.5, 2.0])})
        BoxProjection(lower=0.0, upper=1.0).apply(model, 1.0)
        np.testing.assert_allclose(model["w"], [0.0, 0.5, 1.0])

    def test_box_invalid_bounds(self):
        with pytest.raises(ValueError):
            BoxProjection(lower=1.0, upper=0.0)

    def test_l2_ball_projection(self):
        model = Model({"w": np.array([3.0, 4.0])})
        L2BallProjection(radius=1.0).apply(model, 1.0)
        assert np.linalg.norm(model["w"]) == pytest.approx(1.0)
        inside = Model({"w": np.array([0.1, 0.1])})
        L2BallProjection(radius=1.0).apply(inside, 1.0)
        np.testing.assert_allclose(inside["w"], [0.1, 0.1])

    def test_simplex_projection_properties(self):
        vector = np.array([0.5, -1.0, 2.0, 0.1])
        projected = project_to_simplex(vector)
        assert projected.sum() == pytest.approx(1.0)
        assert np.all(projected >= 0)

    def test_simplex_projection_already_feasible(self):
        vector = np.array([0.25, 0.25, 0.25, 0.25])
        np.testing.assert_allclose(project_to_simplex(vector), vector)

    def test_simplex_requires_1d(self):
        with pytest.raises(ValueError):
            project_to_simplex(np.zeros((2, 2)))

    def test_simplex_operator_on_model(self):
        model = Model({"w": np.array([5.0, 1.0, -3.0])})
        SimplexProjection().apply(model, 1.0)
        assert model["w"].sum() == pytest.approx(1.0)

    def test_component_scoping(self):
        model = Model({"w": np.array([10.0]), "b": np.array([10.0])})
        L1Proximal(mu=1.0, component="w").apply(model, 1.0)
        assert model["w"][0] == pytest.approx(9.0)
        assert model["b"][0] == pytest.approx(10.0)

    def test_composed_proximal(self):
        model = Model({"w": np.array([1.5, -0.2])})
        composed = ComposedProximal(L1Proximal(mu=1.0), BoxProjection(lower=0.0, upper=1.0))
        composed.apply(model, 0.1)
        np.testing.assert_allclose(model["w"], [1.0, 0.0])
        assert composed.penalty(model) == pytest.approx(1.0)

    def test_negative_mu_rejected(self):
        with pytest.raises(ValueError):
            L1Proximal(mu=-1.0)
        with pytest.raises(ValueError):
            L2Proximal(mu=-0.5)
