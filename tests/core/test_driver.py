"""Tests for the Bismarck epoch-loop driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FixedEpochs,
    IGDConfig,
    PureUDAParallelism,
    SharedMemoryParallelism,
    ToleranceToOptimum,
    train,
    train_in_memory,
)
from repro.core.driver import BismarckRunner
from repro.data import load_classification_table, make_dense_classification
from repro.db import Database, SegmentedDatabase
from repro.tasks import LogisticRegressionTask, SVMTask


@pytest.fixture
def workload():
    dataset = make_dense_classification(150, 6, seed=3)
    return dataset


@pytest.fixture
def serial_db(workload):
    database = Database("postgres", seed=0)
    load_classification_table(database, "papers", workload.examples, sparse=False)
    return database


@pytest.fixture
def segmented_db(workload):
    database = SegmentedDatabase(4, "dbms_b", seed=0)
    load_classification_table(database, "papers", workload.examples, sparse=False)
    return database


class TestSerialTraining:
    def test_objective_decreases(self, serial_db):
        task = LogisticRegressionTask(6)
        result = train(task, serial_db, "papers", max_epochs=5, step_size=0.1)
        trace = result.objective_trace()
        assert len(trace) == 5
        assert trace[-1] < trace[0]
        assert result.epochs_run == 5
        assert result.parallelism_name == "serial"

    def test_histories_record_steps_and_norms(self, serial_db):
        task = LogisticRegressionTask(6)
        result = train(task, serial_db, "papers", max_epochs=3, step_size=0.1)
        assert [r.gradient_steps for r in result.history] == [150, 300, 450]
        assert all(r.model_norm > 0 for r in result.history)

    def test_stopping_rule_halts_early(self, serial_db):
        task = LogisticRegressionTask(6)
        result = train(
            task,
            serial_db,
            "papers",
            max_epochs=30,
            step_size=0.1,
            stopping={"kind": "relative", "tolerance": 0.05, "patience": 1},
        )
        assert result.converged
        assert result.epochs_run < 30

    def test_tolerance_to_optimum_stopping(self, serial_db):
        task = LogisticRegressionTask(6)
        reference = train(task, serial_db, "papers", max_epochs=10, step_size=0.1)
        optimum = reference.final_objective
        result = train(
            task,
            serial_db,
            "papers",
            max_epochs=50,
            step_size=0.1,
            stopping=ToleranceToOptimum(optimum=optimum, tolerance=0.05),
        )
        assert result.converged
        assert result.final_objective <= optimum * 1.06

    def test_initial_model_continuation(self, serial_db):
        task = LogisticRegressionTask(6)
        first = train(task, serial_db, "papers", max_epochs=3, step_size=0.1)
        second = train(
            task, serial_db, "papers", max_epochs=1, step_size=0.1,
            initial_model=first.model,
        )
        assert second.final_objective <= first.final_objective * 1.05

    def test_compute_objective_false_skips_loss(self, serial_db):
        task = LogisticRegressionTask(6)
        result = train(
            task, serial_db, "papers", max_epochs=2, step_size=0.1, compute_objective=False
        )
        assert all(np.isnan(record.objective) for record in result.history)

    def test_ordering_recorded(self, serial_db):
        task = LogisticRegressionTask(6)
        result = train(task, serial_db, "papers", max_epochs=2, ordering="clustered")
        assert result.ordering_name == "clustered"
        result = train(task, serial_db, "papers", max_epochs=2, ordering="shuffle_always")
        assert result.ordering_name == "shuffle_always"
        assert result.shuffle_seconds > 0

    def test_time_and_epoch_to_reach(self, serial_db):
        task = LogisticRegressionTask(6)
        result = train(task, serial_db, "papers", max_epochs=5, step_size=0.1)
        target = result.objective_trace()[2]
        assert result.epochs_to_reach(target) <= 3
        assert result.time_to_reach(target) is not None
        assert result.epochs_to_reach(-1.0) is None
        assert result.time_to_reach(-1.0) is None

    def test_config_override_merging(self, serial_db):
        task = LogisticRegressionTask(6)
        config = IGDConfig(step_size=0.1, max_epochs=10)
        result = train(task, serial_db, "papers", config=config, max_epochs=2)
        assert result.epochs_run == 2


class TestParallelTraining:
    def test_pure_uda_requires_segmented_db(self, serial_db):
        task = LogisticRegressionTask(6)
        with pytest.raises(TypeError):
            train(task, serial_db, "papers", max_epochs=1, parallelism=PureUDAParallelism())

    def test_pure_uda_on_segments(self, segmented_db):
        task = LogisticRegressionTask(6)
        result = train(
            task, segmented_db, "papers", max_epochs=4, step_size=0.1,
            parallelism=PureUDAParallelism(),
        )
        assert result.parallelism_name == "pure_uda"
        assert result.objective_trace()[-1] < result.objective_trace()[0]

    @pytest.mark.parametrize("scheme", ["lock", "aig", "nolock"])
    def test_shared_memory_schemes(self, serial_db, scheme):
        task = LogisticRegressionTask(6)
        result = train(
            task, serial_db, "papers", max_epochs=3, step_size=0.1,
            parallelism=SharedMemoryParallelism(scheme=scheme, workers=4),
        )
        assert result.parallelism_name == f"shared_memory[{scheme}x4]"
        assert result.objective_trace()[-1] < result.objective_trace()[0]

    def test_shared_memory_converges_better_than_pure_uda(self, segmented_db):
        """Figure 9(A)'s key claim at unit-test scale."""
        task = SVMTask(6)
        pure = train(
            task, segmented_db, "papers", max_epochs=3, step_size=0.1,
            ordering="clustered", parallelism=PureUDAParallelism(),
        )
        shm = train(
            SVMTask(6), segmented_db, "papers", max_epochs=3, step_size=0.1,
            ordering="clustered",
            parallelism=SharedMemoryParallelism(scheme="nolock", workers=4),
        )
        assert shm.final_objective <= pure.final_objective * 1.2

    def test_serial_on_segmented_master(self, segmented_db):
        task = LogisticRegressionTask(6)
        result = train(task, segmented_db, "papers", max_epochs=2, step_size=0.1)
        assert result.epochs_run == 2


class TestInMemoryTraining:
    def test_in_memory_matches_interface(self, workload):
        task = LogisticRegressionTask(6)
        result = train_in_memory(task, workload.examples, epochs=4, step_size=0.1, seed=0)
        assert result.parallelism_name == "in_memory"
        assert len(result.history) == 4
        assert result.objective_trace()[-1] < result.objective_trace()[0]

    def test_in_memory_no_shuffle_keeps_order_name(self, workload):
        task = LogisticRegressionTask(6)
        result = train_in_memory(task, workload.examples, epochs=1, shuffle=False)
        assert result.ordering_name == "as_given"

    def test_runner_reuse(self, serial_db):
        task = LogisticRegressionTask(6)
        runner = BismarckRunner(serial_db, task, IGDConfig(step_size=0.1, max_epochs=2))
        first = runner.train("papers")
        second = runner.train("papers")
        assert first.epochs_run == second.epochs_run == 2
