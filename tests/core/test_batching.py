"""Tests for epoch-adaptive batch schedules and their driver integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BatchSchedule, IGDConfig, geometric_growth, make_batch_schedule, train
from repro.core.batching import epochs_until
from repro.data import load_classification_table, make_sparse_classification
from repro.db import Database
from repro.tasks import LogisticRegressionTask


class TestBatchSchedule:
    def test_constant_schedule(self):
        schedule = BatchSchedule(initial=4)
        assert schedule.constant
        assert [schedule.batch_size(e) for e in range(4)] == [4, 4, 4, 4]
        assert schedule.max_batch_size(10) == 4

    def test_geometric_growth_with_cap(self):
        schedule = geometric_growth(initial=1, growth=2.0, cap=8)
        assert not schedule.constant
        assert [schedule.batch_size(e) for e in range(6)] == [1, 2, 4, 8, 8, 8]
        assert schedule.max_batch_size(2) == 2
        assert epochs_until(schedule, 8) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchSchedule(initial=0)
        with pytest.raises(ValueError):
            BatchSchedule(initial=1, growth=0.5)
        with pytest.raises(ValueError):
            BatchSchedule(initial=8, cap=4)
        with pytest.raises(ValueError):
            BatchSchedule(initial=1).batch_size(-1)
        with pytest.raises(ValueError):
            epochs_until(BatchSchedule(initial=1), 4)

    def test_epochs_until_honours_per_epoch_rounding(self):
        """The crossing epoch follows the *rounded* sizes, not the raw curve."""
        slow = BatchSchedule(initial=1, growth=1.4)
        assert slow.batch_size(2) == 2  # round(1.96)
        assert epochs_until(slow, 2) == 2
        fast = BatchSchedule(initial=1, growth=1.5)
        assert fast.batch_size(1) == 2  # round(1.5)
        assert epochs_until(fast, 2) == 1

    def test_uncapped_growth_saturates_instead_of_overflowing(self):
        schedule = BatchSchedule(initial=1, growth=10.0)
        assert schedule.batch_size(400) == schedule.batch_size(500) > 10**9
        assert schedule.max_batch_size(2000) == schedule.batch_size(400)
        from repro.core import IGDConfig

        config = IGDConfig(batch_size=schedule, max_epochs=1500)
        assert config.execution == "chunked"

    def test_make_batch_schedule_coercions(self):
        assert make_batch_schedule(3) == BatchSchedule(initial=3)
        assert make_batch_schedule({"initial": 2, "growth": 1.5}) == BatchSchedule(2, 1.5)
        schedule = BatchSchedule(initial=2)
        assert make_batch_schedule(schedule) is schedule
        with pytest.raises(TypeError):
            make_batch_schedule(2.5)
        with pytest.raises(TypeError):
            make_batch_schedule(True)


class TestDriverIntegration:
    @pytest.fixture()
    def workload(self):
        dataset = make_sparse_classification(60, 40, nonzeros_per_example=5, seed=2)
        return dataset, LogisticRegressionTask(dataset.dimension)

    def test_config_accepts_schedule_and_forces_chunked(self, workload):
        config = IGDConfig(batch_size=BatchSchedule(initial=1, growth=2.0), max_epochs=4)
        assert config.execution == "chunked"
        # A schedule that never exceeds 1 stays on the default path.
        config = IGDConfig(batch_size=BatchSchedule(initial=1), max_epochs=4)
        assert config.execution == "auto"

    def test_growth_schedule_trains_and_reduces_steps(self, workload):
        dataset, task = workload
        database = Database("postgres", seed=0)
        load_classification_table(database, "docs", dataset.examples, sparse=True)
        run = train(
            task, database, "docs",
            config=IGDConfig(
                step_size=0.05, max_epochs=4, ordering="shuffle_once", seed=0,
                batch_size=BatchSchedule(initial=1, growth=4.0, cap=16),
            ),
        )
        assert run.epochs_run == 4
        assert all(np.isfinite(run.objective_trace()))
        # Epoch batch sizes 1, 4, 16, 16 -> step counts n, ceil(n/4), ...
        n = len(dataset.examples)
        per_epoch = [
            run.history[0].gradient_steps,
            run.history[1].gradient_steps - run.history[0].gradient_steps,
            run.history[2].gradient_steps - run.history[1].gradient_steps,
            run.history[3].gradient_steps - run.history[2].gradient_steps,
        ]
        assert per_epoch[0] == n
        assert per_epoch[1] == -(-n // 4)
        assert per_epoch[2] == per_epoch[3] == -(-n // 16)

    def test_first_epoch_matches_exact_igd(self, workload):
        """A growth schedule starting at 1 begins bit-for-bit as exact IGD."""
        dataset, task = workload
        runs = {}
        for name, batch_size in (
            ("exact", 1),
            ("growth", BatchSchedule(initial=1, growth=8.0)),
        ):
            database = Database("postgres", seed=0)
            load_classification_table(database, "docs", dataset.examples, sparse=True)
            runs[name] = train(
                task, database, "docs",
                config=IGDConfig(
                    step_size=0.05, max_epochs=1, ordering="shuffle_once", seed=0,
                    batch_size=batch_size,
                ),
            )
        assert np.array_equal(
            runs["exact"].model.as_flat_vector(), runs["growth"].model.as_flat_vector()
        )

    def test_schedule_refused_with_parallelism_or_per_tuple(self, workload):
        schedule = BatchSchedule(initial=1, growth=2.0)
        with pytest.raises(ValueError, match="chunked"):
            IGDConfig(batch_size=schedule, execution="per_tuple", max_epochs=4)
        from repro.core import SharedMemoryParallelism

        with pytest.raises(ValueError, match="serial"):
            IGDConfig(
                batch_size=schedule, max_epochs=4,
                parallelism=SharedMemoryParallelism(scheme="nolock", workers=2),
            )
