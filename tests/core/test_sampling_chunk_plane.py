"""MRS runners on the chunk plane: index reservoirs + gathered buffer epochs.

The satellite contract: reservoirs hold row *indices* into a stable table
version, examples resolve through the shared ExampleCache (decode once per
version), and subsampling's buffer epochs run the chunked IGD kernel over
batches gathered from the cached plane — all bit-for-bit the list-input
behaviour the Figure 10 assertions were calibrated on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sampling import (
    ReservoirSampler,
    run_clustered_no_shuffle,
    run_multiplexed_reservoir_sampling,
    run_subsampling,
)
from repro.data import load_classification_table, make_sparse_classification
from repro.db import Database
from repro.tasks.base import ExampleCache
from repro.tasks.logistic_regression import LogisticRegressionTask

pytestmark = pytest.mark.backends


@pytest.fixture(scope="module")
def workload():
    dataset = make_sparse_classification(140, 70, nonzeros_per_example=6, seed=3)
    return dataset, LogisticRegressionTask(dataset.dimension)


@pytest.fixture()
def table_and_cache(workload):
    dataset, _task = workload
    database = Database("postgres", seed=0)
    load_classification_table(database, "pts", dataset.examples, sparse=True)
    return database.table("pts"), database.executor.example_cache


class TestIndexReservoirParity:
    def test_subsampling_table_matches_list_bit_for_bit(self, workload, table_and_cache):
        dataset, task = workload
        table, cache = table_and_cache
        from_list = run_subsampling(
            dataset.examples, task, buffer_size=30, epochs=4, step_size=0.1, seed=0
        )
        from_table = run_subsampling(
            table, task, buffer_size=30, epochs=4, step_size=0.1, seed=0, cache=cache
        )
        assert np.array_equal(
            from_list.model.as_flat_vector(), from_table.model.as_flat_vector()
        )
        assert from_list.objective_trace() == from_table.objective_trace()
        assert from_list.buffer_size == from_table.buffer_size

    def test_mrs_table_matches_list_bit_for_bit(self, workload, table_and_cache):
        dataset, task = workload
        table, cache = table_and_cache
        from_list = run_multiplexed_reservoir_sampling(
            dataset.examples, task, buffer_size=30, epochs=3, step_size=0.1, seed=0
        )
        from_table = run_multiplexed_reservoir_sampling(
            table, task, buffer_size=30, epochs=3, step_size=0.1, seed=0, cache=cache
        )
        assert np.array_equal(
            from_list.model.as_flat_vector(), from_table.model.as_flat_vector()
        )
        assert from_list.objective_trace() == from_table.objective_trace()

    def test_clustered_reference_matches(self, workload, table_and_cache):
        dataset, task = workload
        table, cache = table_and_cache
        from_list = run_clustered_no_shuffle(
            dataset.examples, task, epochs=3, step_size=0.1, seed=0
        )
        from_table = run_clustered_no_shuffle(
            table, task, epochs=3, step_size=0.1, seed=0, cache=cache
        )
        assert np.array_equal(
            from_list.model.as_flat_vector(), from_table.model.as_flat_vector()
        )

    def test_reservoir_holds_plain_indices(self):
        sampler = ReservoirSampler(5, np.random.default_rng(0))
        for index in range(50):
            sampler.offer(index)
        sample = sampler.sample()
        assert all(isinstance(item, int) for item in sample)
        assert all(0 <= item < 50 for item in sample)


class TestDecodeOncePerVersion:
    def test_sweep_reuses_one_decode(self, workload, table_and_cache):
        """A Figure-10B-style sweep decodes the corpus exactly once."""
        dataset, task = workload
        table, cache = table_and_cache
        run_subsampling(table, task, buffer_size=20, epochs=2, step_size=0.1,
                        seed=0, cache=cache)
        misses = cache.misses
        for buffer_size in (10, 40, 70):
            run_subsampling(table, task, buffer_size=buffer_size, epochs=2,
                            step_size=0.1, seed=0, cache=cache)
            run_multiplexed_reservoir_sampling(
                table, task, buffer_size=buffer_size, epochs=2, step_size=0.1,
                seed=0, cache=cache,
            )
        assert cache.misses == misses

    def test_table_mutation_invalidates(self, workload, table_and_cache):
        dataset, task = workload
        table, cache = table_and_cache
        run_subsampling(table, task, buffer_size=20, epochs=1, step_size=0.1,
                        seed=0, cache=cache)
        misses = cache.misses
        table.shuffle(seed=1)  # physical mutation bumps the version
        run_subsampling(table, task, buffer_size=20, epochs=1, step_size=0.1,
                        seed=0, cache=cache)
        assert cache.misses > misses
