"""Tests for the Model state container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Model


class TestConstruction:
    def test_zeros(self):
        model = Model.zeros({"w": 5, "b": (2, 3)})
        assert model["w"].shape == (5,)
        assert model["b"].shape == (2, 3)
        assert model.num_parameters == 11

    def test_from_vector(self):
        model = Model.from_vector("w", [1, 2, 3])
        np.testing.assert_allclose(model["w"], [1.0, 2.0, 3.0])

    def test_unknown_component_raises(self):
        with pytest.raises(KeyError):
            Model.zeros({"w": 3}).component("missing")

    def test_contains_and_names(self):
        model = Model.zeros({"w": 3, "a": 2})
        assert "w" in model and "missing" not in model
        assert model.component_names() == ["a", "w"]

    def test_copy_is_deep(self):
        model = Model.zeros({"w": 3})
        clone = model.copy()
        clone["w"][0] = 5.0
        assert model["w"][0] == 0.0

    def test_metadata_carried_by_copy(self):
        model = Model.zeros({"w": 2}, )
        model.metadata["epoch"] = 3
        assert model.copy().metadata["epoch"] == 3


class TestVectorOps:
    def test_flat_vector_roundtrip(self):
        model = Model({"a": np.arange(4.0).reshape(2, 2), "b": np.array([9.0, 8.0])})
        flat = model.as_flat_vector()
        assert flat.shape == (6,)
        clone = model.zeros_like()
        clone.load_flat_vector(flat)
        assert clone.allclose(model)

    def test_load_flat_vector_wrong_size(self):
        model = Model.zeros({"w": 3})
        with pytest.raises(ValueError):
            model.load_flat_vector(np.zeros(4))

    def test_norm_and_distance(self):
        a = Model({"w": np.array([3.0, 4.0])})
        b = Model({"w": np.array([0.0, 0.0])})
        assert a.norm() == pytest.approx(5.0)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_add_scaled_and_scale(self):
        a = Model({"w": np.array([1.0, 2.0])})
        b = Model({"w": np.array([2.0, -2.0])})
        a.add_scaled(b, 0.5)
        np.testing.assert_allclose(a["w"], [2.0, 1.0])
        a.scale(2.0)
        np.testing.assert_allclose(a["w"], [4.0, 2.0])

    def test_incompatible_models_raise(self):
        a = Model({"w": np.zeros(2)})
        b = Model({"v": np.zeros(2)})
        with pytest.raises(ValueError):
            a.add_scaled(b, 1.0)
        c = Model({"w": np.zeros(3)})
        with pytest.raises(ValueError):
            a.distance_to(c)


class TestAverage:
    def test_uniform_average(self):
        a = Model({"w": np.array([1.0, 1.0])})
        b = Model({"w": np.array([3.0, 5.0])})
        avg = Model.average([a, b])
        np.testing.assert_allclose(avg["w"], [2.0, 3.0])

    def test_weighted_average(self):
        a = Model({"w": np.array([0.0])})
        b = Model({"w": np.array([10.0])})
        avg = Model.average([a, b], weights=[3, 1])
        np.testing.assert_allclose(avg["w"], [2.5])

    def test_average_empty_raises(self):
        with pytest.raises(ValueError):
            Model.average([])

    def test_average_mismatched_weights_raises(self):
        a = Model({"w": np.zeros(2)})
        with pytest.raises(ValueError):
            Model.average([a], weights=[1, 2])

    def test_average_zero_weight_raises(self):
        a = Model({"w": np.zeros(2)})
        with pytest.raises(ValueError):
            Model.average([a, a], weights=[0, 0])

    def test_allclose_detects_difference(self):
        a = Model({"w": np.array([1.0])})
        b = Model({"w": np.array([1.0 + 1e-3])})
        assert not a.allclose(b)
        assert a.allclose(Model({"w": np.array([1.0])}))
