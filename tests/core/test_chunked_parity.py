"""Parity suite: the chunked columnar path must reproduce the per-tuple path.

The chunked fast path (cached ExampleBatches + vectorized/sequential kernels)
claims *bit-for-bit* identical models for exact IGD and identical-to-1e-9
objective traces.  These tests pin that claim for LR, SVM, lasso and least
squares across all three data orderings, for dense and sparse features, plus
the LMF task, the structured tasks (CRF, Kalman, portfolio), the
loss/accuracy aggregates, mini-batch semantics, the version-keyed example
cache, and all three execution backends (serial, shared-memory, segmented
pure-UDA).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.driver import IGDConfig, train
from repro.core.model import Model
from repro.core.parallel import PureUDAParallelism, SharedMemoryParallelism
from repro.core.uda import AccuracyAggregate, IGDAggregate, LossAggregate
from repro.data import (
    load_classification_table,
    load_ratings_table,
    load_returns_table,
    load_sequences_table,
    load_timeseries_table,
    make_dense_classification,
    make_noisy_timeseries,
    make_portfolio_returns,
    make_ratings,
    make_sequences,
    make_sparse_classification,
)
from repro.db.engine import Database
from repro.db.errors import ExecutionError
from repro.db.parallel import SegmentedDatabase
from repro.tasks import (
    ConditionalRandomFieldTask,
    KalmanSmoothingTask,
    LassoTask,
    LogisticRegressionTask,
    LowRankMatrixFactorizationTask,
    PortfolioOptimizationTask,
    SVMTask,
)
from repro.tasks.base import ExampleCache, SupervisedExample
from repro.tasks.least_squares import LinearRegressionTask

TASKS = {
    "lr": LogisticRegressionTask,
    "svm": SVMTask,
    "lasso": LassoTask,
    "least_squares": LinearRegressionTask,
}
ORDERINGS = ("shuffle_once", "shuffle_always", "clustered")
STEP = {"kind": "epoch_decay", "alpha0": 0.05, "decay": 0.9}


class PerTupleOnlyTask(LogisticRegressionTask):
    """A task that genuinely cannot chunk (the old role of the CRF task)."""

    supports_batches = False


def _tiny_edge_table():
    from repro.db import ColumnType, Schema, Table

    schema = Schema.of(("vec", ColumnType.FLOAT_ARRAY), ("label", ColumnType.FLOAT))
    table = Table("edge", schema)
    table.insert(([1.0], 1.0))  # wx = -1e-17 for w = [-1e-17]
    return table


def _train(task_cls, data, *, sparse: bool, ordering: str, execution: str, **config):
    database = Database("postgres", seed=0)
    load_classification_table(database, "points", data.examples, sparse=sparse, replace=True)
    task = task_cls(data.dimension)
    cfg = IGDConfig(
        step_size=STEP,
        max_epochs=3,
        ordering=ordering,
        seed=11,
        execution=execution,
        **config,
    )
    return train(task, database, "points", config=cfg)


class TestChunkedPathParity:
    @pytest.mark.parametrize("ordering", ORDERINGS)
    @pytest.mark.parametrize("task_name", sorted(TASKS))
    def test_dense_models_bit_identical(self, task_name, ordering):
        data = make_dense_classification(160, 10, seed=0)
        per_tuple = _train(TASKS[task_name], data, sparse=False, ordering=ordering,
                           execution="per_tuple")
        chunked = _train(TASKS[task_name], data, sparse=False, ordering=ordering,
                         execution="chunked")
        assert np.array_equal(per_tuple.model["w"], chunked.model["w"])
        assert np.allclose(
            per_tuple.objective_trace(), chunked.objective_trace(), atol=1e-9, rtol=0
        )

    @pytest.mark.parametrize("task_name", sorted(TASKS))
    def test_sparse_models_bit_identical(self, task_name):
        data = make_sparse_classification(150, 40, nonzeros_per_example=5, seed=1)
        per_tuple = _train(TASKS[task_name], data, sparse=True, ordering="shuffle_once",
                           execution="per_tuple")
        chunked = _train(TASKS[task_name], data, sparse=True, ordering="shuffle_once",
                         execution="chunked")
        assert np.array_equal(per_tuple.model["w"], chunked.model["w"])
        assert np.allclose(
            per_tuple.objective_trace(), chunked.objective_trace(), atol=1e-9, rtol=0
        )

    def test_gradient_step_counts_match(self):
        data = make_dense_classification(90, 6, seed=2)
        per_tuple = _train(LogisticRegressionTask, data, sparse=False,
                           ordering="shuffle_once", execution="per_tuple")
        chunked = _train(LogisticRegressionTask, data, sparse=False,
                         ordering="shuffle_once", execution="chunked")
        assert [r.gradient_steps for r in per_tuple.history] == [
            r.gradient_steps for r in chunked.history
        ]

    def test_lmf_models_bit_identical(self):
        ratings = make_ratings(40, 30, 500, rank=4, seed=3)
        results = {}
        for execution in ("per_tuple", "chunked"):
            database = Database("postgres", seed=0)
            load_ratings_table(database, "ratings", ratings.examples, replace=True)
            task = LowRankMatrixFactorizationTask(
                ratings.num_rows, ratings.num_cols, rank=4, mu=0.01
            )
            results[execution] = train(
                task, database, "ratings",
                config=IGDConfig(step_size=0.05, max_epochs=3, ordering="shuffle_once",
                                 seed=5, execution=execution),
            )
        assert np.array_equal(results["per_tuple"].model["L"], results["chunked"].model["L"])
        assert np.array_equal(results["per_tuple"].model["R"], results["chunked"].model["R"])
        assert np.allclose(
            results["per_tuple"].objective_trace(),
            results["chunked"].objective_trace(),
            atol=1e-9, rtol=0,
        )

    def test_auto_equals_chunked_on_batchable_workload(self):
        data = make_dense_classification(100, 8, seed=4)
        auto = _train(SVMTask, data, sparse=False, ordering="shuffle_once", execution="auto")
        chunked = _train(SVMTask, data, sparse=False, ordering="shuffle_once",
                         execution="chunked")
        assert np.array_equal(auto.model["w"], chunked.model["w"])


class TestLossAndAccuracyAggregates:
    def _database_and_task(self):
        data = make_dense_classification(120, 7, seed=6)
        database = Database("postgres", seed=0)
        load_classification_table(database, "points", data.examples, sparse=False)
        task = LogisticRegressionTask(data.dimension)
        rng = np.random.default_rng(0)
        model = Model({"w": rng.normal(size=data.dimension)})
        return database, task, model

    def test_loss_aggregate_chunked_matches_per_tuple(self):
        database, task, model = self._database_and_task()
        per_tuple = database.run_aggregate("points", LossAggregate(task, model))
        chunked = database.run_aggregate(
            "points", LossAggregate(task, model), execution="chunked"
        )
        assert chunked == pytest.approx(per_tuple, abs=1e-9)

    def test_accuracy_aggregate_chunked_matches_per_tuple(self):
        database, task, model = self._database_and_task()
        per_tuple = database.run_aggregate("points", AccuracyAggregate(task, model))
        chunked = database.run_aggregate(
            "points", AccuracyAggregate(task, model), execution="chunked"
        )
        assert chunked == per_tuple

    def test_lr_accuracy_parity_at_sub_ulp_decision_values(self):
        """wx an ulp below zero still rounds sigmoid to exactly 0.5: both
        paths must classify it +1, like the scalar classify threshold."""
        database = Database("postgres", seed=0)
        database.register_table(_tiny_edge_table())
        task = LogisticRegressionTask(1)
        model = Model({"w": np.array([-1e-17])})
        per_tuple = database.run_aggregate("edge", AccuracyAggregate(task, model))
        chunked = database.run_aggregate(
            "edge", AccuracyAggregate(task, model), execution="chunked"
        )
        assert chunked == per_tuple == 1.0


class TestMiniBatchMode:
    def test_batch_size_one_recovers_exact_igd(self):
        data = make_dense_classification(110, 9, seed=7)
        exact = _train(LogisticRegressionTask, data, sparse=False,
                       ordering="shuffle_once", execution="per_tuple")
        minibatch = _train(LogisticRegressionTask, data, sparse=False,
                           ordering="shuffle_once", execution="chunked", batch_size=1)
        assert np.array_equal(exact.model["w"], minibatch.model["w"])

    @pytest.mark.parametrize("task_name", sorted(TASKS))
    def test_single_row_minibatch_step_equals_gradient_step(self, task_name):
        """The averaged-gradient kernel with B=1 is one plain IGD step."""
        data = make_dense_classification(16, 5, seed=8)
        task = TASKS[task_name](data.dimension)
        rng = np.random.default_rng(1)
        reference = Model({"w": rng.normal(size=data.dimension)})
        batched = reference.copy()

        database = Database("postgres")
        table = load_classification_table(database, "pts", data.examples, sparse=False)
        chunk = next(table.iter_chunks(len(data.examples)))
        batch = task.batch_from_chunk(chunk)
        for i, example in enumerate(data.examples):
            task.gradient_step(reference, SupervisedExample(example.features, example.label), 0.03)
            task.minibatch_step(batched, batch, i, i + 1, 0.03)
        assert np.allclose(reference["w"], batched["w"], atol=1e-12, rtol=0)

    def test_minibatch_training_converges(self):
        data = make_dense_classification(200, 8, seed=9)
        result = _train(LogisticRegressionTask, data, sparse=False,
                        ordering="shuffle_once", execution="chunked", batch_size=16)
        trace = result.objective_trace()
        assert trace[-1] < trace[0]
        # ceil(200 / 16) = 13 averaged steps per epoch, not 200
        assert result.history[0].gradient_steps == 13

    def test_minibatch_requires_chunkable_path(self):
        data = make_dense_classification(30, 4, seed=10)
        with pytest.raises(ValueError):
            IGDConfig(batch_size=4, execution="per_tuple")
        database = Database("postgres", seed=0)
        load_classification_table(database, "points", data.examples, sparse=False)
        aggregate = IGDAggregate(LogisticRegressionTask(data.dimension), 0.05, batch_size=4)
        with pytest.raises(ExecutionError):
            database.run_aggregate("points", aggregate)  # per-tuple path refuses

    def test_minibatch_config_normalises_auto_to_strict_chunked(self):
        """B > 1 must fail fast on unbatchable workloads, not mid-epoch."""
        assert IGDConfig(batch_size=4).execution == "chunked"
        data = make_dense_classification(24, 4, seed=0)
        database = Database("postgres", seed=0)
        load_classification_table(database, "points", data.examples, sparse=False)
        task = PerTupleOnlyTask(data.dimension)
        with pytest.raises(ExecutionError):
            train(task, database, "points", config=IGDConfig(batch_size=4, max_epochs=1))

    def test_minibatch_structured_tasks_converge(self):
        """Structured tasks now run opt-in mini-batch SGD through the generic
        averaged-gradient kernel."""
        corpus = make_sequences(20, num_labels=3, seed=0)
        database = Database("postgres", seed=0)
        load_sequences_table(database, "seqs", corpus.examples)
        task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
        result = train(
            task, database, "seqs",
            config=IGDConfig(step_size=0.2, max_epochs=3, ordering="shuffle_once",
                             seed=1, batch_size=5),
        )
        trace = result.objective_trace()
        assert trace[-1] < trace[0]
        assert result.history[0].gradient_steps == 4  # ceil(20 / 5)


class TestExecutionModes:
    def _per_tuple_only_db(self):
        data = make_dense_classification(4, 3, seed=0)
        database = Database("postgres", seed=0)
        load_classification_table(database, "points", data.examples, sparse=False)
        return database, PerTupleOnlyTask(data.dimension)

    def test_chunked_raises_for_unbatchable_task(self):
        database, task = self._per_tuple_only_db()
        aggregate = IGDAggregate(task, 0.05)
        with pytest.raises(ExecutionError):
            database.run_aggregate("points", aggregate, execution="chunked")

    def test_auto_falls_back_for_unbatchable_task(self):
        database, task = self._per_tuple_only_db()
        model = database.run_aggregate(
            "points", IGDAggregate(task, 0.05), execution="auto"
        )
        assert model.metadata["gradient_steps"] == 4

    def test_crf_task_now_chunks(self):
        """The CRF used to be the canonical unbatchable task; it chunks now."""
        corpus = make_sequences(4, num_labels=3, seed=0)
        database = Database("postgres", seed=0)
        load_sequences_table(database, "seqs", corpus.examples)
        task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
        model = database.run_aggregate(
            "seqs", IGDAggregate(task, 0.05), execution="chunked"
        )
        assert model.metadata["gradient_steps"] == 4

    def test_unknown_execution_mode_rejected(self):
        database = Database("postgres", seed=0)
        database.create_table("t", [("x", "float")])
        with pytest.raises(ExecutionError):
            database.run_aggregate("t", "count", "x", execution="warp")
        with pytest.raises(ValueError):
            IGDConfig(execution="warp")

    def test_chunked_execution_counts_one_scan_per_pass(self):
        data = make_dense_classification(60, 5, seed=11)
        database = Database("postgres", seed=0)
        table = load_classification_table(database, "points", data.examples, sparse=False)
        task = LogisticRegressionTask(data.dimension)
        model = task.initial_model()
        before = table.scan_count
        database.run_aggregate("points", LossAggregate(task, model), execution="chunked")
        assert table.scan_count == before + 1
        # a cached pass still counts as one logical scan
        database.run_aggregate("points", LossAggregate(task, model), execution="chunked")
        assert table.scan_count == before + 2


class TestExampleCacheInvalidation:
    def _setup(self):
        data = make_dense_classification(64, 5, seed=12)
        database = Database("postgres", seed=0)
        table = load_classification_table(database, "points", data.examples, sparse=False)
        task = LogisticRegressionTask(data.dimension)
        return database, table, task

    def test_cache_hit_on_unchanged_table(self):
        database, table, task = self._setup()
        cache = database.executor.example_cache
        first = cache.batches_for(table, task, 32)
        second = cache.batches_for(table, task, 32)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_shuffle_busts_cache(self):
        database, table, task = self._setup()
        cache = database.executor.example_cache
        stale = cache.batches_for(table, task, 32)
        table.shuffle(seed=0)
        fresh = cache.batches_for(table, task, 32)
        assert fresh is not stale
        first_ids_stale = stale[0].y
        first_ids_fresh = fresh[0].y
        # reordering must be visible through the cache
        assert not np.array_equal(first_ids_stale, first_ids_fresh)

    def test_cluster_by_busts_cache(self):
        database, table, task = self._setup()
        cache = database.executor.example_cache
        stale = cache.batches_for(table, task, 32)
        table.cluster_by("label")
        assert cache.batches_for(table, task, 32) is not stale

    def test_insert_busts_cache(self):
        database, table, task = self._setup()
        cache = database.executor.example_cache
        stale = cache.batches_for(table, task, 32)
        table.insert((999, np.zeros(5), 1.0))
        fresh = cache.batches_for(table, task, 32)
        assert fresh is not stale
        assert sum(len(b) for b in fresh) == sum(len(b) for b in stale) + 1

    def test_task_without_batch_support_short_circuits(self):
        database, table, _ = self._setup()
        task = PerTupleOnlyTask(5)
        cache = database.executor.example_cache
        assert cache.batches_for(table, task, 32) is None
        assert cache.misses == 0  # no batch support: no build attempted

    def test_wrong_schema_negatively_cached(self):
        """A batchable task over a table missing its columns (the CRF over a
        classification table) is negatively cached, not an error."""
        database, table, _ = self._setup()
        crf = ConditionalRandomFieldTask(4, 3)
        cache = database.executor.example_cache
        assert cache.batches_for(table, crf, 32) is None
        assert cache.misses == 1
        assert cache.batches_for(table, crf, 32) is None
        assert cache.hits == 1 and cache.misses == 1

    def test_unbatchable_column_negatively_cached(self):
        from repro.db import ColumnType, Schema, Table

        schema = Schema.of(("vec", ColumnType.ANY), ("label", ColumnType.FLOAT))
        table = Table("mixed", schema)
        table.insert_many([(np.zeros(3), 1.0), ({0: 1.0}, -1.0)])  # mixed dense/sparse
        task = LogisticRegressionTask(3)
        cache = ExampleCache()
        assert cache.batches_for(table, task, 32) is None
        assert cache.misses == 1
        # second lookup is a hit on the negative entry, not a re-decode
        assert cache.batches_for(table, task, 32) is None
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_respects_max_entries(self):
        _, table, _ = self._setup()
        cache = ExampleCache(max_entries=2)
        tasks = [LogisticRegressionTask(5) for _ in range(3)]
        for task in tasks:
            cache.batches_for(table, task, 32)
        assert len(cache) == 2

    def test_replaced_table_with_same_name_and_version_not_served_stale(self):
        """A dropped-and-recreated table restarts its version sequence; the
        cache must bind to the table object, not just (name, version)."""
        database = Database("postgres", seed=0)
        task = LogisticRegressionTask(3)
        old = make_dense_classification(40, 3, seed=13)
        new = make_dense_classification(40, 3, seed=14)
        old_table = load_classification_table(database, "pts", old.examples, sparse=False)
        per_tuple_old = database.run_aggregate(
            "pts", LossAggregate(task, task.initial_model())
        )
        chunked_old = database.run_aggregate(
            "pts", LossAggregate(task, task.initial_model()), execution="chunked"
        )
        load_classification_table(database, "pts", new.examples, sparse=False, replace=True)
        assert database.table("pts").version == old_table.version  # the trap
        per_tuple_new = database.run_aggregate(
            "pts", LossAggregate(task, task.initial_model())
        )
        chunked_new = database.run_aggregate(
            "pts", LossAggregate(task, task.initial_model()), execution="chunked"
        )
        assert chunked_old == pytest.approx(per_tuple_old, abs=1e-9)
        assert chunked_new == pytest.approx(per_tuple_new, abs=1e-9)


class TestSparseEdgeCases:
    def test_decision_values_with_trailing_empty_rows(self):
        """reduceat segment handling: empty sparse rows (all-zero examples)
        anywhere in the chunk must not truncate their neighbours' dots."""
        from repro.db import ColumnType, Schema, Table

        schema = Schema.of(("vec", ColumnType.SPARSE_VECTOR), ("label", ColumnType.FLOAT))
        table = Table("sparse_edge", schema)
        table.insert_many(
            [
                ({0: 1.0, 1: 2.0}, 1.0),
                ({}, -1.0),
                ({1: 3.0}, 1.0),
                ({}, -1.0),
            ]
        )
        task = LogisticRegressionTask(2)
        batch = task.batch_from_chunk(next(table.iter_chunks(16)))
        w = np.array([10.0, 100.0])
        assert batch.decision_values(w).tolist() == [210.0, 0.0, 300.0, 0.0]
        # slices hit the same code path
        assert batch.decision_values(w, 0, 2).tolist() == [210.0, 0.0]
        assert batch.decision_values(w, 3, 4).tolist() == [0.0]

    def test_chunked_parity_with_empty_sparse_rows(self):
        from repro.db import ColumnType, Schema, Table

        rng = np.random.default_rng(15)
        schema = Schema.of(("vec", ColumnType.SPARSE_VECTOR), ("label", ColumnType.FLOAT))
        rows = []
        for i in range(60):
            if i % 7 == 0:
                features = {}
            else:
                features = {int(j): float(rng.normal()) for j in rng.choice(10, size=3, replace=False)}
            rows.append((features, 1.0 if rng.random() > 0.5 else -1.0))
        results = {}
        for execution in ("per_tuple", "chunked"):
            database = Database("postgres", seed=0)
            table = Table("pts", schema)
            table.insert_many(rows)
            database.register_table(table)
            task = LogisticRegressionTask(10)
            results[execution] = train(
                task, database, "pts",
                config=IGDConfig(step_size=0.1, max_epochs=3, ordering="shuffle_once",
                                 seed=2, execution=execution),
            )
        assert np.array_equal(results["per_tuple"].model["w"], results["chunked"].model["w"])
        assert np.allclose(
            results["per_tuple"].objective_trace(),
            results["chunked"].objective_trace(),
            atol=1e-9, rtol=0,
        )


# ---------------------------------------------------------------------------
# Structured tasks: CRF, Kalman, portfolio — chunked must equal per-tuple
# ---------------------------------------------------------------------------
def _train_crf(execution: str, *, ordering: str = "shuffle_once", parallelism=None,
               database=None, epochs: int = 3):
    corpus = make_sequences(30, num_labels=3, seed=0)
    if database is None:
        database = Database("postgres", seed=0)
    load_sequences_table(database, "seqs", corpus.examples, replace=True)
    task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
    return train(
        task, database, "seqs",
        config=IGDConfig(
            step_size={"kind": "epoch_decay", "alpha0": 0.2, "decay": 0.9},
            max_epochs=epochs, ordering=ordering, seed=1,
            execution=execution, parallelism=parallelism,
        ),
    )


def _train_kalman(execution: str, *, ordering: str = "shuffle_once"):
    series = make_noisy_timeseries(60, 2, seed=0)
    database = Database("postgres", seed=0)
    load_timeseries_table(database, "ts", series.examples)
    task = KalmanSmoothingTask(
        series.num_steps, series.state_dim,
        dynamics=series.dynamics, observation_matrix=series.observation_matrix,
    )
    return train(
        task, database, "ts",
        config=IGDConfig(step_size=0.05, max_epochs=3, ordering=ordering,
                         seed=1, execution=execution),
    )


def _train_portfolio(execution: str, *, ordering: str = "shuffle_once"):
    data = make_portfolio_returns(6, 120, seed=0)
    database = Database("postgres", seed=0)
    load_returns_table(database, "returns", data.examples)
    task = PortfolioOptimizationTask(
        data.num_assets, data.expected_returns, num_samples=len(data.examples)
    )
    return train(
        task, database, "returns",
        config=IGDConfig(step_size=0.05, max_epochs=3, ordering=ordering,
                         seed=1, execution=execution),
    )


@pytest.mark.backends
class TestStructuredTaskParity:
    @pytest.mark.parametrize("ordering", ORDERINGS)
    def test_crf_models_bit_identical(self, ordering):
        per_tuple = _train_crf("per_tuple", ordering=ordering)
        chunked = _train_crf("chunked", ordering=ordering)
        assert np.array_equal(per_tuple.model["emission"], chunked.model["emission"])
        assert np.array_equal(per_tuple.model["transition"], chunked.model["transition"])
        assert np.allclose(
            per_tuple.objective_trace(), chunked.objective_trace(), atol=1e-9, rtol=0
        )

    def test_crf_auto_equals_chunked(self):
        auto = _train_crf("auto")
        chunked = _train_crf("chunked")
        assert np.array_equal(auto.model["emission"], chunked.model["emission"])

    @pytest.mark.parametrize("execution", ["chunked", "auto"])
    def test_kalman_models_bit_identical(self, execution):
        per_tuple = _train_kalman("per_tuple")
        fast = _train_kalman(execution)
        assert np.array_equal(per_tuple.model["states"], fast.model["states"])
        assert np.allclose(
            per_tuple.objective_trace(), fast.objective_trace(), atol=1e-9, rtol=0
        )

    @pytest.mark.parametrize("execution", ["chunked", "auto"])
    def test_portfolio_models_bit_identical(self, execution):
        per_tuple = _train_portfolio("per_tuple")
        fast = _train_portfolio(execution)
        assert np.array_equal(per_tuple.model["w"], fast.model["w"])
        assert np.allclose(
            per_tuple.objective_trace(), fast.objective_trace(), atol=1e-9, rtol=0
        )

    def test_crf_loss_aggregate_parity(self):
        corpus = make_sequences(20, num_labels=3, seed=2)
        database = Database("postgres", seed=0)
        load_sequences_table(database, "seqs", corpus.examples)
        task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
        model = task.initial_model()
        emission = model["emission"]
        emission += np.random.default_rng(0).normal(scale=0.1, size=emission.shape)
        per_tuple = database.run_aggregate("seqs", LossAggregate(task, model))
        chunked = database.run_aggregate(
            "seqs", LossAggregate(task, model), execution="chunked"
        )
        assert chunked == pytest.approx(per_tuple, abs=1e-9)


# ---------------------------------------------------------------------------
# Backend parity: shared-memory and segmented pure-UDA on the chunk plane
# ---------------------------------------------------------------------------
@pytest.mark.backends
class TestBackendChunkParity:
    @pytest.mark.parametrize("scheme", ["lock", "aig", "nolock"])
    def test_shared_memory_cached_epoch_matches_uncached(self, scheme):
        """execution='auto' (cached example plane) and 'per_tuple' (per-epoch
        decode) must produce identical shared-memory models."""
        spec = SharedMemoryParallelism(scheme=scheme, workers=4)
        results = {}
        for execution in ("per_tuple", "auto"):
            data = make_dense_classification(80, 6, seed=3)
            database = Database("postgres", seed=0)
            load_classification_table(database, "points", data.examples, sparse=False)
            task = LogisticRegressionTask(data.dimension)
            results[execution] = train(
                task, database, "points",
                config=IGDConfig(step_size=0.1, max_epochs=3, ordering="shuffle_once",
                                 seed=4, execution=execution, parallelism=spec),
            )
        assert np.array_equal(
            results["per_tuple"].model["w"], results["auto"].model["w"]
        )
        assert np.allclose(
            results["per_tuple"].objective_trace(),
            results["auto"].objective_trace(),
            atol=1e-9, rtol=0,
        )

    def test_shared_memory_crf_cached_epoch_matches_uncached(self):
        spec = SharedMemoryParallelism(scheme="nolock", workers=4)
        per_tuple = _train_crf("per_tuple", parallelism=spec, epochs=2)
        cached = _train_crf("auto", parallelism=spec, epochs=2)
        assert np.array_equal(per_tuple.model["emission"], cached.model["emission"])
        assert np.array_equal(per_tuple.model["transition"], cached.model["transition"])

    @pytest.mark.parametrize("task_name", sorted(TASKS))
    def test_segmented_pure_uda_chunked_matches_per_tuple(self, task_name):
        results = {}
        for execution in ("per_tuple", "auto"):
            data = make_dense_classification(96, 7, seed=5)
            database = SegmentedDatabase(4, "dbms_b", seed=0)
            load_classification_table(database, "points", data.examples, sparse=False)
            task = TASKS[task_name](data.dimension)
            results[execution] = train(
                task, database, "points",
                config=IGDConfig(step_size=STEP, max_epochs=3, ordering="shuffle_once",
                                 seed=6, execution=execution,
                                 parallelism=PureUDAParallelism()),
            )
        assert np.array_equal(
            results["per_tuple"].model["w"], results["auto"].model["w"]
        )
        assert np.allclose(
            results["per_tuple"].objective_trace(),
            results["auto"].objective_trace(),
            atol=1e-9, rtol=0,
        )

    def test_segmented_crf_chunked_matches_per_tuple(self):
        results = {}
        for execution in ("per_tuple", "auto"):
            database = SegmentedDatabase(4, "dbms_b", seed=0)
            results[execution] = _train_crf(
                execution, parallelism=PureUDAParallelism(), database=database, epochs=2
            )
        assert np.array_equal(
            results["per_tuple"].model["emission"], results["auto"].model["emission"]
        )
        assert np.array_equal(
            results["per_tuple"].model["transition"], results["auto"].model["transition"]
        )

    def test_segmented_chunked_aggregate_api_parity(self):
        """run_parallel_aggregate execution modes agree at the API level too."""
        data = make_dense_classification(60, 5, seed=7)
        database = SegmentedDatabase(4, "dbms_b", seed=0)
        load_classification_table(database, "points", data.examples, sparse=False)
        task = LogisticRegressionTask(data.dimension)
        factory = lambda: IGDAggregate(task, 0.05)  # noqa: E731
        per_tuple = database.run_parallel_aggregate(
            "points", factory, execution="per_tuple"
        )
        chunked = database.run_parallel_aggregate("points", factory, execution="chunked")
        assert np.array_equal(per_tuple.value["w"], chunked.value["w"])
        assert per_tuple.num_segments == chunked.num_segments == 4

    def test_segmented_chunked_uses_per_segment_cache(self):
        data = make_dense_classification(64, 5, seed=8)
        database = SegmentedDatabase(4, "dbms_b", seed=0)
        load_classification_table(database, "points", data.examples, sparse=False)
        task = LogisticRegressionTask(data.dimension)
        cache = database.master.executor.example_cache
        factory = lambda: IGDAggregate(task, 0.05)  # noqa: E731
        database.run_parallel_aggregate("points", factory, execution="chunked")
        misses_after_first = cache.misses
        assert misses_after_first == 4  # one decode per segment
        database.run_parallel_aggregate("points", factory, execution="chunked")
        assert cache.misses == misses_after_first  # second epoch served cached
        assert cache.hits >= 4

    def test_segmented_chunked_where_matches_per_tuple(self):
        """WHERE no longer forces per-tuple execution on segments: every
        segment filters through its cached selection vector."""
        from repro.db.expressions import BinaryOp, ColumnRef, Literal

        data = make_dense_classification(40, 4, seed=9)
        database = SegmentedDatabase(2, "dbms_b", seed=0)
        load_classification_table(database, "points", data.examples, sparse=False)
        task = LogisticRegressionTask(data.dimension)
        factory = lambda: IGDAggregate(task, 0.05)  # noqa: E731
        predicate = BinaryOp(">", ColumnRef("label"), Literal(0.0))
        per_tuple = database.run_parallel_aggregate(
            "points", factory, where=predicate, execution="per_tuple"
        )
        chunked = database.run_parallel_aggregate(
            "points", factory, where=predicate, execution="chunked"
        )
        assert np.array_equal(per_tuple.value["w"], chunked.value["w"])


# ---------------------------------------------------------------------------
# Selection vectors and permutations: WHERE / row_order on the chunk plane
# ---------------------------------------------------------------------------
EXECUTIONS = ("per_tuple", "chunked", "auto")


def _label_predicate():
    from repro.db.expressions import BinaryOp, ColumnRef, Literal

    return BinaryOp(">", ColumnRef("label"), Literal(0.0))


@pytest.mark.backends
class TestSelectionPermutationParity:
    """WHERE filters and explicit row orders ride the cached chunk plane and
    must reproduce the per-tuple path bit for bit, on every backend."""

    def _serial_db(self, *, sparse=False, seed=20):
        if sparse:
            data = make_sparse_classification(90, 30, nonzeros_per_example=4, seed=seed)
        else:
            data = make_dense_classification(90, 6, seed=seed)
        database = Database("postgres", seed=0)
        load_classification_table(database, "points", data.examples, sparse=sparse)
        return database, data

    def _igd_model(self, database, task, *, where=None, row_order=None, execution="per_tuple"):
        aggregate = IGDAggregate(task, {"kind": "epoch_decay", "alpha0": 0.05, "decay": 0.9})
        return database.run_aggregate(
            "points", aggregate, where=where, row_order=row_order, execution=execution
        )

    @pytest.mark.parametrize("sparse", [False, True])
    def test_where_filtered_models_bit_identical(self, sparse):
        database, data = self._serial_db(sparse=sparse)
        task = LogisticRegressionTask(data.dimension)
        predicate = _label_predicate()
        models = {
            execution: self._igd_model(database, task, where=predicate, execution=execution)
            for execution in EXECUTIONS
        }
        assert models["per_tuple"].metadata["gradient_steps"] < len(data.examples)
        assert np.array_equal(models["per_tuple"]["w"], models["chunked"]["w"])
        assert np.array_equal(models["per_tuple"]["w"], models["auto"]["w"])

    @pytest.mark.parametrize("sparse", [False, True])
    def test_row_order_models_bit_identical(self, sparse):
        database, data = self._serial_db(sparse=sparse)
        task = LogisticRegressionTask(data.dimension)
        order = np.random.default_rng(3).permutation(len(data.examples))
        models = {
            execution: self._igd_model(database, task, row_order=order, execution=execution)
            for execution in EXECUTIONS
        }
        assert np.array_equal(models["per_tuple"]["w"], models["chunked"]["w"])
        assert np.array_equal(models["per_tuple"]["w"], models["auto"]["w"])

    def test_where_and_row_order_compose(self):
        database, data = self._serial_db()
        task = LogisticRegressionTask(data.dimension)
        order = np.random.default_rng(4).permutation(len(data.examples))
        predicate = _label_predicate()
        per_tuple = self._igd_model(
            database, task, where=predicate, row_order=order, execution="per_tuple"
        )
        chunked = self._igd_model(
            database, task, where=predicate, row_order=order, execution="chunked"
        )
        assert np.array_equal(per_tuple["w"], chunked["w"])

    def test_loss_aggregate_where_parity(self):
        database, data = self._serial_db()
        task = LogisticRegressionTask(data.dimension)
        rng = np.random.default_rng(0)
        model = Model({"w": rng.normal(size=data.dimension)})
        predicate = _label_predicate()
        per_tuple = database.run_aggregate(
            "points", LossAggregate(task, model), where=predicate
        )
        chunked = database.run_aggregate(
            "points", LossAggregate(task, model), where=predicate, execution="chunked"
        )
        assert chunked == pytest.approx(per_tuple, abs=1e-9)

    def test_empty_selection_parity(self):
        from repro.db.expressions import BinaryOp, ColumnRef, Literal

        database, data = self._serial_db()
        task = LogisticRegressionTask(data.dimension)
        nothing = BinaryOp(">", ColumnRef("label"), Literal(1e9))
        per_tuple = self._igd_model(database, task, where=nothing, execution="per_tuple")
        chunked = self._igd_model(database, task, where=nothing, execution="chunked")
        assert per_tuple.metadata["gradient_steps"] == 0
        assert np.array_equal(per_tuple["w"], chunked["w"])

    def test_negative_ordinals_match_row_at(self):
        database, data = self._serial_db()
        task = LogisticRegressionTask(data.dimension)
        order = [-1, 0, -2, 1]
        per_tuple = self._igd_model(database, task, row_order=order, execution="per_tuple")
        chunked = self._igd_model(database, task, row_order=order, execution="chunked")
        assert np.array_equal(per_tuple["w"], chunked["w"])

    def test_crf_row_order_models_bit_identical(self):
        """Sequence gathers reuse the cached flattened feature arrays."""
        corpus = make_sequences(24, num_labels=3, seed=3)
        order = np.random.default_rng(5).permutation(len(corpus.examples))
        results = {}
        for execution in ("per_tuple", "chunked"):
            database = Database("postgres", seed=0)
            load_sequences_table(database, "seqs", corpus.examples, replace=True)
            task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
            aggregate = IGDAggregate(task, 0.1)
            results[execution] = database.run_aggregate(
                "seqs", aggregate, row_order=order, execution=execution
            )
        assert np.array_equal(
            results["per_tuple"]["emission"], results["chunked"]["emission"]
        )
        assert np.array_equal(
            results["per_tuple"]["transition"], results["chunked"]["transition"]
        )

    def test_lmf_row_order_models_bit_identical(self):
        """Rating gathers cover the RatingBatch take/concat kernels."""
        ratings = make_ratings(20, 15, 200, rank=3, seed=6)
        order = np.random.default_rng(7).permutation(200)
        results = {}
        for execution in ("per_tuple", "chunked"):
            database = Database("postgres", seed=0)
            load_ratings_table(database, "ratings", ratings.examples, replace=True)
            task = LowRankMatrixFactorizationTask(
                ratings.num_rows, ratings.num_cols, rank=3, mu=0.01
            )
            aggregate = IGDAggregate(task, 0.05, initial_model=task.initial_model())
            results[execution] = database.run_aggregate(
                "ratings", aggregate, row_order=order, execution=execution
            )
        assert np.array_equal(results["per_tuple"]["L"], results["chunked"]["L"])
        assert np.array_equal(results["per_tuple"]["R"], results["chunked"]["R"])

    def test_segmented_row_orders_match_per_tuple(self):
        data = make_dense_classification(60, 5, seed=21)
        rng = np.random.default_rng(8)
        results = {}
        for execution in ("per_tuple", "chunked"):
            database = SegmentedDatabase(3, "dbms_b", seed=0)
            load_classification_table(database, "points", data.examples, sparse=False)
            orders = [
                rng.permutation(len(segment))
                for segment in database.segments_of("points")
            ]
            rng = np.random.default_rng(8)  # same orders for both executions
            task = LogisticRegressionTask(data.dimension)
            factory = lambda: IGDAggregate(task, 0.05)  # noqa: E731
            results[execution] = database.run_parallel_aggregate(
                "points", factory, segment_row_orders=orders, execution=execution
            )
        assert np.array_equal(results["per_tuple"].value["w"], results["chunked"].value["w"])

    def test_chunked_filter_still_scans_once(self):
        database, data = self._serial_db()
        table = database.table("points")
        task = LogisticRegressionTask(data.dimension)
        predicate = _label_predicate()
        before = table.scan_count
        self._igd_model(database, task, where=predicate, execution="chunked")
        assert table.scan_count == before + 1

    def test_selection_vector_cached_per_version(self):
        database, data = self._serial_db()
        table = database.table("points")
        task = LogisticRegressionTask(data.dimension)
        predicate = _label_predicate()
        cache = database.executor.example_cache
        # First pass derives two artefacts: the selection vector and the
        # gathered (masked) chunk list built from it.
        self._igd_model(database, task, where=predicate, execution="chunked")
        assert cache.derived_misses == 2
        self._igd_model(database, task, where=predicate, execution="chunked")
        assert cache.derived_misses == 2 and cache.derived_hits == 2
        table.shuffle(seed=0)  # physical mutation busts both derived entries
        self._igd_model(database, task, where=predicate, execution="chunked")
        assert cache.derived_misses == 4

    def test_stale_udf_binding_invalidates_selection(self):
        """Re-registering a UDF referenced by the predicate must invalidate
        the cached selection vector — chunked stays bit-for-bit per-tuple."""
        from repro.db.expressions import ColumnRef, FunctionCall

        database, data = self._serial_db()
        task = LogisticRegressionTask(data.dimension)
        predicate = FunctionCall("keep", (ColumnRef("label"),))
        database.register_function("keep", lambda label: label > 0)
        first = self._igd_model(database, task, where=predicate, execution="chunked")
        database.register_function("keep", lambda label: label < 0)
        chunked = self._igd_model(database, task, where=predicate, execution="chunked")
        per_tuple = self._igd_model(database, task, where=predicate, execution="per_tuple")
        assert not np.array_equal(first["w"], chunked["w"])
        assert np.array_equal(per_tuple["w"], chunked["w"])

    def test_stable_row_order_gathers_once_per_run(self):
        """A pass-invariant order (logical shuffle_once) gathers once per
        table version, not once per epoch."""
        database, data = self._serial_db()
        task = LogisticRegressionTask(data.dimension)
        cache = database.executor.example_cache
        order = np.random.default_rng(11).permutation(len(data.examples))
        for _ in range(3):
            self._igd_model(database, task, row_order=order, execution="chunked")
        assert cache.derived_misses == 1
        assert cache.derived_hits == 2


@pytest.mark.backends
class TestOrderedScanAccounting:
    """Satellite regression: ordered passes must be visible in scan stats."""

    def _setup(self):
        data = make_dense_classification(30, 4, seed=22)
        database = Database("postgres", seed=0)
        table = load_classification_table(database, "points", data.examples, sparse=False)
        return database, table, LogisticRegressionTask(data.dimension)

    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_row_order_pass_counts_one_scan(self, execution):
        database, table, task = self._setup()
        order = list(range(len(table)))[::-1]
        before = table.scan_count
        database.run_aggregate(
            "points", IGDAggregate(task, 0.05), row_order=order, execution=execution
        )
        assert table.scan_count == before + 1

    def test_no_merge_fallback_refuses_multi_segment_orders(self):
        """A non-merge aggregate cannot replay per-segment orders serially;
        raising beats silently training in stored heap order."""
        from repro.db.aggregates import FunctionalAggregate

        data = make_dense_classification(24, 4, seed=26)
        database = SegmentedDatabase(3, "dbms_b", seed=0)
        load_classification_table(database, "points", data.examples, sparse=False)
        factory = lambda: FunctionalAggregate(  # noqa: E731 - no merge support
            initialize=lambda: 0, transition=lambda state, row: state + 1, wants_row=True
        )
        orders = [list(range(len(s))) for s in database.segments_of("points")]
        with pytest.raises(ExecutionError):
            database.run_parallel_aggregate("points", factory, segment_row_orders=orders)

    def test_segmented_ordered_pass_counts_one_scan_per_segment(self):
        data = make_dense_classification(30, 4, seed=23)
        database = SegmentedDatabase(3, "dbms_b", seed=0)
        load_classification_table(database, "points", data.examples, sparse=False)
        segments = database.segments_of("points")
        orders = [list(range(len(segment)))[::-1] for segment in segments]
        before = [segment.scan_count for segment in segments]
        task = LogisticRegressionTask(data.dimension)
        factory = lambda: IGDAggregate(task, 0.05)  # noqa: E731
        database.run_parallel_aggregate(
            "points", factory, segment_row_orders=orders, execution="per_tuple"
        )
        assert [segment.scan_count for segment in segments] == [b + 1 for b in before]


@pytest.mark.backends
class TestLogicalOrderingCachePlane:
    """Logical shuffles keep the example cache alive: zero re-decodes."""

    def _train_logical(self, ordering, *, execution="chunked", epochs=4, parallelism=None,
                       segmented=False):
        data = make_dense_classification(120, 6, seed=24)
        if segmented:
            database = SegmentedDatabase(4, "dbms_b", seed=0)
        else:
            database = Database("postgres", seed=0)
        load_classification_table(database, "points", data.examples, sparse=False)
        task = LogisticRegressionTask(data.dimension)
        result = train(
            task, database, "points",
            config=IGDConfig(step_size=STEP, max_epochs=epochs, ordering=ordering,
                             seed=25, execution=execution, parallelism=parallelism),
        )
        return database, result

    def test_shuffle_always_chunked_never_redecodes(self):
        """The acceptance criterion: after the first epoch, shuffle_always
        hits the cached batches every epoch — one decode for the whole run."""
        database, result = self._train_logical("shuffle_always", epochs=4)
        cache = database.executor.example_cache
        assert result.epochs_run == 4
        assert cache.misses == 1  # one decode, shared by IGD and loss passes
        assert cache.hits == 2 * 4 - 1  # training + loss per epoch, rest hits
        # Per-epoch gathered plans replace one slot, never accumulate: the
        # cache holds the base batches entry plus a single gathered slot.
        assert len(cache) == 2

    def test_physical_shuffle_always_redecodes_each_epoch(self):
        """The contrast case: physical rewrites bump the version every epoch."""
        from repro.core.ordering import ShuffleAlways

        database, result = self._train_logical(ShuffleAlways(mode="physical"), epochs=3)
        cache = database.executor.example_cache
        assert cache.misses == 3  # one fresh decode per physical shuffle

    def test_logical_equals_physical_shuffle_once(self):
        """Same rng, same permutation: serving the shuffle as a row order is
        bit-for-bit the physically shuffled run."""
        from repro.core.ordering import ShuffleOnce

        _, logical = self._train_logical(ShuffleOnce(mode="logical"), epochs=3)
        _, physical = self._train_logical(ShuffleOnce(mode="physical"), epochs=3)
        assert np.array_equal(logical.model["w"], physical.model["w"])
        assert np.allclose(
            logical.objective_trace(), physical.objective_trace(), atol=1e-9, rtol=0
        )

    @pytest.mark.parametrize("ordering", ["shuffle_once", "shuffle_always"])
    def test_logical_shuffle_execution_parity_serial(self, ordering):
        results = {
            execution: self._train_logical(ordering, execution=execution)[1]
            for execution in EXECUTIONS
        }
        assert np.array_equal(results["per_tuple"].model["w"], results["chunked"].model["w"])
        assert np.array_equal(results["per_tuple"].model["w"], results["auto"].model["w"])
        assert np.allclose(
            results["per_tuple"].objective_trace(),
            results["chunked"].objective_trace(),
            atol=1e-9, rtol=0,
        )

    def test_logical_shuffle_always_shared_memory_parity_and_cache(self):
        spec = SharedMemoryParallelism(scheme="nolock", workers=4)
        results = {}
        for execution in ("per_tuple", "auto"):
            database, results[execution] = self._train_logical(
                "shuffle_always", execution=execution, epochs=3, parallelism=spec
            )
        assert np.array_equal(
            results["per_tuple"].model["w"], results["auto"].model["w"]
        )
        # cached run: one example-list decode + one batch decode (loss pass)
        assert database.executor.example_cache.misses == 2

    def test_logical_shuffle_always_segmented_parity_and_cache(self):
        results = {}
        for execution in ("per_tuple", "auto"):
            database, results[execution] = self._train_logical(
                "shuffle_always", execution=execution, epochs=3,
                parallelism=PureUDAParallelism(), segmented=True,
            )
        assert np.array_equal(
            results["per_tuple"].model["w"], results["auto"].model["w"]
        )
        cache = database.master.executor.example_cache
        # one decode per segment plus one for the master loss pass — never
        # repeated, because logical shuffles leave segment tables untouched
        assert cache.misses == database.num_segments + 1


@pytest.mark.backends
class TestGatherKernels:
    """Unit coverage of the batch take/concat kernels and gather_batches."""

    def test_sparse_take_preserves_rows(self):
        from repro.db import ColumnType, Schema, Table

        schema = Schema.of(("vec", ColumnType.SPARSE_VECTOR), ("label", ColumnType.FLOAT))
        table = Table("s", schema)
        table.insert_many(
            [
                ({0: 1.0, 2: 2.0}, 1.0),
                ({}, -1.0),
                ({1: 3.0}, 1.0),
                ({0: 4.0, 1: 5.0, 2: 6.0}, -1.0),
            ]
        )
        task = LogisticRegressionTask(3)
        batch = task.batch_from_chunk(next(table.iter_chunks(16)))
        taken = batch.take(np.array([3, 1, 0]))
        w = np.array([1.0, 10.0, 100.0])
        assert taken.decision_values(w).tolist() == [654.0, 0.0, 201.0]
        assert taken.y.tolist() == [-1.0, -1.0, 1.0]

    def test_dense_concat_then_take_roundtrip(self):
        from repro.tasks.base import ExampleBatch

        a = ExampleBatch("dense", X=np.arange(6.0).reshape(3, 2), y=np.array([1.0, -1.0, 1.0]), dimension=2)
        b = ExampleBatch("dense", X=10 + np.arange(4.0).reshape(2, 2), y=np.array([-1.0, 1.0]), dimension=2)
        fused = ExampleBatch.concat([a, b])
        assert len(fused) == 5
        taken = fused.take(np.array([4, 0]))
        assert taken.X.tolist() == [[12.0, 13.0], [0.0, 1.0]]

    def test_gather_batches_interleaves_across_chunks(self):
        from repro.db.chunk_plan import gather_batches
        from repro.tasks.base import ExampleBatch

        batches = [
            ExampleBatch(
                "dense",
                X=np.arange(start, start + 4, dtype=np.float64).reshape(2, 2),
                y=np.array([float(start), float(start + 1)]),
                dimension=2,
            )
            for start in (0, 10, 20)
        ]
        # chunk_size 2, 6 examples total; an order hopping between chunks
        out = gather_batches(batches, np.array([5, 0, 2, 1, 4, 3]), 2)
        assert [len(block) for block in out] == [2, 2, 2]
        assert np.concatenate([block.y for block in out]).tolist() == [
            21.0, 0.0, 10.0, 1.0, 20.0, 11.0
        ]

    def test_gather_batches_rejects_out_of_range(self):
        from repro.db.chunk_plan import gather_batches
        from repro.tasks.base import ExampleBatch

        batch = ExampleBatch("dense", X=np.zeros((2, 1)), y=np.zeros(2), dimension=1)
        with pytest.raises(IndexError):
            gather_batches([batch], np.array([2]), 4)

    def test_gather_batches_without_kernels_returns_none(self):
        from repro.db.chunk_plan import gather_batches

        class Opaque:
            def __len__(self):
                return 2

        assert gather_batches([Opaque()], np.array([0]), 4) is None

    def test_decoded_example_batch_take_and_concat(self):
        from repro.tasks.base import DecodedExampleBatch

        a = DecodedExampleBatch(["a", "b"])
        b = DecodedExampleBatch(["c"])
        fused = DecodedExampleBatch.concat([a, b])
        assert fused.take([2, 0]).examples == ["c", "a"]


@pytest.mark.backends
class TestExampleCacheDecodedExamples:
    def test_examples_for_cached_and_invalidated(self):
        data = make_dense_classification(40, 4, seed=10)
        database = Database("postgres", seed=0)
        table = load_classification_table(database, "points", data.examples, sparse=False)
        task = LogisticRegressionTask(data.dimension)
        cache = database.executor.example_cache
        first = cache.examples_for(table, task)
        assert len(first) == 40
        assert cache.examples_for(table, task) is first
        assert cache.hits == 1 and cache.misses == 1
        table.shuffle(seed=1)
        fresh = cache.examples_for(table, task)
        assert fresh is not first

    def test_examples_for_works_for_any_task(self):
        corpus = make_sequences(6, num_labels=3, seed=1)
        database = Database("postgres", seed=0)
        table = load_sequences_table(database, "seqs", corpus.examples)
        task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
        examples = database.executor.example_cache.examples_for(table, task)
        assert [len(e) for e in examples] == [len(e) for e in corpus.examples]


@pytest.mark.backends
class TestChunkPlanLayer:
    def test_resolve_and_worker_partitions(self):
        from repro.db.chunk_plan import ChunkPlan

        data = make_dense_classification(50, 4, seed=16)
        database = Database("postgres", seed=0)
        table = load_classification_table(database, "points", data.examples, sparse=False)
        task = LogisticRegressionTask(data.dimension)
        plan = ChunkPlan.resolve(table, task, database.executor.example_cache, 16)
        assert plan is not None
        assert plan.num_examples == 50
        assert len(plan) == 4  # ceil(50 / 16) chunks
        partitions = plan.worker_partitions(3)
        assert [len(p) for p in partitions] == [17, 17, 16]
        assert sorted(i for p in partitions for i in p) == list(range(50))

    def test_resolve_refuses_unbatchable(self):
        from repro.db.chunk_plan import ChunkPlan

        data = make_dense_classification(10, 4, seed=17)
        database = Database("postgres", seed=0)
        table = load_classification_table(database, "points", data.examples, sparse=False)
        cache = database.executor.example_cache
        assert ChunkPlan.resolve(table, None, cache, 16) is None
        assert ChunkPlan.resolve(table, PerTupleOnlyTask(4), cache, 16) is None
