"""Parity suite: the chunked columnar path must reproduce the per-tuple path.

The chunked fast path (cached ExampleBatches + vectorized/sequential kernels)
claims *bit-for-bit* identical models for exact IGD and identical-to-1e-9
objective traces.  These tests pin that claim for LR, SVM, lasso and least
squares across all three data orderings, for dense and sparse features, plus
the LMF task, the loss/accuracy aggregates, mini-batch semantics, and the
version-keyed example cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.driver import IGDConfig, train
from repro.core.model import Model
from repro.core.uda import AccuracyAggregate, IGDAggregate, LossAggregate
from repro.data import (
    load_classification_table,
    load_ratings_table,
    make_dense_classification,
    make_ratings,
    make_sparse_classification,
)
from repro.db.engine import Database
from repro.db.errors import ExecutionError
from repro.tasks import (
    LassoTask,
    LogisticRegressionTask,
    LowRankMatrixFactorizationTask,
    SVMTask,
)
from repro.tasks.base import ExampleCache, SupervisedExample
from repro.tasks.least_squares import LinearRegressionTask

TASKS = {
    "lr": LogisticRegressionTask,
    "svm": SVMTask,
    "lasso": LassoTask,
    "least_squares": LinearRegressionTask,
}
ORDERINGS = ("shuffle_once", "shuffle_always", "clustered")
STEP = {"kind": "epoch_decay", "alpha0": 0.05, "decay": 0.9}


def _tiny_edge_table():
    from repro.db import ColumnType, Schema, Table

    schema = Schema.of(("vec", ColumnType.FLOAT_ARRAY), ("label", ColumnType.FLOAT))
    table = Table("edge", schema)
    table.insert(([1.0], 1.0))  # wx = -1e-17 for w = [-1e-17]
    return table


def _train(task_cls, data, *, sparse: bool, ordering: str, execution: str, **config):
    database = Database("postgres", seed=0)
    load_classification_table(database, "points", data.examples, sparse=sparse, replace=True)
    task = task_cls(data.dimension)
    cfg = IGDConfig(
        step_size=STEP,
        max_epochs=3,
        ordering=ordering,
        seed=11,
        execution=execution,
        **config,
    )
    return train(task, database, "points", config=cfg)


class TestChunkedPathParity:
    @pytest.mark.parametrize("ordering", ORDERINGS)
    @pytest.mark.parametrize("task_name", sorted(TASKS))
    def test_dense_models_bit_identical(self, task_name, ordering):
        data = make_dense_classification(160, 10, seed=0)
        per_tuple = _train(TASKS[task_name], data, sparse=False, ordering=ordering,
                           execution="per_tuple")
        chunked = _train(TASKS[task_name], data, sparse=False, ordering=ordering,
                         execution="chunked")
        assert np.array_equal(per_tuple.model["w"], chunked.model["w"])
        assert np.allclose(
            per_tuple.objective_trace(), chunked.objective_trace(), atol=1e-9, rtol=0
        )

    @pytest.mark.parametrize("task_name", sorted(TASKS))
    def test_sparse_models_bit_identical(self, task_name):
        data = make_sparse_classification(150, 40, nonzeros_per_example=5, seed=1)
        per_tuple = _train(TASKS[task_name], data, sparse=True, ordering="shuffle_once",
                           execution="per_tuple")
        chunked = _train(TASKS[task_name], data, sparse=True, ordering="shuffle_once",
                         execution="chunked")
        assert np.array_equal(per_tuple.model["w"], chunked.model["w"])
        assert np.allclose(
            per_tuple.objective_trace(), chunked.objective_trace(), atol=1e-9, rtol=0
        )

    def test_gradient_step_counts_match(self):
        data = make_dense_classification(90, 6, seed=2)
        per_tuple = _train(LogisticRegressionTask, data, sparse=False,
                           ordering="shuffle_once", execution="per_tuple")
        chunked = _train(LogisticRegressionTask, data, sparse=False,
                         ordering="shuffle_once", execution="chunked")
        assert [r.gradient_steps for r in per_tuple.history] == [
            r.gradient_steps for r in chunked.history
        ]

    def test_lmf_models_bit_identical(self):
        ratings = make_ratings(40, 30, 500, rank=4, seed=3)
        results = {}
        for execution in ("per_tuple", "chunked"):
            database = Database("postgres", seed=0)
            load_ratings_table(database, "ratings", ratings.examples, replace=True)
            task = LowRankMatrixFactorizationTask(
                ratings.num_rows, ratings.num_cols, rank=4, mu=0.01
            )
            results[execution] = train(
                task, database, "ratings",
                config=IGDConfig(step_size=0.05, max_epochs=3, ordering="shuffle_once",
                                 seed=5, execution=execution),
            )
        assert np.array_equal(results["per_tuple"].model["L"], results["chunked"].model["L"])
        assert np.array_equal(results["per_tuple"].model["R"], results["chunked"].model["R"])
        assert np.allclose(
            results["per_tuple"].objective_trace(),
            results["chunked"].objective_trace(),
            atol=1e-9, rtol=0,
        )

    def test_auto_equals_chunked_on_batchable_workload(self):
        data = make_dense_classification(100, 8, seed=4)
        auto = _train(SVMTask, data, sparse=False, ordering="shuffle_once", execution="auto")
        chunked = _train(SVMTask, data, sparse=False, ordering="shuffle_once",
                         execution="chunked")
        assert np.array_equal(auto.model["w"], chunked.model["w"])


class TestLossAndAccuracyAggregates:
    def _database_and_task(self):
        data = make_dense_classification(120, 7, seed=6)
        database = Database("postgres", seed=0)
        load_classification_table(database, "points", data.examples, sparse=False)
        task = LogisticRegressionTask(data.dimension)
        rng = np.random.default_rng(0)
        model = Model({"w": rng.normal(size=data.dimension)})
        return database, task, model

    def test_loss_aggregate_chunked_matches_per_tuple(self):
        database, task, model = self._database_and_task()
        per_tuple = database.run_aggregate("points", LossAggregate(task, model))
        chunked = database.run_aggregate(
            "points", LossAggregate(task, model), execution="chunked"
        )
        assert chunked == pytest.approx(per_tuple, abs=1e-9)

    def test_accuracy_aggregate_chunked_matches_per_tuple(self):
        database, task, model = self._database_and_task()
        per_tuple = database.run_aggregate("points", AccuracyAggregate(task, model))
        chunked = database.run_aggregate(
            "points", AccuracyAggregate(task, model), execution="chunked"
        )
        assert chunked == per_tuple

    def test_lr_accuracy_parity_at_sub_ulp_decision_values(self):
        """wx an ulp below zero still rounds sigmoid to exactly 0.5: both
        paths must classify it +1, like the scalar classify threshold."""
        database = Database("postgres", seed=0)
        database.register_table(_tiny_edge_table())
        task = LogisticRegressionTask(1)
        model = Model({"w": np.array([-1e-17])})
        per_tuple = database.run_aggregate("edge", AccuracyAggregate(task, model))
        chunked = database.run_aggregate(
            "edge", AccuracyAggregate(task, model), execution="chunked"
        )
        assert chunked == per_tuple == 1.0


class TestMiniBatchMode:
    def test_batch_size_one_recovers_exact_igd(self):
        data = make_dense_classification(110, 9, seed=7)
        exact = _train(LogisticRegressionTask, data, sparse=False,
                       ordering="shuffle_once", execution="per_tuple")
        minibatch = _train(LogisticRegressionTask, data, sparse=False,
                           ordering="shuffle_once", execution="chunked", batch_size=1)
        assert np.array_equal(exact.model["w"], minibatch.model["w"])

    @pytest.mark.parametrize("task_name", sorted(TASKS))
    def test_single_row_minibatch_step_equals_gradient_step(self, task_name):
        """The averaged-gradient kernel with B=1 is one plain IGD step."""
        data = make_dense_classification(16, 5, seed=8)
        task = TASKS[task_name](data.dimension)
        rng = np.random.default_rng(1)
        reference = Model({"w": rng.normal(size=data.dimension)})
        batched = reference.copy()

        database = Database("postgres")
        table = load_classification_table(database, "pts", data.examples, sparse=False)
        chunk = next(table.iter_chunks(len(data.examples)))
        batch = task.batch_from_chunk(chunk)
        for i, example in enumerate(data.examples):
            task.gradient_step(reference, SupervisedExample(example.features, example.label), 0.03)
            task.minibatch_step(batched, batch, i, i + 1, 0.03)
        assert np.allclose(reference["w"], batched["w"], atol=1e-12, rtol=0)

    def test_minibatch_training_converges(self):
        data = make_dense_classification(200, 8, seed=9)
        result = _train(LogisticRegressionTask, data, sparse=False,
                        ordering="shuffle_once", execution="chunked", batch_size=16)
        trace = result.objective_trace()
        assert trace[-1] < trace[0]
        # ceil(200 / 16) = 13 averaged steps per epoch, not 200
        assert result.history[0].gradient_steps == 13

    def test_minibatch_requires_chunkable_path(self):
        data = make_dense_classification(30, 4, seed=10)
        with pytest.raises(ValueError):
            IGDConfig(batch_size=4, execution="per_tuple")
        database = Database("postgres", seed=0)
        load_classification_table(database, "points", data.examples, sparse=False)
        aggregate = IGDAggregate(LogisticRegressionTask(data.dimension), 0.05, batch_size=4)
        with pytest.raises(ExecutionError):
            database.run_aggregate("points", aggregate)  # per-tuple path refuses

    def test_minibatch_config_normalises_auto_to_strict_chunked(self):
        """B > 1 must fail fast on unbatchable workloads, not mid-epoch."""
        assert IGDConfig(batch_size=4).execution == "chunked"
        from repro.data import load_sequences_table, make_sequences
        from repro.tasks import ConditionalRandomFieldTask

        corpus = make_sequences(4, num_labels=3, seed=0)
        database = Database("postgres", seed=0)
        load_sequences_table(database, "seqs", corpus.examples)
        task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
        with pytest.raises(ExecutionError):
            train(task, database, "seqs", config=IGDConfig(batch_size=4, max_epochs=1))


class TestExecutionModes:
    def test_chunked_raises_for_unbatchable_task(self):
        from repro.data import load_sequences_table, make_sequences
        from repro.tasks import ConditionalRandomFieldTask

        corpus = make_sequences(4, num_labels=3, seed=0)
        database = Database("postgres", seed=0)
        load_sequences_table(database, "seqs", corpus.examples)
        task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
        aggregate = IGDAggregate(task, 0.05)
        with pytest.raises(ExecutionError):
            database.run_aggregate("seqs", aggregate, execution="chunked")

    def test_auto_falls_back_for_unbatchable_task(self):
        from repro.data import load_sequences_table, make_sequences
        from repro.tasks import ConditionalRandomFieldTask

        corpus = make_sequences(4, num_labels=3, seed=0)
        database = Database("postgres", seed=0)
        load_sequences_table(database, "seqs", corpus.examples)
        task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
        model = database.run_aggregate(
            "seqs", IGDAggregate(task, 0.05), execution="auto"
        )
        assert model.metadata["gradient_steps"] == 4

    def test_unknown_execution_mode_rejected(self):
        database = Database("postgres", seed=0)
        database.create_table("t", [("x", "float")])
        with pytest.raises(ExecutionError):
            database.run_aggregate("t", "count", "x", execution="warp")
        with pytest.raises(ValueError):
            IGDConfig(execution="warp")

    def test_chunked_execution_counts_one_scan_per_pass(self):
        data = make_dense_classification(60, 5, seed=11)
        database = Database("postgres", seed=0)
        table = load_classification_table(database, "points", data.examples, sparse=False)
        task = LogisticRegressionTask(data.dimension)
        model = task.initial_model()
        before = table.scan_count
        database.run_aggregate("points", LossAggregate(task, model), execution="chunked")
        assert table.scan_count == before + 1
        # a cached pass still counts as one logical scan
        database.run_aggregate("points", LossAggregate(task, model), execution="chunked")
        assert table.scan_count == before + 2


class TestExampleCacheInvalidation:
    def _setup(self):
        data = make_dense_classification(64, 5, seed=12)
        database = Database("postgres", seed=0)
        table = load_classification_table(database, "points", data.examples, sparse=False)
        task = LogisticRegressionTask(data.dimension)
        return database, table, task

    def test_cache_hit_on_unchanged_table(self):
        database, table, task = self._setup()
        cache = database.executor.example_cache
        first = cache.batches_for(table, task, 32)
        second = cache.batches_for(table, task, 32)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_shuffle_busts_cache(self):
        database, table, task = self._setup()
        cache = database.executor.example_cache
        stale = cache.batches_for(table, task, 32)
        table.shuffle(seed=0)
        fresh = cache.batches_for(table, task, 32)
        assert fresh is not stale
        first_ids_stale = stale[0].y
        first_ids_fresh = fresh[0].y
        # reordering must be visible through the cache
        assert not np.array_equal(first_ids_stale, first_ids_fresh)

    def test_cluster_by_busts_cache(self):
        database, table, task = self._setup()
        cache = database.executor.example_cache
        stale = cache.batches_for(table, task, 32)
        table.cluster_by("label")
        assert cache.batches_for(table, task, 32) is not stale

    def test_insert_busts_cache(self):
        database, table, task = self._setup()
        cache = database.executor.example_cache
        stale = cache.batches_for(table, task, 32)
        table.insert((999, np.zeros(5), 1.0))
        fresh = cache.batches_for(table, task, 32)
        assert fresh is not stale
        assert sum(len(b) for b in fresh) == sum(len(b) for b in stale) + 1

    def test_task_without_batch_support_short_circuits(self):
        database, table, _ = self._setup()
        from repro.tasks import ConditionalRandomFieldTask

        crf = ConditionalRandomFieldTask(4, 3)
        cache = database.executor.example_cache
        assert cache.batches_for(table, crf, 32) is None
        assert cache.misses == 0  # CRF does not support batches: no build attempted

    def test_unbatchable_column_negatively_cached(self):
        from repro.db import ColumnType, Schema, Table

        schema = Schema.of(("vec", ColumnType.ANY), ("label", ColumnType.FLOAT))
        table = Table("mixed", schema)
        table.insert_many([(np.zeros(3), 1.0), ({0: 1.0}, -1.0)])  # mixed dense/sparse
        task = LogisticRegressionTask(3)
        cache = ExampleCache()
        assert cache.batches_for(table, task, 32) is None
        assert cache.misses == 1
        # second lookup is a hit on the negative entry, not a re-decode
        assert cache.batches_for(table, task, 32) is None
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_respects_max_entries(self):
        _, table, _ = self._setup()
        cache = ExampleCache(max_entries=2)
        tasks = [LogisticRegressionTask(5) for _ in range(3)]
        for task in tasks:
            cache.batches_for(table, task, 32)
        assert len(cache) == 2

    def test_replaced_table_with_same_name_and_version_not_served_stale(self):
        """A dropped-and-recreated table restarts its version sequence; the
        cache must bind to the table object, not just (name, version)."""
        database = Database("postgres", seed=0)
        task = LogisticRegressionTask(3)
        old = make_dense_classification(40, 3, seed=13)
        new = make_dense_classification(40, 3, seed=14)
        old_table = load_classification_table(database, "pts", old.examples, sparse=False)
        per_tuple_old = database.run_aggregate(
            "pts", LossAggregate(task, task.initial_model())
        )
        chunked_old = database.run_aggregate(
            "pts", LossAggregate(task, task.initial_model()), execution="chunked"
        )
        load_classification_table(database, "pts", new.examples, sparse=False, replace=True)
        assert database.table("pts").version == old_table.version  # the trap
        per_tuple_new = database.run_aggregate(
            "pts", LossAggregate(task, task.initial_model())
        )
        chunked_new = database.run_aggregate(
            "pts", LossAggregate(task, task.initial_model()), execution="chunked"
        )
        assert chunked_old == pytest.approx(per_tuple_old, abs=1e-9)
        assert chunked_new == pytest.approx(per_tuple_new, abs=1e-9)


class TestSparseEdgeCases:
    def test_decision_values_with_trailing_empty_rows(self):
        """reduceat segment handling: empty sparse rows (all-zero examples)
        anywhere in the chunk must not truncate their neighbours' dots."""
        from repro.db import ColumnType, Schema, Table

        schema = Schema.of(("vec", ColumnType.SPARSE_VECTOR), ("label", ColumnType.FLOAT))
        table = Table("sparse_edge", schema)
        table.insert_many(
            [
                ({0: 1.0, 1: 2.0}, 1.0),
                ({}, -1.0),
                ({1: 3.0}, 1.0),
                ({}, -1.0),
            ]
        )
        task = LogisticRegressionTask(2)
        batch = task.batch_from_chunk(next(table.iter_chunks(16)))
        w = np.array([10.0, 100.0])
        assert batch.decision_values(w).tolist() == [210.0, 0.0, 300.0, 0.0]
        # slices hit the same code path
        assert batch.decision_values(w, 0, 2).tolist() == [210.0, 0.0]
        assert batch.decision_values(w, 3, 4).tolist() == [0.0]

    def test_chunked_parity_with_empty_sparse_rows(self):
        from repro.db import ColumnType, Schema, Table

        rng = np.random.default_rng(15)
        schema = Schema.of(("vec", ColumnType.SPARSE_VECTOR), ("label", ColumnType.FLOAT))
        rows = []
        for i in range(60):
            if i % 7 == 0:
                features = {}
            else:
                features = {int(j): float(rng.normal()) for j in rng.choice(10, size=3, replace=False)}
            rows.append((features, 1.0 if rng.random() > 0.5 else -1.0))
        results = {}
        for execution in ("per_tuple", "chunked"):
            database = Database("postgres", seed=0)
            table = Table("pts", schema)
            table.insert_many(rows)
            database.register_table(table)
            task = LogisticRegressionTask(10)
            results[execution] = train(
                task, database, "pts",
                config=IGDConfig(step_size=0.1, max_epochs=3, ordering="shuffle_once",
                                 seed=2, execution=execution),
            )
        assert np.array_equal(results["per_tuple"].model["w"], results["chunked"].model["w"])
        assert np.allclose(
            results["per_tuple"].objective_trace(),
            results["chunked"].objective_trace(),
            atol=1e-9, rtol=0,
        )
