"""Tests for ordering policies, reservoir/MRS sampling and parallel schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ClusteredOrder,
    Model,
    PureUDAParallelism,
    ReservoirSampler,
    SharedMemoryParallelism,
    ShuffleAlways,
    ShuffleOnce,
    make_ordering,
    modeled_epoch_seconds,
    modeled_speedup,
    ordering_names,
    partition_round_robin,
    run_clustered_no_shuffle,
    run_multiplexed_reservoir_sampling,
    run_shared_memory_epoch,
    run_subsampling,
)
from repro.data import make_dense_classification
from repro.db import ColumnType, Schema, Table
from repro.tasks import LogisticRegressionTask, SupervisedExample


@pytest.fixture
def label_table():
    schema = Schema.of(("id", ColumnType.INTEGER), ("label", ColumnType.FLOAT))
    table = Table("t", schema)
    table.insert_many((i, 1.0 if i < 10 else -1.0) for i in range(20))
    return table


class TestOrderingPolicies:
    def test_clustered_is_noop_without_column(self, label_table):
        policy = ClusteredOrder()
        before = label_table.column_values("id")
        policy.prepare(label_table, np.random.default_rng(0))
        policy.before_epoch(label_table, 0, np.random.default_rng(0))
        assert label_table.column_values("id") == before
        assert policy.shuffle_count == 0

    def test_clustered_with_column_sorts(self, label_table):
        label_table.shuffle(seed=1)
        policy = ClusteredOrder(cluster_column="label", descending=True)
        policy.prepare(label_table, np.random.default_rng(0))
        labels = label_table.column_values("label")
        assert labels == sorted(labels, reverse=True)

    def test_physical_shuffle_once_only_prepares(self, label_table):
        policy = ShuffleOnce(mode="physical")
        rng = np.random.default_rng(0)
        policy.prepare(label_table, rng)
        after_prepare = label_table.column_values("id")
        policy.before_epoch(label_table, 0, rng)
        policy.before_epoch(label_table, 1, rng)
        assert label_table.column_values("id") == after_prepare
        assert policy.shuffle_count == 1
        assert policy.shuffle_seconds >= 0.0

    def test_physical_shuffle_always_reshuffles_each_epoch(self, label_table):
        policy = ShuffleAlways(mode="physical")
        rng = np.random.default_rng(0)
        policy.prepare(label_table, rng)
        policy.before_epoch(label_table, 0, rng)
        first = label_table.column_values("id")
        policy.before_epoch(label_table, 1, rng)
        second = label_table.column_values("id")
        assert policy.shuffle_count == 2
        assert first != second

    def test_make_ordering_coercion(self):
        assert isinstance(make_ordering(None), ShuffleOnce)
        assert isinstance(make_ordering("clustered"), ClusteredOrder)
        policy = ShuffleAlways()
        assert make_ordering(policy) is policy
        with pytest.raises(ValueError):
            make_ordering("alphabetical")
        physical = make_ordering("shuffle_always", mode="physical")
        assert isinstance(physical, ShuffleAlways) and not physical.logical

    def test_ordering_names(self):
        assert set(ordering_names()) == {"clustered", "shuffle_always", "shuffle_once"}

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ShuffleOnce(mode="virtual")

    def test_mode_kwarg_forwards_uniformly(self):
        """make_ordering(name, mode="physical") works for every policy name."""
        for name in ordering_names():
            policy = make_ordering(name, mode="physical")
            assert not policy.logical
        with pytest.raises(ValueError):
            make_ordering("clustered", mode="logical")


class TestLogicalOrdering:
    """Logical shuffles permute a stable table version — the heap never moves."""

    def test_shuffle_is_logical_by_default(self):
        assert ShuffleOnce().logical
        assert ShuffleAlways().logical
        assert not ClusteredOrder().logical

    def test_logical_shuffle_once_never_touches_the_table(self, label_table):
        policy = ShuffleOnce()
        rng = np.random.default_rng(0)
        before_ids = label_table.column_values("id")
        version = label_table.version
        policy.prepare(label_table, rng)
        first = policy.epoch_row_order(len(label_table), 0, rng)
        policy.before_epoch(label_table, 1, rng)
        second = policy.epoch_row_order(len(label_table), 1, rng)
        assert label_table.column_values("id") == before_ids
        assert label_table.version == version
        assert first is second  # one permutation, reused every epoch
        assert policy.shuffle_count == 1
        assert sorted(first.tolist()) == list(range(len(label_table)))

    def test_logical_shuffle_always_fresh_permutation_per_epoch(self, label_table):
        policy = ShuffleAlways()
        rng = np.random.default_rng(0)
        version = label_table.version
        policy.prepare(label_table, rng)
        first = policy.epoch_row_order(len(label_table), 0, rng)
        # same epoch, same length -> same permutation (loss pass and training
        # pass of one epoch must agree)
        assert policy.epoch_row_order(len(label_table), 0, rng) is first
        second = policy.epoch_row_order(len(label_table), 1, rng)
        assert label_table.version == version
        assert first.tolist() != second.tolist()
        assert policy.shuffle_count == 2

    def test_logical_orders_generated_per_row_count(self, label_table):
        """Segmented backends ask per segment length; each gets its own perm."""
        policy = ShuffleAlways()
        rng = np.random.default_rng(0)
        whole = policy.epoch_row_order(20, 0, rng)
        segment = policy.epoch_row_order(7, 0, rng)
        assert sorted(whole.tolist()) == list(range(20))
        assert sorted(segment.tolist()) == list(range(7))

    @pytest.mark.parametrize("policy_cls", [ShuffleOnce, ShuffleAlways])
    def test_equal_length_partitions_draw_independent_permutations(self, policy_cls):
        """Equal-length segments must not share one permutation: each
        partition index is its own segment-local ORDER BY RANDOM()."""
        policy = policy_cls()
        rng = np.random.default_rng(0)
        first = policy.epoch_row_order(30, 0, rng, partition=0)
        second = policy.epoch_row_order(30, 0, rng, partition=1)
        assert first is not second
        assert first.tolist() != second.tolist()
        # ...but re-asking for the same partition in the same epoch is stable
        assert policy.epoch_row_order(30, 0, rng, partition=1) is second

    def test_prepare_resets_logical_state_for_runner_reuse(self, label_table):
        policy = ShuffleOnce()
        rng = np.random.default_rng(0)
        policy.prepare(label_table, rng)
        first = policy.epoch_row_order(20, 0, rng)
        policy.prepare(label_table, rng)  # a second training run
        second = policy.epoch_row_order(20, 0, rng)
        assert first is not second

    def test_physical_policies_return_no_row_order(self, label_table):
        rng = np.random.default_rng(0)
        for policy in (ShuffleOnce(mode="physical"), ShuffleAlways(mode="physical"), ClusteredOrder()):
            assert policy.epoch_row_order(20, 0, rng) is None


class TestReservoirSampler:
    def test_fill_phase_drops_nothing(self):
        sampler = ReservoirSampler(5, np.random.default_rng(0))
        dropped = [sampler.offer(i) for i in range(5)]
        assert dropped == [None] * 5
        assert sampler.is_full
        assert sorted(sampler.sample()) == [0, 1, 2, 3, 4]

    def test_post_fill_always_drops_exactly_one(self):
        sampler = ReservoirSampler(5, np.random.default_rng(0))
        for i in range(5):
            sampler.offer(i)
        for i in range(5, 50):
            dropped = sampler.offer(i)
            assert dropped is not None
        assert len(sampler) == 5

    def test_items_conserved(self):
        sampler = ReservoirSampler(10, np.random.default_rng(3))
        dropped = []
        items = list(range(100))
        for item in items:
            out = sampler.offer(item)
            if out is not None:
                dropped.append(out)
        assert sorted(dropped + sampler.sample()) == items

    def test_uniformity_rough(self):
        # Each of the 20 items should land in a capacity-10 reservoir about
        # half the time; verify the inclusion frequencies are not degenerate.
        counts = np.zeros(20)
        for seed in range(300):
            sampler = ReservoirSampler(10, np.random.default_rng(seed))
            for i in range(20):
                sampler.offer(i)
            for kept in sampler.sample():
                counts[kept] += 1
        frequencies = counts / 300
        assert frequencies.min() > 0.3
        assert frequencies.max() < 0.7

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0)


class TestSamplingRunners:
    @pytest.fixture
    def clustered_examples(self):
        dataset = make_dense_classification(120, 6, seed=5).clustered_by_label()
        return dataset.examples, LogisticRegressionTask(6)

    def test_subsampling_trains_only_on_buffer(self, clustered_examples):
        examples, task = clustered_examples
        result = run_subsampling(examples, task, buffer_size=20, epochs=4, step_size=0.1, seed=0)
        assert result.scheme == "subsampling"
        assert result.buffer_size == 20
        assert len(result.history) == 4
        assert result.history[0].gradient_steps == 20

    def test_mrs_converges_better_than_subsampling(self, clustered_examples):
        examples, task = clustered_examples
        subsampling = run_subsampling(
            examples, task, buffer_size=12, epochs=6, step_size=0.1, seed=0
        )
        mrs = run_multiplexed_reservoir_sampling(
            examples, task, buffer_size=12, epochs=6, step_size=0.1, seed=0
        )
        assert mrs.final_objective < subsampling.final_objective

    def test_mrs_uses_more_gradient_steps_per_epoch(self, clustered_examples):
        examples, task = clustered_examples
        mrs = run_multiplexed_reservoir_sampling(
            examples, task, buffer_size=12, epochs=2, step_size=0.1, seed=0
        )
        # I/O worker steps on dropped tuples plus memory-worker steps.
        assert mrs.history[-1].gradient_steps > len(examples)

    def test_clustered_runner_matches_epoch_count(self, clustered_examples):
        examples, task = clustered_examples
        result = run_clustered_no_shuffle(examples, task, epochs=3, step_size=0.1, seed=0)
        assert len(result.history) == 3
        assert result.history[-1].gradient_steps == 3 * len(examples)

    def test_epochs_to_reach(self, clustered_examples):
        examples, task = clustered_examples
        result = run_clustered_no_shuffle(examples, task, epochs=5, step_size=0.1, seed=0)
        trace = result.objective_trace()
        assert result.epochs_to_reach(trace[-1]) <= 5
        assert result.epochs_to_reach(-1.0) is None

    @pytest.mark.parametrize("extra", [0, 5])
    def test_subsampling_full_buffer_degenerates_to_clustered(self, clustered_examples, extra):
        """buffer_size >= n keeps every tuple in stored order: the Figure 10B
        sweep at fraction 1.0 is plain IGD over the clustered data."""
        examples, task = clustered_examples
        full = run_subsampling(
            examples, task, buffer_size=len(examples) + extra, epochs=3,
            step_size=0.1, seed=0,
        )
        reference = run_clustered_no_shuffle(examples, task, epochs=3, step_size=0.1, seed=0)
        assert full.buffer_size == len(examples)
        assert np.array_equal(full.model["w"], reference.model["w"])
        assert full.objective_trace() == reference.objective_trace()

    @pytest.mark.parametrize("extra", [0, 5])
    def test_mrs_full_buffer_caps_at_n_minus_one(self, clustered_examples, extra):
        """MRS caps the reservoir at n - 1 so the I/O worker — which trains on
        *dropped* tuples only — always takes at least one step per pass."""
        examples, task = clustered_examples
        result = run_multiplexed_reservoir_sampling(
            examples, task, buffer_size=len(examples) + extra, epochs=3,
            step_size=0.1, seed=0,
        )
        assert result.buffer_size == len(examples) - 1
        # Epoch 0: the memory buffer is still empty, so the single dropped
        # tuple of the fill pass is the only gradient step.
        assert result.history[0].gradient_steps == 1
        # Later epochs interleave the full swapped buffer: progress resumes.
        assert result.history[-1].gradient_steps > len(examples)


@pytest.mark.backends
class TestSharedMemoryEpoch:
    @pytest.fixture
    def workload(self):
        dataset = make_dense_classification(100, 5, seed=2)
        return dataset.examples, LogisticRegressionTask(5)

    @pytest.mark.parametrize("scheme", ["lock", "aig", "nolock"])
    def test_all_schemes_make_progress(self, workload, scheme):
        examples, task = workload
        model = task.initial_model()
        before = task.total_loss(model, examples)
        updated, steps = run_shared_memory_epoch(
            examples, task, model, 0.1,
            spec=SharedMemoryParallelism(scheme=scheme, workers=4),
        )
        after = task.total_loss(updated, examples)
        assert steps == len(examples)
        assert after < before

    def test_lock_scheme_matches_round_robin_serial(self, workload):
        examples, task = workload
        model = task.initial_model()
        updated, _ = run_shared_memory_epoch(
            examples, task, model, 0.1,
            spec=SharedMemoryParallelism(scheme="lock", workers=4),
        )
        # Serial reference following the same round-robin worker interleaving.
        reference = task.initial_model()
        partitions = partition_round_robin(len(examples), 4)
        cursors = [0] * 4
        remaining = len(examples)
        step = 0
        while remaining:
            for worker in range(4):
                if cursors[worker] < len(partitions[worker]):
                    index = partitions[worker][cursors[worker]]
                    task.gradient_step(reference, examples[index], 0.1)
                    cursors[worker] += 1
                    remaining -= 1
                    step += 1
        assert updated.allclose(reference, atol=1e-9)

    def test_empty_input(self, workload):
        _, task = workload
        model = task.initial_model()
        updated, steps = run_shared_memory_epoch(
            [], task, model, 0.1, spec=SharedMemoryParallelism(scheme="nolock", workers=4)
        )
        assert steps == 0

    def test_charge_per_tuple_called(self, workload):
        examples, task = workload
        calls = []
        run_shared_memory_epoch(
            examples, task, task.initial_model(), 0.1,
            spec=SharedMemoryParallelism(scheme="nolock", workers=2),
            charge_per_tuple=lambda: calls.append(1),
        )
        assert len(calls) == len(examples)

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            SharedMemoryParallelism(scheme="optimistic", workers=4)
        with pytest.raises(ValueError):
            SharedMemoryParallelism(scheme="nolock", workers=0)

    def test_effective_staleness_defaults(self):
        assert SharedMemoryParallelism(scheme="lock", workers=8).effective_staleness() == 1
        assert SharedMemoryParallelism(scheme="nolock", workers=8).effective_staleness() == 8
        assert SharedMemoryParallelism(scheme="nolock", workers=8, staleness=3).effective_staleness() == 3


@pytest.mark.backends
class TestSpeedupModel:
    def test_partition_round_robin(self):
        partitions = partition_round_robin(10, 3)
        assert [len(p) for p in partitions] == [4, 3, 3]
        assert sorted(i for p in partitions for i in p) == list(range(10))

    def test_single_worker_is_identity(self):
        for scheme in ("lock", "aig", "nolock", "pure_uda"):
            assert modeled_epoch_seconds(2.0, scheme, 1) == pytest.approx(2.0)

    def test_nolock_and_aig_near_linear(self):
        assert modeled_speedup(1.0, "nolock", 8) > 6.5
        assert modeled_speedup(1.0, "aig", 8) > 5.0

    def test_lock_gets_no_speedup(self):
        assert modeled_speedup(1.0, "lock", 8) <= 1.0

    def test_pure_uda_sublinear(self):
        nolock = modeled_speedup(1.0, "nolock", 8)
        pure = modeled_speedup(1.0, "pure_uda", 8, model_passing_cost=5.0, model_parameters=10000)
        assert 1.0 < pure < nolock

    def test_speedup_monotone_in_workers(self):
        speedups = [modeled_speedup(1.0, "nolock", w) for w in range(1, 9)]
        assert all(b >= a for a, b in zip(speedups, speedups[1:]))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            modeled_epoch_seconds(-1.0, "nolock", 4)
        with pytest.raises(ValueError):
            modeled_epoch_seconds(1.0, "nolock", 0)
        with pytest.raises(ValueError):
            modeled_epoch_seconds(1.0, "quantum", 4)

    def test_pure_uda_spec_dataclass(self):
        spec = PureUDAParallelism()
        assert spec.segments is None
        assert spec.name == "pure_uda"
