"""Tests for the IGD aggregate, loss aggregate and stopping rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AnyOf,
    EpochRecord,
    FixedEpochs,
    IGDAggregate,
    LossAggregate,
    Model,
    ObjectiveThreshold,
    RelativeImprovement,
    ToleranceToOptimum,
    make_stopping_rule,
)
from repro.core.uda import AccuracyAggregate
from repro.data import load_catx_table, make_catx
from repro.db import Database
from repro.tasks import (
    LogisticRegressionTask,
    OneDimensionalLeastSquares,
    SupervisedExample,
)


@pytest.fixture
def catx_db():
    database = Database("postgres", seed=0)
    load_catx_table(database, "catx", make_catx(50).examples)
    return database


class TestIGDAggregate:
    def test_runs_one_epoch_over_table(self, catx_db):
        task = OneDimensionalLeastSquares()
        aggregate = IGDAggregate(task, 0.1)
        model = catx_db.run_aggregate("catx", aggregate)
        assert isinstance(model, Model)
        assert model.metadata["gradient_steps"] == 100
        assert model.metadata["epoch"] == 0

    def test_initial_model_is_respected(self, catx_db):
        task = OneDimensionalLeastSquares()
        start = task.initial_model()
        start["w"][0] = 123.0
        aggregate = IGDAggregate(task, 0.0001, initial_model=start)
        model = catx_db.run_aggregate("catx", aggregate)
        # Tiny step size: the model should stay near its starting point.
        assert model["w"][0] == pytest.approx(123.0, rel=0.1)
        # And the caller's model object must not be mutated.
        assert start["w"][0] == 123.0

    def test_transition_accepts_raw_examples(self):
        task = OneDimensionalLeastSquares()
        aggregate = IGDAggregate(task, 0.5)
        state = aggregate.initialize()
        state = aggregate.transition(state, SupervisedExample(1.0, 2.0))
        assert state.gradient_steps == 1
        assert state.model["w"][0] == pytest.approx(1.0)

    def test_merge_is_step_weighted_average(self):
        task = OneDimensionalLeastSquares()
        aggregate = IGDAggregate(task, 0.5)
        state_a = aggregate.initialize()
        state_b = aggregate.initialize()
        state_a.model["w"][0] = 2.0
        state_a.gradient_steps = 30
        state_b.model["w"][0] = -1.0
        state_b.gradient_steps = 10
        merged = aggregate.merge(state_a, state_b)
        assert merged.gradient_steps == 40
        assert merged.model["w"][0] == pytest.approx((2.0 * 30 - 1.0 * 10) / 40)

    def test_merge_with_zero_steps(self):
        task = OneDimensionalLeastSquares()
        aggregate = IGDAggregate(task, 0.5)
        merged = aggregate.merge(aggregate.initialize(), aggregate.initialize())
        assert merged.gradient_steps == 0

    def test_for_epoch_continues_training(self):
        task = OneDimensionalLeastSquares()
        aggregate = IGDAggregate(task, 0.5)
        model = task.initial_model()
        follow_up = aggregate.for_epoch(3, model, step_offset=200)
        state = follow_up.initialize()
        assert state.epoch == 3
        assert state.step_offset == 200

    def test_proximal_applied_each_step(self):
        from repro.core import L1Proximal

        task = OneDimensionalLeastSquares(proximal=L1Proximal(mu=100.0))
        aggregate = IGDAggregate(task, 0.1)
        state = aggregate.initialize()
        state = aggregate.transition(state, SupervisedExample(1.0, 1.0))
        # The huge L1 penalty clamps the weight straight back to zero.
        assert state.model["w"][0] == pytest.approx(0.0)


class TestLossAndAccuracyAggregates:
    def test_loss_aggregate_sums_losses(self, catx_db):
        task = OneDimensionalLeastSquares()
        model = task.initial_model()  # w = 0 -> loss 0.5 per example
        total = catx_db.run_aggregate("catx", LossAggregate(task, model))
        assert total == pytest.approx(0.5 * 100)

    def test_loss_aggregate_merge(self):
        task = OneDimensionalLeastSquares()
        model = task.initial_model()
        aggregate = LossAggregate(task, model)
        a = aggregate.transition(aggregate.initialize(), SupervisedExample(1.0, 1.0))
        b = aggregate.transition(aggregate.initialize(), SupervisedExample(1.0, -1.0))
        assert aggregate.terminate(aggregate.merge(a, b)) == pytest.approx(1.0)

    def test_accuracy_aggregate(self):
        task = LogisticRegressionTask(2)
        model = Model({"w": np.array([1.0, 0.0])})
        aggregate = AccuracyAggregate(task, model)
        examples = [
            SupervisedExample(np.array([1.0, 0.0]), 1.0),
            SupervisedExample(np.array([-1.0, 0.0]), -1.0),
            SupervisedExample(np.array([1.0, 0.0]), -1.0),
        ]
        state = aggregate.initialize()
        for example in examples:
            state = aggregate.transition(state, example)
        assert aggregate.terminate(state) == pytest.approx(2 / 3)

    def test_accuracy_aggregate_requires_classifier(self):
        task = OneDimensionalLeastSquares()
        with pytest.raises(TypeError):
            AccuracyAggregate(task, task.initial_model())


def _history(*objectives: float) -> list[EpochRecord]:
    return [
        EpochRecord(epoch=i, objective=value, elapsed_seconds=0.1, gradient_steps=(i + 1) * 10)
        for i, value in enumerate(objectives)
    ]


class TestStoppingRules:
    def test_fixed_epochs(self):
        rule = FixedEpochs(3)
        assert not rule.should_stop(_history(5, 4))
        assert rule.should_stop(_history(5, 4, 3))

    def test_fixed_epochs_validation(self):
        with pytest.raises(ValueError):
            FixedEpochs(0)

    def test_relative_improvement(self):
        rule = RelativeImprovement(tolerance=0.01, patience=1, min_epochs=2)
        assert not rule.should_stop(_history(100, 50))
        assert rule.should_stop(_history(100, 50, 49.9))

    def test_relative_improvement_patience(self):
        rule = RelativeImprovement(tolerance=0.01, patience=2, min_epochs=2)
        assert not rule.should_stop(_history(100, 99.99, 50))
        assert rule.should_stop(_history(100, 50, 49.99, 49.98))

    def test_objective_threshold(self):
        rule = ObjectiveThreshold(target=10.0)
        assert not rule.should_stop(_history(20, 15))
        assert rule.should_stop(_history(20, 9.9))

    def test_tolerance_to_optimum(self):
        rule = ToleranceToOptimum(optimum=100.0, tolerance=1e-3)
        assert rule.threshold() == pytest.approx(100.1)
        assert not rule.should_stop(_history(101))
        assert rule.should_stop(_history(100.05))

    def test_any_of(self):
        rule = AnyOf(FixedEpochs(5), ObjectiveThreshold(target=1.0))
        assert rule.should_stop(_history(0.5))
        assert rule.should_stop(_history(10, 10, 10, 10, 10))
        assert not rule.should_stop(_history(10, 10))

    def test_any_of_requires_rules(self):
        with pytest.raises(ValueError):
            AnyOf()

    def test_make_stopping_rule_coercions(self):
        assert isinstance(make_stopping_rule(None, max_epochs=7), FixedEpochs)
        assert isinstance(make_stopping_rule(5), FixedEpochs)
        rule = make_stopping_rule({"kind": "tolerance", "optimum": 1.0, "tolerance": 0.01})
        assert isinstance(rule, ToleranceToOptimum)
        existing = FixedEpochs(2)
        assert make_stopping_rule(existing) is existing

    def test_make_stopping_rule_unknown_kind(self):
        with pytest.raises(ValueError):
            make_stopping_rule({"kind": "psychic"})
