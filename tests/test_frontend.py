"""Tests for the MADlib-style SQL front end and model persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Model
from repro.data import (
    load_classification_table,
    load_ratings_table,
    load_sequences_table,
    make_dense_classification,
    make_ratings,
    make_sequences,
    make_sparse_classification,
)
from repro.db import Database, SegmentedDatabase
from repro.frontend import install_frontend, load_model, model_exists, save_model


@pytest.fixture
def frontend_db():
    database = Database("postgres", seed=0)
    dense = make_dense_classification(150, 6, seed=0)
    load_classification_table(database, "labeledpapers", dense.examples, sparse=False)
    install_frontend(database)
    return database


class TestModelPersistence:
    def test_save_and_load_roundtrip(self, frontend_db):
        model = Model({"w": np.array([1.0, -2.0, 3.5]), "b": np.array([[1.0, 2.0], [3.0, 4.0]])})
        save_model(frontend_db, "roundtrip", model)
        assert model_exists(frontend_db, "roundtrip")
        loaded = load_model(frontend_db, "roundtrip")
        assert loaded.allclose(model)

    def test_save_overwrites_existing(self, frontend_db):
        save_model(frontend_db, "m", Model({"w": np.array([1.0])}))
        save_model(frontend_db, "m", Model({"w": np.array([5.0, 6.0])}))
        loaded = load_model(frontend_db, "m")
        np.testing.assert_allclose(loaded["w"], [5.0, 6.0])

    def test_model_tables_are_relations(self, frontend_db):
        save_model(frontend_db, "relmodel", Model({"w": np.array([1.0, 2.0])}))
        rows = frontend_db.execute("SELECT count(*) FROM relmodel").scalar()
        assert rows == 2

    def test_model_exists_false_for_missing(self, frontend_db):
        assert not model_exists(frontend_db, "nothere")


class TestTrainingFunctions:
    def test_svmtrain_query_from_paper(self, frontend_db):
        """The exact interaction from Section 2.1 of the paper."""
        result = frontend_db.execute(
            "SELECT SVMTrain('myModel', 'labeledpapers', 'vec', 'label')"
        )
        assert "myModel" in result.scalar()
        assert model_exists(frontend_db, "myModel")
        accuracy = frontend_db.execute(
            "SELECT ClassifyAccuracy('myModel', 'labeledpapers', 'vec', 'label')"
        ).scalar()
        assert accuracy > 0.8

    def test_lrtrain_and_predict(self, frontend_db):
        frontend_db.execute("SELECT LRTrain('lrModel', 'labeledpapers', 'vec', 'label')")
        message = frontend_db.execute(
            "SELECT LRPredict('lrModel', 'labeledpapers', 'vec', 'scores')"
        ).scalar()
        assert "scored 150 rows" in message
        assert frontend_db.has_table("scores")
        scores = frontend_db.table("scores").column_values("score")
        assert all(0.0 <= value <= 1.0 for value in scores)

    def test_svmpredict_writes_decisions(self, frontend_db):
        frontend_db.execute("SELECT SVMTrain('m2', 'labeledpapers', 'vec', 'label')")
        message = frontend_db.execute(
            "SELECT SVMPredict('m2', 'labeledpapers', 'vec', 'decisions')"
        ).scalar()
        assert "150 rows" in message
        assert len(frontend_db.table("decisions")) == 150

    def test_lassotrain(self, frontend_db):
        frontend_db.execute(
            "SELECT LassoTrain('lassoModel', 'labeledpapers', 'vec', 'label', 0.1)"
        )
        model = load_model(frontend_db, "lassoModel")
        assert model["w"].shape == (6,)

    def test_training_with_explicit_params(self, frontend_db):
        message = frontend_db.execute(
            "SELECT LRTrain('custom', 'labeledpapers', 'vec', 'label', 0.05, 3)"
        ).scalar()
        assert "epochs=3" in message

    def test_sparse_training(self):
        database = Database("postgres", seed=0)
        sparse = make_sparse_classification(80, 40, nonzeros_per_example=5, seed=1)
        load_classification_table(database, "sparse_docs", sparse.examples, sparse=True)
        install_frontend(database)
        database.execute("SELECT SVMTrain('sm', 'sparse_docs', 'vec', 'label')")
        model = load_model(database, "sm")
        assert model["w"].shape == (40,)

    def test_lmftrain(self):
        database = Database("postgres", seed=0)
        ratings = make_ratings(30, 20, 300, rank=3, seed=2)
        load_ratings_table(database, "ratings", ratings.examples)
        install_frontend(database)
        database.execute("SELECT LMFTrain('mf', 'ratings', 'row_id', 'col_id', 'rating', 3)")
        model = load_model(database, "mf")
        assert model["L"].shape == (30, 3)
        assert model["R"].shape == (20, 3)
        mean_prediction = database.execute(
            "SELECT LMFPredict('mf', 'ratings', 'row_id', 'col_id')"
        ).scalar()
        assert np.isfinite(mean_prediction)

    def test_crftrain(self):
        database = Database("postgres", seed=0)
        corpus = make_sequences(12, mean_length=6, num_labels=3, seed=3)
        load_sequences_table(database, "sentences", corpus.examples)
        install_frontend(database)
        message = database.execute(
            "SELECT CRFTrain('crfModel', 'sentences', 'tokens', 'labels', 0.2, 3)"
        ).scalar()
        assert "crfModel" in message
        model = load_model(database, "crfModel")
        assert "emission" in model and "transition" in model

    def test_frontend_on_segmented_database(self):
        database = SegmentedDatabase(4, "dbms_b", seed=0)
        dense = make_dense_classification(100, 5, seed=4)
        load_classification_table(database, "labeledpapers", dense.examples, sparse=False)
        install_frontend(database)
        result = database.execute("SELECT SVMTrain('pm', 'labeledpapers', 'vec', 'label')")
        assert "pm" in result.scalar()
        assert model_exists(database, "pm")
