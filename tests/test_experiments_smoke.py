"""Smoke tests for the experiment harness: every table/figure function runs at
tiny scale and produces the qualitative shape the paper reports."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentScale,
    overhead_percent,
    render_series,
    render_table,
    resolve_scale,
    run_catx_experiment,
    run_crf_comparison,
    run_data_ordering_experiment,
    run_datasets_table,
    run_mrs_convergence,
    run_overhead_table,
    run_parallel_convergence,
    run_payload_transport_experiment,
    run_speedup_experiment,
    time_callable,
    tolerance_target,
)

TINY = ExperimentScale(
    name="tiny",
    dense_examples=150,
    dense_dimension=10,
    sparse_examples=80,
    sparse_dimension=300,
    sparse_nonzeros=6,
    rating_rows=30,
    rating_cols=20,
    num_ratings=300,
    num_sequences=10,
    sequence_labels=3,
    scalability_examples=500,
    max_epochs=6,
)


class TestHarnessHelpers:
    def test_resolve_scale(self):
        assert resolve_scale(None).name == "small"
        assert resolve_scale("medium").name == "medium"
        assert resolve_scale(TINY) is TINY
        with pytest.raises(ValueError):
            resolve_scale("galactic")

    def test_overhead_percent(self):
        assert overhead_percent(1.0, 2.0) == pytest.approx(100.0)
        assert overhead_percent(0.0, 1.0) == float("inf")

    def test_tolerance_target(self):
        assert tolerance_target(100.0, 0.01) == pytest.approx(101.0)

    def test_time_callable(self):
        sample = time_callable(lambda: sum(range(1000)), repeats=3, label="sum")
        assert len(sample.seconds) == 3
        assert sample.mean >= sample.minimum >= 0

    def test_render_table_and_series(self):
        table = render_table(["a", "b"], [(1, 2.5), ("x", None)], title="T")
        assert "T" in table and "a" in table and "x" in table
        series = render_series("s", range(30), [float(i) for i in range(30)])
        assert series.startswith("s:")


class TestDatasetsTable:
    def test_table1_rows(self):
        result = run_datasets_table(TINY)
        assert len(result.rows) == 7
        assert result.by_name("forest_like").num_examples == TINY.dense_examples
        rendered = result.render()
        assert "forest_like" in rendered and "movielens_like" in rendered


class TestCATXFigure5:
    def test_clustered_needs_more_epochs_than_random(self):
        result = run_catx_experiment(n=200, max_epochs=60)
        assert result.random_epochs_to_converge is not None
        assert result.clustered_epochs_to_converge is not None
        assert result.clustered_epochs_to_converge > result.random_epochs_to_converge
        assert "Figure 5" in result.render()

    def test_traces_have_expected_length(self):
        result = run_catx_experiment(n=50, max_epochs=5)
        assert len(result.random_trace) == 5 * 100 + 1
        assert len(result.clustered_trace) == 5 * 100 + 1


class TestOrderingFigure8:
    def test_shuffle_once_beats_clustered(self):
        result = run_data_ordering_experiment(TINY, max_epochs=10)
        assert set(result.runs) == {"shuffle_always", "shuffle_once", "clustered"}
        shuffle_once = result.runs["shuffle_once"]
        clustered = result.runs["clustered"]
        # Clustered either needs more epochs or never reaches the target.
        if clustered.epochs_to_target is not None:
            assert clustered.epochs_to_target >= shuffle_once.epochs_to_target
        assert shuffle_once.epochs_to_target is not None
        assert "Figure 8" in result.render()

    def test_shuffle_always_pays_shuffle_cost_every_epoch(self):
        result = run_data_ordering_experiment(TINY, max_epochs=6)
        assert result.runs["shuffle_always"].shuffle_seconds > result.runs["shuffle_once"].shuffle_seconds
        assert result.runs["clustered"].shuffle_seconds == 0.0


class TestOverheadTables:
    def test_pure_uda_overhead_rows(self):
        result = run_overhead_table("pure_uda", TINY, engines=("postgres", "dbms_a"), repeats=1)
        assert len(result.rows) == 10  # 2 engines x (2 + 2 + 1) tasks
        assert all(row.task_seconds > 0 and row.null_seconds > 0 for row in result.rows)
        assert "Table 2" in result.render()

    def test_shared_memory_cheaper_than_pure_uda_on_dbms_a(self):
        pure = run_overhead_table("pure_uda", TINY, engines=("dbms_a",), repeats=1)
        shm = run_overhead_table("shared_memory", TINY, engines=("dbms_a",), repeats=1)
        pure_lr = [r for r in pure.rows if r.task == "LR" and r.dataset == "forest_like"][0]
        shm_lr = [r for r in shm.rows if r.task == "LR" and r.dataset == "forest_like"][0]
        assert shm_lr.task_seconds < pure_lr.task_seconds

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            run_overhead_table("mystery", TINY)


class TestParallelismFigure9:
    def test_model_averaging_converges_worse_than_shared_memory(self):
        result = run_parallel_convergence(TINY, workers=4, max_epochs=3)
        assert set(result.traces) == {"pure_uda", "lock", "aig", "nolock"}
        assert result.final_objective("pure_uda") > result.final_objective("nolock")
        assert "Figure 9A" in result.render()

    def test_lock_aig_nolock_similar(self):
        result = run_parallel_convergence(TINY, workers=4, max_epochs=3)
        lock = result.final_objective("lock")
        assert result.final_objective("aig") == pytest.approx(lock, rel=0.25)
        assert result.final_objective("nolock") == pytest.approx(lock, rel=0.25)

    def test_speedup_ordering(self):
        result = run_speedup_experiment(TINY, max_workers=8)
        assert result.speedup("nolock", 8) > result.speedup("pure_uda", 8)
        assert result.speedup("pure_uda", 8) > result.speedup("lock", 8)
        assert result.speedup("lock", 8) <= 1.1
        assert result.speedup("nolock", 8) > 6.0
        assert "Figure 9B" in result.render()


class TestMRSFigure10:
    def test_mrs_beats_subsampling_and_clustered(self):
        result = run_mrs_convergence(TINY, buffer_fraction=0.1, epochs=8)
        assert result.final_objective("mrs") < result.final_objective("subsampling")
        assert result.final_objective("mrs") < result.final_objective("clustered")
        assert "Figure 10A" in result.render()


class TestCRFFigure7B:
    def test_bismarck_matches_batch_tool_quality(self):
        result = run_crf_comparison(TINY, max_epochs=4)
        assert result.bismarck_objectives[-1] <= result.baseline_objectives[0]
        assert result.bismarck_final_accuracy > 0.5
        assert "Figure 7B" in result.render()


class TestPayloadTransportFigure:
    @pytest.mark.backends
    def test_pages_ship_order_of_magnitude_fewer_bytes(self):
        result = run_payload_transport_experiment(TINY, epochs=1)
        assert result.models_match, "transport changed the arithmetic"
        assert result.bytes_ratio >= 10.0
        assert result.stats["pages"]["page_payloads"] >= 1
        assert result.stats["pages"]["page_fallbacks"] == 0
        payload = result.bench_payload()
        assert payload["pages_bytes_shipped"] < payload["pickle_bytes_shipped"]
        assert "Payload transport" in result.render()
