"""Whole-process crash recovery: SIGKILL a training engine, reopen, resume.

Each test runs a real training process as a child with ``REPRO_CRASH`` set
(the kill switch never lives in this process's environment — a durable
``Database`` arms it at construction), asserts the child died by SIGKILL,
then reopens the database here and proves recovery: the resumed model is
bit-for-bit identical to an uninterrupted run, no worker processes are left
behind, and ``/dev/shm`` returns to its baseline.

The CI ``crash`` job re-enters this file through
:func:`test_ci_crash_matrix` with ``REPRO_CRASH_SPEC`` drawn from a kill
matrix (``kill:epoch=…`` / ``kill:op=checkpoint`` / ``kill:op=wal_append``).
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core.driver import BismarckRunner, IGDConfig
from repro.core.parallel import PureUDAParallelism
from repro.data import load_classification_table, make_sparse_classification
from repro.db import Database, SegmentedDatabase

SRC_ROOT = str(Path(repro.__file__).parents[1])

# The workload both halves of every test rebuild identically: the child to
# train it, the parent to compute the uninterrupted reference and to resume.
EXAMPLES, DIMENSION, NONZEROS, DATA_SEED = 60, 12, 4, 11
MAX_EPOCHS, SEGMENTS = 6, 2


def _dataset():
    return make_sparse_classification(
        EXAMPLES, DIMENSION, nonzeros_per_example=NONZEROS, seed=DATA_SEED
    )


def _task(dataset):
    from repro.tasks.logistic_regression import LogisticRegressionTask

    return LogisticRegressionTask(dataset.dimension, mu=0.01)


def _config(scheme: str) -> IGDConfig:
    parallelism = (
        PureUDAParallelism(backend="process") if scheme == "process" else None
    )
    return IGDConfig(
        step_size=0.1,
        max_epochs=MAX_EPOCHS,
        ordering="shuffle_once",
        seed=0,
        checkpoint_every=1,
        parallelism=parallelism,
    )


TRAIN_CHILD = """
import sys
from pathlib import Path

from repro.core.driver import BismarckRunner, IGDConfig
from repro.core.parallel import PureUDAParallelism
from repro.data import load_classification_table, make_sparse_classification
from repro.db import Database, SegmentedDatabase
from repro.tasks.logistic_regression import LogisticRegressionTask

path, scheme = sys.argv[1], sys.argv[2]
dataset = make_sparse_classification({examples}, {dimension},
                                     nonzeros_per_example={nonzeros}, seed={data_seed})
task = LogisticRegressionTask(dataset.dimension, mu=0.01)
if scheme == "process":
    db = SegmentedDatabase.open(path, num_segments={segments}, seed=0)
    parallelism = PureUDAParallelism(backend="process")
    pool = db.master.process_pool({segments})
    print("WORKERS", *[proc.pid for proc in pool._procs], flush=True)
else:
    db = Database.open(path)
    parallelism = None
load_classification_table(db, "pts", dataset.examples, sparse=True)
config = IGDConfig(step_size=0.1, max_epochs={max_epochs}, ordering="shuffle_once",
                   seed=0, checkpoint_every=1, parallelism=parallelism)
result = BismarckRunner(db, task, config).train("pts")
print("COMPLETED", result.epochs_run, flush=True)
db.close()
"""


def _run_child(
    path, scheme: str, crash_spec: str | None, *, extra_env: dict | None = None
) -> subprocess.CompletedProcess:
    env = {**os.environ, "PYTHONPATH": SRC_ROOT}
    env.pop("REPRO_CRASH", None)
    if crash_spec is not None:
        env["REPRO_CRASH"] = crash_spec
    if extra_env:
        env.update(extra_env)
    code = TRAIN_CHILD.format(
        examples=EXAMPLES,
        dimension=DIMENSION,
        nonzeros=NONZEROS,
        data_seed=DATA_SEED,
        segments=SEGMENTS,
        max_epochs=MAX_EPOCHS,
    )
    return subprocess.run(
        [sys.executable, "-c", code, str(path), scheme],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def _worker_pids(completed: subprocess.CompletedProcess) -> list[int]:
    for line in completed.stdout.splitlines():
        if line.startswith("WORKERS"):
            return [int(part) for part in line.split()[1:]]
    return []


def _assert_pids_gone(pids: list[int], timeout: float = 15.0) -> None:
    """Orphaned workers must self-exit once their command pipe closes."""
    deadline = time.monotonic() + timeout
    remaining = list(pids)
    while remaining and time.monotonic() < deadline:
        still_alive = []
        for pid in remaining:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue
            still_alive.append(pid)
        remaining = still_alive
        if remaining:
            time.sleep(0.2)
    assert not remaining, f"stray worker processes survived the crash: {remaining}"


def _shm_entries() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _assert_no_shm_leak(baseline: set, timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        leaked = _shm_entries() - baseline
        if not leaked:
            return
        time.sleep(0.2)
    assert not (_shm_entries() - baseline), (
        f"shared-memory segments leaked: {_shm_entries() - baseline}"
    )


def _reference_model(scheme: str):
    dataset = _dataset()
    task = _task(dataset)
    if scheme == "process":
        db = SegmentedDatabase(SEGMENTS, "dbms_b", seed=0)
    else:
        db = Database("postgres", seed=0)
    load_classification_table(db, "pts", dataset.examples, sparse=True)
    try:
        result = BismarckRunner(db, task, _config(scheme)).train("pts")
    finally:
        if scheme == "process":
            db.close_process_pools()
    return result.model


def _reopen(path, scheme: str):
    if scheme == "process":
        return SegmentedDatabase.open(path, num_segments=SEGMENTS, seed=0)
    return Database.open(path)


def _resume_and_check(path, scheme: str, *, expect_state: bool = False) -> None:
    """Reopen a crashed database and drive training to the reference model.

    Whatever the crash destroyed, recovery must reach the same bits as an
    uninterrupted run: a surviving :class:`TrainingState` is resumed; a
    crash early enough to predate any checkpoint (or even the table's own
    WAL record) falls back to reloading and training from scratch — which
    is deterministic, so the equality still holds.
    """
    reference = _reference_model(scheme)
    db = _reopen(path, scheme)
    try:
        dataset = _dataset()
        runner = BismarckRunner(db, _task(dataset), _config(scheme))
        state = db.training_state("pts")
        if expect_state:
            assert state is not None, "no training state survived the crash"
        if state is not None:
            resumed = runner.train("pts", resume_from=state)
        else:
            catalog = db.master if scheme == "process" else db
            if not catalog.has_table("pts"):
                load_classification_table(db, "pts", dataset.examples, sparse=True)
            resumed = runner.train("pts")
        np.testing.assert_array_equal(
            resumed.model.as_flat_vector(), reference.as_flat_vector()
        )
    finally:
        if scheme == "process":
            db.close_process_pools()
        db.close()


@pytest.mark.parametrize("scheme", ["serial", "process"])
def test_sigkill_mid_epoch_resumes_bit_for_bit(tmp_path, scheme):
    if scheme == "process":
        pytest.importorskip("multiprocessing")
    baseline = _shm_entries()
    completed = _run_child(tmp_path / "db", scheme, "kill:epoch=2")
    assert completed.returncode == -9, completed.stderr
    assert "COMPLETED" not in completed.stdout
    _assert_pids_gone(_worker_pids(completed))
    _resume_and_check(tmp_path / "db", scheme, expect_state=True)
    _assert_no_shm_leak(baseline)


def test_sigkill_under_page_transport_leaves_no_shm_residue(tmp_path):
    """SIGKILL a process-backed run with chunk pages forced: the resource
    tracker reaps the published pages, recovery reaches the reference bits,
    and ``/dev/shm`` returns to baseline."""
    baseline = _shm_entries()
    completed = _run_child(
        tmp_path / "db", "process", "kill:epoch=2",
        extra_env={"REPRO_PAYLOAD_TRANSPORT": "pages"},
    )
    assert completed.returncode == -9, completed.stderr
    assert "COMPLETED" not in completed.stdout
    _assert_pids_gone(_worker_pids(completed))
    _resume_and_check(tmp_path / "db", "process", expect_state=True)
    _assert_no_shm_leak(baseline)


def test_sigkill_mid_checkpoint_falls_back_to_previous_snapshot(tmp_path):
    completed = _run_child(tmp_path / "db", "serial", "kill:op=checkpoint:at=1")
    assert completed.returncode == -9, completed.stderr
    db = Database.open(tmp_path / "db")
    # The torn generation-1 snapshot never reached its atomic rename, so
    # recovery lands on generation 0 (the epoch-0 checkpoint) + WAL replay.
    assert db.recovery_report.checkpoint_generation == 0
    state = db.training_state("pts")
    assert state is not None and state.next_epoch == 1
    db.close()
    _resume_and_check(tmp_path / "db", "serial", expect_state=True)


def test_uninterrupted_child_completes(tmp_path):
    """Sanity for the harness itself: no crash spec, the child finishes."""
    completed = _run_child(tmp_path / "db", "serial", None)
    assert completed.returncode == 0, completed.stderr
    assert f"COMPLETED {MAX_EPOCHS}" in completed.stdout
    db = Database.open(tmp_path / "db")
    # A completed run leaves its final training state checkpointed too;
    # resuming it is a no-op thanks to the convergence guard.
    assert db.has_table("pts")
    db.close()


WAL_APPEND_CHILD = """
import sys
from repro.db import ColumnType, Database

db = Database.open(sys.argv[1])
table = db.create_table("t", [("x", ColumnType.INTEGER)])
for i in range(10):
    table.insert((i,))
print("SURVIVED", flush=True)
"""


def test_sigkill_mid_wal_append_discards_torn_record(tmp_path):
    env = {**os.environ, "PYTHONPATH": SRC_ROOT, "REPRO_CRASH": "kill:op=wal_append:at=5"}
    completed = subprocess.run(
        [sys.executable, "-c", WAL_APPEND_CHILD, str(tmp_path / "db")],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert completed.returncode == -9, completed.stderr
    assert "SURVIVED" not in completed.stdout

    db = Database.open(tmp_path / "db")
    report = db.recovery_report
    # Append 0 is the CREATE record; appends 1..4 are the first four inserts;
    # append 5 dies half-written and must be discarded, not replayed.
    assert report.torn_bytes_discarded > 0
    assert sorted(row["x"] for row in db.table("t").scan()) == [0, 1, 2, 3]
    # The repaired log accepts new appends and survives another cycle.
    db.table("t").insert((99,))
    db.close()
    reopened = Database.open(tmp_path / "db")
    assert sorted(row["x"] for row in reopened.table("t").scan()) == [0, 1, 2, 3, 99]
    assert reopened.recovery_report.torn_bytes_discarded == 0
    reopened.close()


def test_ci_crash_matrix(tmp_path):
    """CI entry point: one kill scenario per ``REPRO_CRASH_SPEC`` matrix cell.

    The spec is deliberately NOT named ``REPRO_CRASH``: a durable Database
    arms ``REPRO_CRASH`` at construction, so exporting it to the whole pytest
    process would SIGKILL the test runner itself.  The job exports
    ``REPRO_CRASH_SPEC`` and this test forwards it to the child only.
    """
    spec = os.environ.get("REPRO_CRASH_SPEC")
    if not spec:
        pytest.skip("REPRO_CRASH_SPEC not set (CI crash-matrix only)")
    baseline = _shm_entries()
    completed = _run_child(tmp_path / "db", "process", spec)
    assert completed.returncode == -9, completed.stderr
    _assert_pids_gone(_worker_pids(completed))
    _resume_and_check(tmp_path / "db", "process")
    _assert_no_shm_leak(baseline)
