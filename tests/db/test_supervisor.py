"""Tests for the self-healing process backend (supervision + fault injection).

The contract under test (the ISSUE-6 acceptance bar):

* a process-backed whole-loop run with one worker **killed** mid-epoch and
  one worker **hung** past the deadline completes with the bit-for-bit
  identical final model to an unfaulted run for deterministic schemes, and
  within the objective band for racy shared-memory schemes;
* dead/hung workers are detected (deadline-bounded pipe reads), terminated,
  respawned, and replayed their pickled-once payloads by key;
* when the respawn budget is exhausted, passes walk the degradation ladder
  (process → shared_memory → serial for train; process → serial for
  evaluation) emitting structured DegradationEvents instead of raising;
* zero leaked ``/dev/shm`` segments and zero stray
  ``multiprocessing.active_children()`` after every recovery.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.core.driver import IGDConfig, train
from repro.core.parallel import PureUDAParallelism, SharedMemoryParallelism
from repro.core.uda import AccuracyAggregate, IGDAggregate, LossAggregate
from repro.data import load_classification_table, make_sparse_classification
from repro.db import (
    Database,
    ExecutionError,
    ProcessBackend,
    ProcessWorkerPool,
    SegmentedDatabase,
    SerialBackend,
    WorkerDiedError,
    compile_pass,
)
from repro.db.expressions import ColumnRef
from repro.db.fault import (
    FaultInjector,
    FaultPlan,
    faults_from_env,
    parse_fault_spec,
)
from repro.db.supervisor import (
    DegradationEvent,
    RecoveryEvent,
    RecoveryPolicy,
    SupervisedWorkerPool,
)
from repro.tasks.logistic_regression import LogisticRegressionTask

pytestmark = pytest.mark.backends

#: Fast-recovery policy for tests: generous enough for real work on a busy
#: CI box, but hang tests override timeout down to a second.
FAST = RecoveryPolicy(timeout=30.0, max_respawns=3, backoff=0.0)


@pytest.fixture(scope="module")
def workload():
    dataset = make_sparse_classification(120, 60, nonzeros_per_example=6, seed=3)
    return dataset, LogisticRegressionTask(dataset.dimension)


def make_database(dataset, *, faults=(), policy=FAST, chunk_size=16) -> Database:
    database = Database("postgres", seed=0, recovery=policy, faults=faults)
    load_classification_table(database, "pts", dataset.examples, sparse=True)
    if chunk_size is not None:
        database.executor.chunk_size = chunk_size
    return database


def _shm_entries() -> set[str]:
    return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}


# ---------------------------------------------------------------------------
# Fault spec grammar
# ---------------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_single_clause(self):
        (plan,) = parse_fault_spec("kill:worker=1:epoch=2")
        assert plan == FaultPlan("kill", worker=1, epoch=2)

    def test_parse_multi_clause_with_op_and_seconds(self):
        plans = parse_fault_spec(
            "kill:worker=1:epoch=0:op=shmem_epoch; hang:worker=0:epoch=1:seconds=2.5"
        )
        assert plans == (
            FaultPlan("kill", worker=1, epoch=0, op="shmem_epoch"),
            FaultPlan("hang", worker=0, epoch=1, seconds=2.5),
        )

    def test_spec_round_trips(self):
        for text in ("kill:worker=1:epoch=0", "hang:worker=0:epoch=1:seconds=2",
                     "poison:worker=2:epoch=3:op=uda_state"):
            (plan,) = parse_fault_spec(text)
            assert parse_fault_spec(plan.spec()) == (plan,)

    def test_defaults_and_empty(self):
        (plan,) = parse_fault_spec("kill")
        assert (plan.worker, plan.epoch, plan.op) == (0, 0, None)
        assert parse_fault_spec("  ;  ") == ()

    @pytest.mark.parametrize("bad", [
        "explode:worker=1",            # unknown action
        "kill:worker",                 # not key=value
        "kill:color=red",              # unknown key
        "kill:worker=x",               # not an int
        "kill:op=teleport",            # unknown op
        "hang:seconds=0",              # non-positive duration
        "kill:epoch=-1",               # negative epoch
    ])
    def test_malformed_specs_fail_loudly(self, bad):
        with pytest.raises((ExecutionError, ValueError)):
            parse_fault_spec(bad)

    def test_faults_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT", raising=False)
        assert faults_from_env() == ()
        monkeypatch.setenv("REPRO_FAULT", "kill:worker=1:epoch=0")
        assert faults_from_env() == (FaultPlan("kill", worker=1, epoch=0),)

    def test_injector_counts_compute_commands_only(self):
        injector = FaultInjector(
            plans=(FaultPlan("poison", worker=0, epoch=1, op="uda_state"),), worker=0
        )
        injector.before("ping")       # control traffic never counts
        injector.before("load")
        injector.before("uda_state")  # uda_state #0 — not yet
        injector.before("chunk_uda")  # other op — per-op filter ignores it
        from repro.db.fault import FaultInjected

        with pytest.raises(FaultInjected):
            injector.before("uda_state")  # uda_state #1 — fires
        injector.before("uda_state")      # one-shot: gone after firing

    def test_injector_ignores_other_workers(self):
        injector = FaultInjector(plans=(FaultPlan("poison", worker=3),), worker=0)
        injector.before("uda_state")  # would fire were it worker 3


class TestRecoveryPolicy:
    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECOVERY_TIMEOUT", "2.5")
        monkeypatch.setenv("REPRO_RECOVERY_MAX_RESPAWNS", "7")
        monkeypatch.setenv("REPRO_RECOVERY_BACKOFF", "0")
        policy = RecoveryPolicy.from_env()
        assert (policy.timeout, policy.max_respawns, policy.backoff) == (2.5, 7, 0.0)

    def test_validation(self):
        with pytest.raises(ExecutionError):
            RecoveryPolicy(timeout=0)
        with pytest.raises(ExecutionError):
            RecoveryPolicy(max_respawns=-1)
        with pytest.raises(ExecutionError):
            RecoveryPolicy(backoff=-0.1)


# ---------------------------------------------------------------------------
# Satellites: base-pool fixes (bounded close, eager state clear, error type)
# ---------------------------------------------------------------------------
class TestBasePoolFixes:
    def test_close_does_not_block_on_hung_worker(self):
        pool = ProcessWorkerPool(1, faults=(FaultPlan("hang", worker=0, seconds=60),))
        try:
            # Trip the hang: the worker sleeps mid-command and will never
            # acknowledge "stop".  An unbounded drain would block forever.
            pool._conns[0].send(("uda_state", ("nokey",), None, None))
            start = time.perf_counter()
        finally:
            pool.close()
        # drain deadline + join timeout + terminate, with slack for CI noise
        assert time.perf_counter() - start < pool.drain_timeout + 10.0
        assert not pool._procs[0].is_alive()

    def test_worker_death_raises_worker_died_error_and_clears_state(self, workload):
        dataset, task = workload
        pool = ProcessWorkerPool(2, faults=(FaultPlan("kill", worker=1),))
        with make_database(dataset) as database:
            table = database.table("pts")
            from repro.db.process_backend import run_process_aggregate

            with pytest.raises(WorkerDiedError) as info:
                run_process_aggregate(
                    database.executor, table,
                    IGDAggregate(task, 0.1), pool=pool, execution="auto",
                )
        error = info.value
        assert isinstance(error, ExecutionError)  # subclass, old handlers still work
        assert error.workers == (1,)
        assert not error.recoverable  # the base pool does not respawn
        # Self-close cleared the registries eagerly, not on a later close().
        assert pool._closed
        assert not pool._loaded and pool._pins == {} and pool._payload_bytes == {}
        assert multiprocessing.active_children() == []

    def test_base_pool_ignores_fault_env(self, monkeypatch):
        """REPRO_FAULT drives *supervised* pools only; direct pools stay clean."""
        monkeypatch.setenv("REPRO_FAULT", "kill:worker=0:epoch=0")
        with ProcessWorkerPool(1) as pool:
            assert pool._faults == ()
            assert pool.run({0: ("ping",)})[0] > 0


# ---------------------------------------------------------------------------
# Supervised recovery: kill / hang / poison across every pass kind
# ---------------------------------------------------------------------------
def _plans(database, task, model):
    """One compiled plan per pass kind, all mergeable and process-runnable."""
    table = database.table("pts")
    return {
        "gradient": compile_pass(
            "generic", table, lambda: IGDAggregate(task, 0.1, initial_model=model),
            workers=2,
        ),
        "loss": compile_pass(
            "loss", table, lambda: LossAggregate(task, model), workers=2
        ),
        "accuracy": compile_pass(
            "accuracy", table, lambda: AccuracyAggregate(task, model), workers=2
        ),
        "generic": compile_pass(
            "generic", table, lambda: database.aggregates.create("sum"),
            argument=ColumnRef("id"), workers=2,
        ),
    }


class TestSupervisedRecovery:
    @pytest.mark.parametrize("kind", ["gradient", "loss", "accuracy", "generic"])
    def test_killed_worker_recovers_bit_for_bit(self, workload, kind):
        """Every pass kind survives a worker kill with the exact serial value."""
        dataset, task = workload
        model = task.initial_model()
        faults = (FaultPlan("kill", worker=1, epoch=0),)
        with make_database(dataset) as clean_db, \
             make_database(dataset, faults=faults) as faulted_db:
            serial = SerialBackend(clean_db).run(_plans(clean_db, task, model)[kind])
            process = ProcessBackend(faulted_db).run(
                _plans(faulted_db, task, model)[kind]
            )
            events = faulted_db.recovery_events()
            assert [e.kind for e in events] == ["death"]
            assert events[0].respawned and events[0].workers == (1,)
        if kind == "gradient":
            assert np.array_equal(
                serial.as_flat_vector(), process.as_flat_vector()
            )
        else:
            assert process == serial
        assert multiprocessing.active_children() == []

    def test_hung_worker_terminated_and_recovered(self, workload):
        dataset, task = workload
        model = task.initial_model()
        faults = (FaultPlan("hang", worker=0, epoch=0, seconds=60),)
        policy = RecoveryPolicy(timeout=1.0, max_respawns=2, backoff=0.0)
        with make_database(dataset, faults=faults, policy=policy) as database:
            serial = SerialBackend(database).run(_plans(database, task, model)["loss"])
            process = ProcessBackend(database).run(_plans(database, task, model)["loss"])
            events = database.recovery_events()
            assert [e.kind for e in events] == ["hang"]
            assert events[0].respawned and events[0].workers == (0,)
        assert process == serial
        assert multiprocessing.active_children() == []

    def test_poison_is_a_user_code_error_not_a_recovery(self, workload):
        """A healthy-pipe exception must NOT burn respawn budget."""
        dataset, task = workload
        model = task.initial_model()
        faults = (FaultPlan("poison", worker=1, epoch=0),)
        with make_database(dataset, faults=faults) as database:
            plan = _plans(database, task, model)["loss"]
            with pytest.raises(ExecutionError, match="injected poison"):
                ProcessBackend(database).run(plan)
            assert database.recovery_events() == []
            pool = database.process_pool(2)
            assert pool.respawns_used == 0 and not pool._closed
            # The pool stays usable: the poisoned command produced its reply.
            assert ProcessBackend(database).run(plan) == SerialBackend(database).run(plan)

    def test_payload_replay_after_respawn(self, workload):
        """A rebuilt worker re-receives its payloads by key, pickled-once."""
        dataset, task = workload
        model = task.initial_model()
        faults = (FaultPlan("kill", worker=1, epoch=1),)
        with make_database(dataset, faults=faults) as database:
            plan = _plans(database, task, model)["loss"]
            backend = ProcessBackend(database)
            backend.run(plan)          # epoch 0: loads payloads, no fault yet
            pool = database.process_pool(2)
            loaded_before = set(pool._loaded)
            backend.run(plan)          # epoch 1: worker 1 dies, is replayed
            assert set(pool._loaded) == loaded_before
            (event,) = database.recovery_events()
            assert event.payloads_replayed == len(
                {key for (w, key) in loaded_before if w == 1}
            )

    def test_budget_exhaustion_degrades_instead_of_raising(self, workload):
        dataset, task = workload
        model = task.initial_model()
        faults = (FaultPlan("kill", worker=1, epoch=0),)
        policy = RecoveryPolicy(timeout=30.0, max_respawns=0, backoff=0.0)
        with make_database(dataset, faults=faults, policy=policy) as database:
            plan = _plans(database, task, model)["loss"]
            serial = SerialBackend(database).run(plan)
            value = ProcessBackend(database).run(plan)
            assert value == serial  # degraded pass still returns the answer
            kinds = [type(e).__name__ for e in database.recovery_events()]
            assert kinds == ["RecoveryEvent", "DegradationEvent"]
            event = database.recovery_events()[0]
            assert event.kind == "budget_exhausted" and not event.respawned
            degradation = database.recovery_events()[1]
            assert degradation.from_backend == "process"
            assert degradation.to_backend == "serial"
            assert database.process_degraded
            # Sticky: the next plan degrades immediately, no new pool.
            ProcessBackend(database).run(plan)
            assert len(database._process_pools) <= 1
            database.reset_degradation()
            assert not database.process_degraded
        assert multiprocessing.active_children() == []

    def test_executor_process_branch_degrades_in_place(self, workload):
        """Database.run_aggregate(backend='process') survives budget exhaustion."""
        dataset, _task = workload
        faults = (FaultPlan("kill", worker=1, epoch=0),)
        policy = RecoveryPolicy(timeout=30.0, max_respawns=0, backoff=0.0)
        with make_database(dataset, faults=faults, policy=policy) as database:
            plain = database.run_aggregate("pts", "sum", "id")
            value = database.run_aggregate(
                "pts", "sum", "id", execution="auto", backend="process",
                process_workers=2,
            )
            assert value == plain
            assert any(
                isinstance(e, DegradationEvent) for e in database.recovery_events()
            )
        assert multiprocessing.active_children() == []


# ---------------------------------------------------------------------------
# Whole-loop acceptance: kill + hang mid-run
# ---------------------------------------------------------------------------
class TestWholeLoopAcceptance:
    def test_pure_uda_kill_and_hang_bit_for_bit(self, workload):
        """The ISSUE acceptance bar: kill + hang, identical final model."""
        dataset, task = workload
        before = _shm_entries()

        def run(faults=()):
            database = SegmentedDatabase(
                3, "dbms_b", seed=0, faults=faults,
                recovery=RecoveryPolicy(timeout=2.0, max_respawns=4, backoff=0.0),
            )
            load_classification_table(database, "pts", dataset.examples, sparse=True)
            try:
                return train(
                    task, database, "pts",
                    config=IGDConfig(
                        max_epochs=3, ordering="shuffle_once", seed=0,
                        parallelism=PureUDAParallelism(backend="process"),
                    ),
                )
            finally:
                database.close_process_pools()

        clean = run()
        faulted = run(faults=(
            FaultPlan("kill", worker=1, epoch=0, op="uda_state"),
            FaultPlan("hang", worker=0, epoch=1, op="uda_state", seconds=60),
        ))
        assert np.array_equal(
            clean.model.as_flat_vector(), faulted.model.as_flat_vector()
        )
        assert clean.objective_trace() == faulted.objective_trace()
        assert [e.kind for e in faulted.recovery_events] == ["death", "hang"]
        assert faulted.respawn_count == 2 and not faulted.degraded
        assert clean.recovery_events == [] and clean.respawn_count == 0
        assert multiprocessing.active_children() == []
        assert _shm_entries() <= before

    def test_shmem_scheme_kill_rebuilds_pool_and_stays_in_band(self, workload):
        """Racy schemes: snapshot/restore retry, full rebuild (fresh lock)."""
        dataset, task = workload
        before = _shm_entries()

        def run(faults=()):
            with make_database(dataset, faults=faults) as database:
                return train(
                    task, database, "pts",
                    config=IGDConfig(
                        max_epochs=3, ordering="shuffle_once", seed=0,
                        parallelism=SharedMemoryParallelism(
                            scheme="nolock", workers=2, backend="process"
                        ),
                    ),
                ), list(database.shared_memory.names())

        clean, _ = run()
        faulted, names = run(
            faults=(FaultPlan("kill", worker=1, epoch=1, op="shmem_epoch"),)
        )
        (event,) = faulted.recovery_events
        assert event.kind == "death" and event.pool_rebuilt  # fresh lock
        assert names == []  # no orphaned arena segments survived recovery
        # Racy convergence: both runs end in the same objective band.
        assert faulted.final_objective == pytest.approx(
            clean.final_objective, rel=0.25
        )
        assert multiprocessing.active_children() == []
        assert _shm_entries() <= before

    def test_budget_exhausted_train_degrades_down_the_ladder(self, workload):
        """process → shared_memory for train, → serial for loss; run completes."""
        dataset, task = workload
        faults = (FaultPlan("kill", worker=1, epoch=0, op="shmem_epoch"),)
        policy = RecoveryPolicy(timeout=30.0, max_respawns=0, backoff=0.0)
        with make_database(dataset, faults=faults, policy=policy) as database:
            result = train(
                task, database, "pts",
                config=IGDConfig(
                    max_epochs=2, ordering="shuffle_once", seed=0,
                    parallelism=SharedMemoryParallelism(
                        scheme="nolock", workers=2, backend="process"
                    ),
                ),
            )
            assert result.epochs_run == 2 and result.degraded
            ladder = [
                (e.from_backend, e.to_backend)
                for e in result.recovery_events
                if isinstance(e, DegradationEvent)
            ]
            assert ("process", "shared_memory") in ladder  # train fallback
            assert ("process", "serial") in ladder         # loss fallback
            assert np.isfinite(result.final_objective)
        assert multiprocessing.active_children() == []


# ---------------------------------------------------------------------------
# CI chaos-job hook: honoured REPRO_FAULT must be visible in the results
# ---------------------------------------------------------------------------
class TestChaosEnvironment:
    def test_supervised_pool_reads_fault_env(self, monkeypatch, workload):
        dataset, task = workload
        monkeypatch.setenv("REPRO_FAULT", "kill:worker=1:epoch=0")
        model = task.initial_model()
        with make_database(dataset, faults=None) as database:
            plan = _plans(database, task, model)["loss"]
            serial = SerialBackend(database).run(plan)
            assert ProcessBackend(database).run(plan) == serial
            assert [e.kind for e in database.recovery_events()] == ["death"]
        assert multiprocessing.active_children() == []

    @pytest.mark.skipif(
        not os.environ.get("REPRO_FAULT"),
        reason="chaos assertion only runs under the CI chaos job (REPRO_FAULT set)",
    )
    def test_chaos_run_records_recovery_events(self, workload):
        """Under the chaos job, injected faults must surface as recorded events."""
        dataset, task = workload
        with make_database(dataset, faults=None) as database:
            result = train(
                task, database, "pts",
                config=IGDConfig(
                    max_epochs=3, ordering="shuffle_once", seed=0,
                    parallelism=SharedMemoryParallelism(
                        scheme="nolock", workers=2, backend="process"
                    ),
                ),
            )
            assert result.epochs_run == 3
            assert len(result.recovery_events) >= 1
            assert np.isfinite(result.final_objective)
        assert multiprocessing.active_children() == []
