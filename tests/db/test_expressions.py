"""Tests for the expression AST and evaluator."""

from __future__ import annotations

import pytest

from repro.db import ColumnType, ExecutionError, Schema, UnknownFunctionError
from repro.db.expressions import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    Literal,
    Star,
    UnaryOp,
    evaluate_all,
)
from repro.db.types import Row


@pytest.fixture
def row():
    schema = Schema.of(("x", ColumnType.FLOAT), ("y", ColumnType.FLOAT), ("name", ColumnType.TEXT))
    return Row(schema, (2.0, -3.0, "ann"))


class TestEvaluation:
    def test_literal(self, row):
        assert Literal(42).evaluate(row) == 42

    def test_column_ref(self, row):
        assert ColumnRef("x").evaluate(row) == 2.0

    def test_column_ref_without_row_raises(self):
        with pytest.raises(ExecutionError):
            ColumnRef("x").evaluate(None)

    def test_star_returns_dict(self, row):
        assert Star().evaluate(row) == {"x": 2.0, "y": -3.0, "name": "ann"}

    def test_star_without_row_raises(self):
        with pytest.raises(ExecutionError):
            Star().evaluate(None)

    @pytest.mark.parametrize(
        "op,expected",
        [("+", -1.0), ("-", 5.0), ("*", -6.0), ("/", -2.0 / 3.0), ("%", 2.0 % -3.0)],
    )
    def test_arithmetic(self, row, op, expected):
        expression = BinaryOp(op, ColumnRef("x"), ColumnRef("y"))
        assert expression.evaluate(row) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "op,expected",
        [("=", False), ("!=", True), ("<", False), (">", True), ("<=", False), (">=", True)],
    )
    def test_comparisons(self, row, op, expected):
        expression = BinaryOp(op, ColumnRef("x"), ColumnRef("y"))
        assert expression.evaluate(row) is expected

    def test_boolean_connectives(self, row):
        true_expr = BinaryOp(">", ColumnRef("x"), Literal(0))
        false_expr = BinaryOp(">", ColumnRef("y"), Literal(0))
        assert BinaryOp("and", true_expr, false_expr).evaluate(row) is False
        assert BinaryOp("or", true_expr, false_expr).evaluate(row) is True

    def test_unary_operators(self, row):
        assert UnaryOp("-", ColumnRef("x")).evaluate(row) == -2.0
        assert UnaryOp("not", Literal(False)).evaluate(row) is True
        with pytest.raises(ExecutionError):
            UnaryOp("~", Literal(1)).evaluate(row)

    def test_division_by_zero(self, row):
        with pytest.raises(ExecutionError):
            BinaryOp("/", ColumnRef("x"), Literal(0)).evaluate(row)

    def test_type_error_wrapped(self, row):
        with pytest.raises(ExecutionError):
            BinaryOp("*", ColumnRef("name"), ColumnRef("name")).evaluate(row)

    def test_unsupported_operator(self, row):
        with pytest.raises(ExecutionError):
            BinaryOp("**", Literal(2), Literal(3)).evaluate(row)

    def test_function_call(self, row):
        call = FunctionCall("double", (ColumnRef("x"),))
        assert call.evaluate(row, {"double": lambda v: v * 2}) == 4.0

    def test_function_call_unknown(self, row):
        with pytest.raises(UnknownFunctionError):
            FunctionCall("missing", ()).evaluate(row, {})

    def test_evaluate_all(self, row):
        values = evaluate_all([Literal(1), ColumnRef("x")], row)
        assert values == [1, 2.0]


class TestReferencedColumns:
    def test_column_collection(self):
        expression = BinaryOp(
            "and",
            BinaryOp(">", ColumnRef("a"), Literal(0)),
            FunctionCall("f", (ColumnRef("b"), UnaryOp("-", ColumnRef("c")))),
        )
        assert expression.referenced_columns() == {"a", "b", "c"}

    def test_literal_references_nothing(self):
        assert Literal(5).referenced_columns() == set()
