"""Tests for the backend-neutral pass-compilation layer (PassPlan).

The contract under test (the ISSUE-5 acceptance bar):

* process-backed loss/accuracy passes and generic (non-task) aggregates are
  **bit-for-bit equal to their serial counterparts** — the serial backend
  executing the *same plan* (same partitions, same per-item operations, same
  left-to-right merge), and, for integer-state and single-partition plans,
  the plain serial pass itself;
* WHERE and ``row_order`` compose on every path exactly like the chunk plane;
* a whole-loop ``backend="process"`` training run matches the in-process
  pure-UDA model exactly;
* engines release their worker pools and shared-memory segments
  deterministically (``close()`` / context manager), not just via ``atexit``.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.core.driver import IGDConfig, train
from repro.core.parallel import PureUDAParallelism, SharedMemoryParallelism
from repro.core.uda import AccuracyAggregate, IGDAggregate, LossAggregate
from repro.data import load_classification_table, make_sparse_classification
from repro.db import (
    Database,
    ExecutionError,
    FunctionalAggregate,
    ProcessBackend,
    SegmentedDatabase,
    SerialBackend,
    compile_pass,
)
from repro.db.expressions import BinaryOp, ColumnRef, FunctionCall, Literal
from repro.tasks.logistic_regression import LogisticRegressionTask

pytestmark = pytest.mark.backends


@pytest.fixture(scope="module")
def workload():
    dataset = make_sparse_classification(120, 60, nonzeros_per_example=6, seed=3)
    return dataset, LogisticRegressionTask(dataset.dimension)


def make_database(dataset, *, chunk_size: int | None = 16) -> Database:
    database = Database("postgres", seed=0)
    load_classification_table(database, "pts", dataset.examples, sparse=True)
    if chunk_size is not None:
        # Several chunks, so chunk partitioning has real slack to deal out.
        database.executor.chunk_size = chunk_size
    return database


def _shm_entries() -> set[str]:
    return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}


class TestCompilePass:
    def test_rejects_unknown_kind_and_execution(self, workload):
        dataset, task = workload
        with make_database(dataset) as database:
            table = database.table("pts")
            factory = lambda: LossAggregate(task, task.initial_model())  # noqa: E731
            with pytest.raises(ExecutionError, match="pass kind"):
                compile_pass("metrics", table, factory)
            with pytest.raises(ExecutionError, match="execution mode"):
                compile_pass("loss", table, factory, execution="vectorized")
            with pytest.raises(ExecutionError, match="workers"):
                compile_pass("loss", table, factory, workers=0)
            with pytest.raises(ExecutionError, match="TrainEpochContext"):
                compile_pass("train", table, factory)

    def test_merge_contract_probed_from_factory(self, workload):
        dataset, task = workload
        with make_database(dataset) as database:
            table = database.table("pts")
            loss_plan = compile_pass(
                "loss", table, lambda: LossAggregate(task, task.initial_model())
            )
            assert loss_plan.mergeable and loss_plan.chunk_partitionable
            igd_plan = compile_pass("generic", table, lambda: IGDAggregate(task, 0.1))
            # IGD merges but is order-sensitive: never chunk-partitioned.
            assert igd_plan.mergeable and not igd_plan.chunk_partitionable

    def test_stale_plan_refused_after_physical_mutation(self, workload):
        dataset, task = workload
        with make_database(dataset) as database:
            table = database.table("pts")
            plan = compile_pass(
                "loss", table, lambda: LossAggregate(task, task.initial_model())
            )
            table.shuffle(np.random.default_rng(0))
            with pytest.raises(ExecutionError, match="stale PassPlan"):
                SerialBackend(database).run(plan)


def _compile_kind(kind, table, task):
    """A minimal plan of every PASS_KINDS member for revalidation tests."""
    from repro.core.stepsize import make_schedule
    from repro.db.pass_plan import TrainEpochContext

    if kind == "train":
        return compile_pass(
            "train",
            table,
            lambda: IGDAggregate(task, 0.1),
            train=TrainEpochContext(
                task=task,
                model=task.initial_model(),
                schedule=make_schedule(0.1),
                proximal=task.proximal,
            ),
        )
    factories = {
        "loss": lambda: LossAggregate(task, task.initial_model()),
        "accuracy": lambda: AccuracyAggregate(task, task.initial_model()),
        "generic": lambda: FunctionalAggregate(
            initialize=int, transition=lambda s, v: s + 1, merge=lambda a, b: a + b
        ),
    }
    return compile_pass(kind, table, factories[kind])


class TestRevalidate:
    """The append-aware version contract: every pass kind refreshes across
    append deltas and refuses rewrites with the ledger's mutating op named."""

    KINDS = ("train", "loss", "accuracy", "generic")

    @pytest.mark.parametrize("kind", KINDS)
    def test_append_delta_refreshes_plan_in_place(self, kind, workload):
        dataset, task = workload
        with make_database(dataset) as database:
            table = database.table("pts")
            plan = _compile_kind(kind, table, task)
            compiled_version, compiled_rows = plan.version, plan.num_rows
            table.insert((900, {0: 1.0}, 1.0))
            table.insert_many([(901, {1: 1.0}, -1.0), (902, {2: 1.0}, 1.0)])
            assert plan.revalidate() is plan
            assert plan.version == table.version > compiled_version
            assert plan.num_rows == len(table) == compiled_rows + 3
            # Idempotent once refreshed.
            plan.check_version()

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize(
        "mutate, operation",
        [
            (lambda table: table.shuffle(np.random.default_rng(0)), "shuffle"),
            (lambda table: table.truncate(), "truncate"),
        ],
        ids=["shuffle", "truncate"],
    )
    def test_rewrite_delta_refused_naming_ledger_op(
        self, kind, mutate, operation, workload
    ):
        dataset, task = workload
        with make_database(dataset) as database:
            table = database.table("pts")
            plan = _compile_kind(kind, table, task)
            mutate(table)
            with pytest.raises(
                ExecutionError,
                match=rf"stale PassPlan.*rewritten by '{operation}'",
            ):
                plan.revalidate()

    @pytest.mark.parametrize("kind", KINDS)
    def test_append_then_rewrite_still_refused(self, kind, workload):
        """A rewrite anywhere in the version range poisons the whole delta."""
        dataset, task = workload
        with make_database(dataset) as database:
            table = database.table("pts")
            plan = _compile_kind(kind, table, task)
            table.insert((900, {0: 1.0}, 1.0))
            table.shuffle(np.random.default_rng(0))
            table.insert((901, {1: 1.0}, -1.0))
            with pytest.raises(ExecutionError, match="rewritten by 'shuffle'"):
                plan.check_version()


class TestProcessLossAccuracyParity:
    def test_chunk_partitioned_loss_bit_for_bit_vs_serial_plan(self, workload):
        """Process chunk partitions == the serial backend on the same plan."""
        dataset, task = workload
        model = task.initial_model()
        with make_database(dataset) as database:
            table = database.table("pts")
            assert len(list(table.iter_chunks(database.executor.chunk_size))) > 2
            for workers in (1, 2, 3):
                plan = compile_pass(
                    "loss", table, lambda: LossAggregate(task, model), workers=workers
                )
                serial = SerialBackend(database).run(plan)
                process = ProcessBackend(database).run(plan)
                assert process == serial  # bit-for-bit, not approx

    def test_single_partition_loss_equals_plain_serial_pass(self, workload):
        """A one-worker plan degenerates to the plain serial chunked pass."""
        dataset, task = workload
        model = task.initial_model()
        with make_database(dataset) as database:
            plain = database.run_aggregate(
                "pts", LossAggregate(task, model), execution="auto"
            )
            plan = compile_pass(
                "loss", database.table("pts"),
                lambda: LossAggregate(task, model), workers=1,
            )
            assert ProcessBackend(database).run(plan) == plain

    def test_accuracy_process_equals_plain_serial_exactly(self, workload):
        """Integer-state reductions are exact under any partitioning."""
        dataset, task = workload
        model = task.initial_model()
        with make_database(dataset) as database:
            plain = database.run_aggregate(
                "pts", AccuracyAggregate(task, model), execution="auto"
            )
            for workers in (1, 2, 4):
                plan = compile_pass(
                    "accuracy", database.table("pts"),
                    lambda: AccuracyAggregate(task, model), workers=workers,
                )
                assert ProcessBackend(database).run(plan) == plain
                assert SerialBackend(database).run(plan) == plain

    def test_where_and_row_order_compose_bit_for_bit(self, workload):
        """Filtered + permuted loss passes: process == serial reference."""
        dataset, task = workload
        model = task.initial_model()
        predicate = BinaryOp("<", ColumnRef("id"), Literal(90))
        with make_database(dataset) as database:
            table = database.table("pts")
            order = np.random.default_rng(7).permutation(len(table))
            plan = compile_pass(
                "loss", table, lambda: LossAggregate(task, model),
                where=predicate, row_order=order, workers=3,
            )
            serial = SerialBackend(database).run(plan)
            process = ProcessBackend(database).run(plan)
            assert process == serial
            # One worker: the composed visit order is the serial per-tuple
            # order, so the pass equals the plain filtered+ordered pass.
            single = compile_pass(
                "loss", table, lambda: LossAggregate(task, model),
                where=predicate, row_order=order, workers=1,
            )
            reference = database.run_aggregate(
                "pts", LossAggregate(task, model),
                where=predicate, row_order=order, execution="per_tuple",
            )
            assert ProcessBackend(database).run(single) == pytest.approx(reference, rel=1e-12)


class TestGenericProcessAggregates:
    @pytest.mark.parametrize("name", ["sum", "avg", "stddev", "count", "min", "max"])
    def test_builtin_bit_for_bit_vs_serial_plan(self, workload, name):
        dataset, _task = workload
        predicate = BinaryOp("<", ColumnRef("id"), Literal(100))
        with make_database(dataset, chunk_size=None) as database:
            table = database.table("pts")
            order = np.random.default_rng(5).permutation(len(table))
            for workers in (1, 3):
                plan = compile_pass(
                    "generic", table, lambda: database.aggregates.create(name),
                    argument=ColumnRef("id"), where=predicate, row_order=order,
                    workers=workers,
                )
                serial = SerialBackend(database).run(plan)
                process = ProcessBackend(database).run(plan)
                assert process == serial  # bit-for-bit, incl. float sums

    @pytest.mark.parametrize("name", ["count", "min", "max"])
    def test_order_free_builtins_equal_plain_serial(self, workload, name):
        """COUNT/MIN/MAX are exact under any partitioning, vs plain serial."""
        dataset, _task = workload
        with make_database(dataset, chunk_size=None) as database:
            plain = database.run_aggregate("pts", name, "id")
            value = database.run_aggregate(
                "pts", name, "id", execution="auto", backend="process",
                process_workers=3,
            )
            assert value == plain

    def test_udf_argument_ships_referenced_functions(self, workload):
        dataset, _task = workload
        with make_database(dataset, chunk_size=None) as database:
            database.register_function("halved", _halve)
            argument = FunctionCall("halved", (ColumnRef("id"),))
            plan = compile_pass(
                "generic", database.table("pts"),
                lambda: database.aggregates.create("sum"),
                argument=argument, workers=2,
            )
            serial = SerialBackend(database).run(plan)
            process = ProcessBackend(database).run(plan)
            assert process == serial

    def test_unpicklable_aggregate_fails_cleanly(self, workload):
        """A lambda-built aggregate errors clearly and leaves the pool usable."""
        dataset, _task = workload
        with make_database(dataset, chunk_size=None) as database:
            counter = FunctionalAggregate(
                initialize=int,
                transition=lambda s, v: s + 1,
                merge=lambda a, b: a + b,
            )
            with pytest.raises(ExecutionError, match="picklable"):
                database.run_aggregate(
                    "pts", counter, "id", execution="auto", backend="process",
                    process_workers=2,
                )
            # The failed scatter never desynced the pipes: the same pool
            # still serves a well-formed pass.
            assert database.run_aggregate(
                "pts", "count", "id", execution="auto", backend="process",
                process_workers=2,
            ) == len(dataset.examples)

    def test_explicit_chunked_request_errors_instead_of_degrading(self, workload):
        """execution='chunked' keeps its contract on every backend: a pass
        that cannot take the vectorized path raises, it never silently runs
        per-item transitions."""
        dataset, _task = workload
        with make_database(dataset, chunk_size=None) as database:
            table = database.table("pts")
            # Generic aggregates can never chunk: serial raises today...
            with pytest.raises(ExecutionError, match="cannot run chunked"):
                database.run_aggregate("pts", "sum", "id", execution="chunked")
            # ...and the partitioned serial and process paths match it.
            plan = compile_pass(
                "generic", table, lambda: database.aggregates.create("sum"),
                argument=ColumnRef("id"), workers=2, execution="chunked",
            )
            with pytest.raises(ExecutionError, match="cannot run chunked"):
                SerialBackend(database).run(plan)
            with pytest.raises(ExecutionError, match="cannot run chunked"):
                ProcessBackend(database).run(plan)

    def test_non_mergeable_generic_refused(self, workload):
        dataset, _task = workload
        with make_database(dataset, chunk_size=None) as database:
            lonely = FunctionalAggregate(initialize=int, transition=lambda s, v: s + 1)
            with pytest.raises(ExecutionError, match="merge"):
                database.run_aggregate(
                    "pts", lonely, execution="auto", backend="process",
                    process_workers=2,
                )


def _halve(value):
    return value / 2.0


class TestWholeLoopParallelism:
    def test_process_run_matches_in_process_pure_uda_exactly(self, workload):
        """Whole-loop backend='process' == in-process pure-UDA, model-exact."""
        dataset, task = workload
        results = {}
        for backend in ("in_process", "process"):
            with SegmentedDatabase(3, "dbms_b", seed=0) as database:
                load_classification_table(database, "pts", dataset.examples, sparse=True)
                results[backend] = train(
                    task, database, "pts",
                    config=IGDConfig(
                        max_epochs=3, ordering="shuffle_always",
                        parallelism=PureUDAParallelism(backend=backend), seed=0,
                    ),
                )
        a, b = results["in_process"], results["process"]
        assert np.array_equal(a.model.as_flat_vector(), b.model.as_flat_vector())
        # The process run's loss pass runs partitioned on the pool; partial
        # sums reassociate, so traces agree to float-noise, models exactly.
        np.testing.assert_allclose(
            a.objective_trace(), b.objective_trace(), atol=1e-9, rtol=0
        )

    def test_parallel_evaluation_toggle_preserves_models(self, workload):
        """parallel_evaluation changes who computes the loss, never the model."""
        dataset, task = workload
        vectors = {}
        traces = {}
        for flag in (False, True):
            with SegmentedDatabase(2, "dbms_b", seed=0) as database:
                load_classification_table(database, "pts", dataset.examples, sparse=True)
                run = train(
                    task, database, "pts",
                    config=IGDConfig(
                        max_epochs=2, ordering="shuffle_once",
                        parallelism=PureUDAParallelism(backend="process"),
                        parallel_evaluation=flag, seed=0,
                    ),
                )
                vectors[flag] = run.model.as_flat_vector()
                traces[flag] = run.objective_trace()
        assert np.array_equal(vectors[False], vectors[True])
        np.testing.assert_allclose(traces[False], traces[True], atol=1e-9, rtol=0)

    def test_shared_memory_whole_loop_trains(self, workload):
        """Process shmem run with pool-backed loss converges into the band."""
        dataset, task = workload
        with make_database(dataset) as database:
            run = train(
                task, database, "pts",
                config=IGDConfig(
                    max_epochs=3, ordering="shuffle_once",
                    parallelism=SharedMemoryParallelism(
                        scheme="nolock", workers=2, backend="process"
                    ),
                    parallel_evaluation=True, seed=0,
                ),
            )
        trace = run.objective_trace()
        assert all(np.isfinite(trace))
        assert trace[-1] < trace[0]

    def test_harness_evaluate_model_parity(self, workload):
        from repro.experiments import evaluate_model

        dataset, task = workload
        model = task.initial_model()
        with make_database(dataset) as database:
            serial = evaluate_model(database, "pts", task, model, workers=2)
            process = evaluate_model(
                database, "pts", task, model, workers=2, backend="process"
            )
            assert process == serial
            with_penalty = evaluate_model(
                database, "pts", task, model, include_penalty=True
            )
            assert with_penalty >= serial or task.proximal.penalty(model) <= 0
            accuracy = evaluate_model(
                database, "pts", task, model, kind="accuracy", workers=2,
                backend="process",
            )
            assert 0.0 <= accuracy <= 1.0


class TestLifecycle:
    def test_context_manager_reaps_pools_and_arena(self, workload):
        dataset, task = workload
        before = _shm_entries()
        with make_database(dataset) as database:
            train(
                task, database, "pts",
                config=IGDConfig(
                    max_epochs=2,
                    parallelism=SharedMemoryParallelism(
                        scheme="nolock", workers=2, backend="process"
                    ),
                    seed=0,
                ),
            )
            assert len(multiprocessing.active_children()) >= 2
        assert database._process_pools == {}
        assert database.shared_memory.names() == []
        assert _shm_entries() <= before
        # No stray worker processes survive the close.
        assert multiprocessing.active_children() == []

    def test_close_is_idempotent(self, workload):
        dataset, _task = workload
        database = make_database(dataset)
        database.process_pool(2)
        database.close()
        database.close()
        assert multiprocessing.active_children() == []

    def test_whole_experiment_run_leaves_no_workers_or_segments(self):
        """The experiment harness itself cleans up deterministically."""
        from repro.experiments import run_whole_loop_experiment

        before = _shm_entries()
        result = run_whole_loop_experiment("small", workers=2, epochs=2)
        assert set(result.total_seconds) == {"serial", "gradient_only", "whole_loop"}
        assert result.speedup_vs_gradient_only() > 0
        assert multiprocessing.active_children() == []
        assert _shm_entries() <= before
