"""Tests for the mini-SQL parser."""

from __future__ import annotations

import pytest

from repro.db import ParseError
from repro.db.expressions import BinaryOp, ColumnRef, FunctionCall, Literal, Star
from repro.db.parser import (
    CreateTableStatement,
    DropTableStatement,
    InsertStatement,
    SelectStatement,
    parse,
    tokenize,
)
from repro.db.types import ColumnType

AGGREGATES = ["count", "sum", "avg", "min", "max"]


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a, 1.5 FROM t")
        kinds = [token.kind for token in tokens]
        assert kinds == ["keyword", "ident", "op", "number", "keyword", "ident", "eof"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].kind == "string"
        assert tokens[1].value == "'it''s'"

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @a")

    def test_scientific_notation(self):
        tokens = tokenize("SELECT 1.5e-3")
        assert tokens[1].kind == "number"


class TestCreateDropInsert:
    def test_create_table(self):
        statement = parse("CREATE TABLE points (id INT, vec FLOAT8[], label FLOAT)")
        assert isinstance(statement, CreateTableStatement)
        assert statement.name == "points"
        assert statement.columns == (
            ("id", ColumnType.INTEGER),
            ("vec", ColumnType.FLOAT_ARRAY),
            ("label", ColumnType.FLOAT),
        )

    def test_drop_table(self):
        statement = parse("DROP TABLE points")
        assert isinstance(statement, DropTableStatement)
        assert statement.name == "points"
        assert statement.if_exists is False

    def test_drop_table_if_exists(self):
        statement = parse("DROP TABLE IF EXISTS points")
        assert statement.if_exists is True

    def test_insert_multiple_rows(self):
        statement = parse("INSERT INTO t VALUES (1, 'x', -2.5), (2, 'y', 3)")
        assert isinstance(statement, InsertStatement)
        assert statement.table == "t"
        assert statement.rows == ((1, "x", -2.5), (2, "y", 3))

    def test_insert_array_literal(self):
        statement = parse("INSERT INTO t VALUES (1, ARRAY[1.0, 2.0, 3.0])")
        assert statement.rows[0][1] == [1.0, 2.0, 3.0]

    def test_insert_null_and_booleans(self):
        statement = parse("INSERT INTO t VALUES (NULL, TRUE, FALSE)")
        assert statement.rows[0] == (None, True, False)


class TestSelect:
    def test_select_star(self):
        statement = parse("SELECT * FROM papers")
        assert isinstance(statement, SelectStatement)
        assert statement.table == "papers"
        assert isinstance(statement.items[0].expression, Star)

    def test_select_with_where(self):
        statement = parse("SELECT id FROM papers WHERE label > 0 AND id <= 10")
        assert isinstance(statement.where, BinaryOp)
        assert statement.where.op == "and"

    def test_select_order_by_random(self):
        statement = parse("SELECT * FROM papers ORDER BY RANDOM()")
        assert statement.order_by is not None
        assert statement.order_by.random is True

    def test_select_order_by_column_desc_limit(self):
        statement = parse("SELECT * FROM papers ORDER BY id DESC LIMIT 5")
        assert statement.order_by.descending is True
        assert isinstance(statement.order_by.expression, ColumnRef)
        assert statement.limit == 5

    def test_aggregate_detection(self):
        statement = parse("SELECT count(*), avg(label) FROM papers", known_aggregates=AGGREGATES)
        assert statement.has_aggregates
        assert statement.items[0].aggregate_name == "count"
        assert isinstance(statement.items[0].aggregate_argument, Star)
        assert statement.items[1].aggregate_name == "avg"

    def test_function_call_without_from(self):
        statement = parse("SELECT SVMTrain('m', 'papers', 'vec', 'label')")
        assert statement.table is None
        call = statement.items[0].expression
        assert isinstance(call, FunctionCall)
        assert call.name == "SVMTrain"
        assert [arg.value for arg in call.args] == ["m", "papers", "vec", "label"]

    def test_alias(self):
        statement = parse("SELECT id AS paper_id FROM papers")
        assert statement.items[0].alias == "paper_id"

    def test_bare_alias(self):
        statement = parse("SELECT id paper_id FROM papers")
        assert statement.items[0].alias == "paper_id"

    def test_arithmetic_precedence(self):
        statement = parse("SELECT 1 + 2 * 3")
        expression = statement.items[0].expression
        assert isinstance(expression, BinaryOp)
        assert expression.op == "+"
        assert isinstance(expression.right, BinaryOp)
        assert expression.right.op == "*"

    def test_unary_minus(self):
        statement = parse("SELECT -5")
        assert statement.items[0].expression.evaluate(None) == -5

    def test_parenthesised_expression(self):
        statement = parse("SELECT (1 + 2) * 3")
        assert statement.items[0].expression.evaluate(None) == 9

    def test_semicolon_allowed(self):
        statement = parse("SELECT 1;")
        assert isinstance(statement, SelectStatement)


class TestParseErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT",
            "SELECT * FROM",
            "CREATE TABLE t",
            "INSERT INTO t",
            "DELETE FROM t",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t ORDER BY",
            "SELECT 1 2 3 FROM t,",
        ],
    )
    def test_malformed_statements_raise(self, sql):
        with pytest.raises(ParseError):
            parse(sql)

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 garbage garbage garbage()")
