"""Tests for column types, schemas and rows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import ColumnType, Schema, SchemaError, TypeMismatchError, UnknownColumnError
from repro.db.types import Column, Row, coerce_value


class TestColumnType:
    def test_from_string_integer_aliases(self):
        for alias in ("int", "INTEGER", "BigInt", "serial"):
            assert ColumnType.from_string(alias) is ColumnType.INTEGER

    def test_from_string_float_aliases(self):
        for alias in ("float", "FLOAT8", "double precision", "real", "numeric"):
            assert ColumnType.from_string(alias) is ColumnType.FLOAT

    def test_from_string_array_aliases(self):
        for alias in ("float8[]", "FLOAT[]", "real[]", "double[]"):
            assert ColumnType.from_string(alias) is ColumnType.FLOAT_ARRAY

    def test_from_string_sparse(self):
        assert ColumnType.from_string("sparse_vector") is ColumnType.SPARSE_VECTOR
        assert ColumnType.from_string("svec") is ColumnType.SPARSE_VECTOR

    def test_from_string_unknown_raises(self):
        with pytest.raises(SchemaError):
            ColumnType.from_string("geometry")


class TestCoercion:
    def test_integer_from_float_whole(self):
        assert coerce_value(3.0, ColumnType.INTEGER) == 3

    def test_integer_from_string(self):
        assert coerce_value("42", ColumnType.INTEGER) == 42

    def test_integer_from_fractional_float_raises(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(3.5, ColumnType.INTEGER)

    def test_float_coercion(self):
        assert coerce_value(2, ColumnType.FLOAT) == pytest.approx(2.0)
        assert coerce_value("2.5", ColumnType.FLOAT) == pytest.approx(2.5)

    def test_boolean_coercion(self):
        assert coerce_value("true", ColumnType.BOOLEAN) is True
        assert coerce_value(0, ColumnType.BOOLEAN) is False
        with pytest.raises(TypeMismatchError):
            coerce_value(7, ColumnType.BOOLEAN)

    def test_float_array_from_list(self):
        array = coerce_value([1, 2, 3], ColumnType.FLOAT_ARRAY)
        assert isinstance(array, np.ndarray)
        assert array.dtype == np.float64
        np.testing.assert_allclose(array, [1.0, 2.0, 3.0])

    def test_sparse_vector_from_mapping(self):
        value = coerce_value({3: 1.5, "7": 2}, ColumnType.SPARSE_VECTOR)
        assert value == {3: 1.5, 7: 2.0}

    def test_sparse_vector_from_pairs(self):
        value = coerce_value([(1, 0.5), (4, 2.0)], ColumnType.SPARSE_VECTOR)
        assert value == {1: 0.5, 4: 2.0}

    def test_null_nullable(self):
        assert coerce_value(None, ColumnType.FLOAT) is None

    def test_null_not_nullable_raises(self):
        with pytest.raises(SchemaError):
            coerce_value(None, ColumnType.FLOAT, nullable=False)

    def test_text_coerces_anything(self):
        assert coerce_value(12, ColumnType.TEXT) == "12"

    def test_any_passthrough(self):
        sentinel = object()
        assert coerce_value(sentinel, ColumnType.ANY) is sentinel


class TestSchema:
    def test_of_builds_columns(self, simple_schema):
        assert simple_schema.column_names == ("id", "value", "name")
        assert simple_schema.column("value").type is ColumnType.FLOAT

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", ColumnType.INTEGER), ("a", ColumnType.FLOAT))

    def test_index_of(self, simple_schema):
        assert simple_schema.index_of("name") == 2
        with pytest.raises(UnknownColumnError):
            simple_schema.index_of("missing")

    def test_contains(self, simple_schema):
        assert "id" in simple_schema
        assert "missing" not in simple_schema

    def test_coerce_row_from_sequence(self, simple_schema):
        row = simple_schema.coerce_row((1, "2.5", 10))
        assert row == (1, 2.5, "10")

    def test_coerce_row_from_mapping(self, simple_schema):
        row = simple_schema.coerce_row({"id": 5, "value": 1.5, "name": "x"})
        assert row == (5, 1.5, "x")

    def test_coerce_row_wrong_arity(self, simple_schema):
        with pytest.raises(SchemaError):
            simple_schema.coerce_row((1, 2.0))

    def test_schema_of_accepts_string_types(self):
        schema = Schema.of(("vec", "float8[]"), ("label", "float"))
        assert schema.column("vec").type is ColumnType.FLOAT_ARRAY


class TestRow:
    def test_access_by_name_and_index(self, simple_schema):
        row = Row(simple_schema, (1, 2.0, "x"))
        assert row["id"] == 1
        assert row[1] == 2.0
        assert row.get("name") == "x"
        assert row.get("missing", "default") == "default"

    def test_as_dict_and_iteration(self, simple_schema):
        row = Row(simple_schema, (1, 2.0, "x"))
        assert row.as_dict() == {"id": 1, "value": 2.0, "name": "x"}
        assert list(row) == [1, 2.0, "x"]
        assert len(row) == 3

    def test_equality_with_tuple_and_row(self, simple_schema):
        row = Row(simple_schema, (1, 2.0, "x"))
        assert row == (1, 2.0, "x")
        assert row == Row(simple_schema, (1, 2.0, "x"))
        assert row != (2, 2.0, "x")
