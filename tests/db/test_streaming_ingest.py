"""Incremental chunk plane end-to-end: ingest, delta decode, continuation.

The ISSUE-7 acceptance bars:

* **bit-for-bit parity** — an incrementally-extended example cache produces
  models identical to a cold decode at the same final version, on every
  backend whose execution is deterministic (serial, cooperative shared
  memory, segmented in-process, segmented process, single-worker process
  shared memory);
* **delta-only decode** — the decode-row counter charges appends for the
  appended rows only, across K batches and N single-row point inserts;
* **chaos during delta shipping** — a worker killed mid-``extend`` respawns,
  replays base + delta chain, and the retried pass still matches the clean
  run exactly, with zero leaked ``/dev/shm`` segments.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.core.driver import BismarckRunner, IGDConfig
from repro.core.parallel import PureUDAParallelism, SharedMemoryParallelism
from repro.data import load_classification_table, make_dense_classification
from repro.db import Database, FaultPlan, SegmentedDatabase
from repro.db.supervisor import RecoveryPolicy
from repro.experiments import run_streaming_ingest_experiment
from repro.frontend import install_frontend
from repro.frontend.models import load_model, trained_source
from repro.tasks.logistic_regression import LogisticRegressionTask

DIMENSION = 6


@pytest.fixture(scope="module")
def corpus():
    base = make_dense_classification(96, DIMENSION, seed=5)
    stream = make_dense_classification(36, DIMENSION, seed=6)
    return base, stream


def _rows(start, examples):
    return [(start + i, ex.features, ex.label) for i, ex in enumerate(examples)]


def _delta_batches(stream, start=96, batches=2):
    per = len(stream.examples) // batches
    return [
        _rows(start + i * per, stream.examples[i * per:(i + 1) * per])
        for i in range(batches)
    ]


def _engine(db):
    return db.master if isinstance(db, SegmentedDatabase) else db


def _shm_entries() -> set[str]:
    return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}


# ---------------------------------------------------------------------------
# Bit-for-bit parity: extended cache vs cold decode, every deterministic path
# ---------------------------------------------------------------------------
BACKENDS = {
    "serial": (lambda: Database("postgres", seed=0), None),
    "shared_memory": (
        lambda: Database("postgres", seed=0),
        SharedMemoryParallelism(workers=2, scheme="nolock"),
    ),
    "segmented": (
        lambda: SegmentedDatabase(3, "dbms_b", seed=0),
        PureUDAParallelism(),
    ),
    "segmented_process": (
        lambda: SegmentedDatabase(3, "dbms_b", seed=0),
        PureUDAParallelism(backend="process"),
    ),
    "process_shmem": (
        lambda: Database("postgres", seed=0),
        SharedMemoryParallelism(workers=1, scheme="nolock", backend="process"),
    ),
}


class TestExtendedCacheParity:
    @pytest.mark.backends
    @pytest.mark.parametrize("backend", sorted(BACKENDS), ids=sorted(BACKENDS))
    def test_extension_bit_for_bit_with_cold_decode(self, backend, corpus):
        """Warm (train → K appends → partial_fit over extended cache) equals
        cold (same final table, empty cache) on every deterministic backend."""
        base, stream = corpus
        db_factory, spec = BACKENDS[backend]
        config = IGDConfig(max_epochs=2, ordering="shuffle_once", seed=0, parallelism=spec)
        task = LogisticRegressionTask(DIMENSION, mu=0.01)

        def build():
            db = db_factory()
            load_classification_table(db, "pts", base.examples)
            return db, BismarckRunner(db, task, config)

        warm_db, warm_runner = build()
        try:
            trained = warm_runner.train("pts")
            cache = _engine(warm_db).executor.example_cache
            extensions_before = cache.extensions
            for batch in _delta_batches(stream):
                warm_db.insert("pts", batch)
            warm = warm_runner.partial_fit(
                "pts",
                initial_model=trained.model,
                since_version=trained.table_version,
                full_pass_every=2,
            )
            assert cache.extensions > extensions_before  # extension really ran
            assert warm.ordering_name == f"delta[{len(stream.examples)}]"
        finally:
            _engine(warm_db).close()

        cold_db, cold_runner = build()
        try:
            for batch in _delta_batches(stream):
                cold_db.insert("pts", batch)
            cold = cold_runner.partial_fit(
                "pts",
                initial_model=trained.model,
                since_version=trained.table_version,
                full_pass_every=2,
            )
        finally:
            _engine(cold_db).close()

        assert np.array_equal(
            warm.model.as_flat_vector(), cold.model.as_flat_vector()
        )
        assert warm.table_version == cold.table_version
        assert multiprocessing.active_children() == []


# ---------------------------------------------------------------------------
# Delta decode accounting
# ---------------------------------------------------------------------------
class TestDeltaDecode:
    def test_k_append_batches_decode_only_the_delta(self, corpus):
        base, stream = corpus
        db = Database("postgres", seed=0)
        load_classification_table(db, "pts", base.examples)
        task = LogisticRegressionTask(DIMENSION, mu=0.01)
        runner = BismarckRunner(db, task, IGDConfig(max_epochs=2, seed=0))
        cache = db.executor.example_cache

        trained = runner.train("pts")
        assert cache.decoded_rows == len(base.examples)
        model, version = trained.model, trained.table_version
        batches = _delta_batches(stream, batches=3)
        for batch in batches:
            db.insert("pts", batch)
            refreshed = runner.partial_fit(
                "pts", initial_model=model, since_version=version
            )
            model, version = refreshed.model, refreshed.table_version
        # Every row decoded exactly once, appends charged delta-only.
        assert cache.decoded_rows == len(base.examples) + len(stream.examples)
        assert cache.extensions >= len(batches)

    def test_point_inserts_cost_one_row_each_not_a_rescan(self, corpus):
        """Satellite micro-bench: N single-row inserts decode N rows, not
        N full re-decodes of the table."""
        base, _ = corpus
        db = Database("postgres", seed=0)
        load_classification_table(db, "pts", base.examples)
        task = LogisticRegressionTask(DIMENSION, mu=0.01)
        table = db.table("pts")
        cache = db.executor.example_cache
        chunk_size = db.executor.chunk_size

        assert cache.batches_for(table, task, chunk_size) is not None
        baseline = cache.decoded_rows
        inserts = 12
        for i in range(inserts):
            table.insert((1000 + i, [float(i)] * DIMENSION, 1.0))
            entry = table.ledger_entries()[-1]
            assert entry.kind == "append" and entry.op == "insert"
            assert cache.batches_for(table, task, chunk_size) is not None
        decoded = cache.decoded_rows - baseline
        assert decoded == inserts  # one row per point insert...
        # ...whereas full invalidation would have re-read the table each time.
        assert decoded < inserts * len(table)
        assert sum(len(b) for b in cache.batches_for(table, task, chunk_size)) == len(table)

    def test_selection_vectors_extend_across_appends(self, corpus):
        base, stream = corpus
        db = Database("postgres", seed=0)
        load_classification_table(db, "pts", base.examples)
        db.execute("SELECT COUNT(*) FROM pts WHERE label > 0")
        table = db.table("pts")
        positive_before = db.execute(
            "SELECT COUNT(*) FROM pts WHERE label > 0"
        ).scalar()
        batch = _rows(len(table), stream.examples[:10])
        db.insert("pts", batch)
        positive_after = db.execute(
            "SELECT COUNT(*) FROM pts WHERE label > 0"
        ).scalar()
        added_positive = sum(1 for ex in stream.examples[:10] if ex.label > 0)
        assert positive_after == positive_before + added_positive


# ---------------------------------------------------------------------------
# Cache eviction guard (Database(cache_entries=...))
# ---------------------------------------------------------------------------
class TestCacheEvictionGuard:
    def test_cache_entries_knob_reaches_the_example_cache(self, corpus):
        base, _ = corpus
        db = Database("postgres", seed=0, cache_entries=2)
        assert db.executor.example_cache.max_entries == 2
        default_db = Database("postgres", seed=0)
        assert default_db.executor.example_cache.max_entries == 32

    def test_lru_prefers_evicting_stale_tasks_over_recent_ones(self, corpus):
        base, _ = corpus
        db = Database("postgres", seed=0, cache_entries=2)
        load_classification_table(db, "pts", base.examples)
        table = db.table("pts")
        cache = db.executor.example_cache
        chunk = db.executor.chunk_size
        tasks = [LogisticRegressionTask(DIMENSION, mu=0.01) for _ in range(3)]
        cache.batches_for(table, tasks[0], chunk)
        cache.batches_for(table, tasks[1], chunk)
        # Touch task 0 so task 1 is the least-recently-used entry.
        cache.batches_for(table, tasks[0], chunk)
        cache.batches_for(table, tasks[2], chunk)  # evicts task 1
        decoded = cache.decoded_rows
        cache.batches_for(table, tasks[0], chunk)  # still resident: no decode
        assert cache.decoded_rows == decoded
        cache.batches_for(table, tasks[1], chunk)  # evicted: decodes again
        assert cache.decoded_rows == decoded + len(table)


# ---------------------------------------------------------------------------
# Segmented ingest: appends extend segments in place
# ---------------------------------------------------------------------------
class TestSegmentedIngest:
    def test_append_keeps_segment_tables_alive_and_matches_repartition(self, corpus):
        base, stream = corpus
        db = SegmentedDatabase(3, "dbms_b", seed=0)
        load_classification_table(db, "pts", base.examples)
        before = db.segments_of("pts")
        db.insert("pts", _rows(len(base.examples), stream.examples))
        after = db.segments_of("pts")
        assert [id(s) for s in before] == [id(s) for s in after]  # extended, not rebuilt

        reference = db.master.table("pts").partition(3)
        for extended, rebuilt in zip(after, reference):
            assert len(extended) == len(rebuilt)
            assert list(extended.scan()) == list(rebuilt.scan())

    def test_rewrite_still_forces_full_repartition(self, corpus):
        base, _ = corpus
        db = SegmentedDatabase(3, "dbms_b", seed=0)
        load_classification_table(db, "pts", base.examples)
        before = db.segments_of("pts")
        db.shuffle_table("pts", seed=1)
        after = db.segments_of("pts")
        assert [id(s) for s in before] != [id(s) for s in after]
        assert sum(len(s) for s in after) == len(base.examples)


# ---------------------------------------------------------------------------
# Frontend continuation
# ---------------------------------------------------------------------------
class TestFrontendContinuation:
    def test_retrain_under_inserts_is_incremental_by_default(self, corpus):
        base, stream = corpus
        db = Database("postgres", seed=0)
        load_classification_table(db, "labeledpapers", base.examples)
        install_frontend(db)

        first = db.execute(
            "SELECT LRTrain('m', 'labeledpapers', 'vec', 'label')"
        ).scalar()
        assert "trained" in first
        assert trained_source(db, "m") == ("labeledpapers", db.table("labeledpapers").version)

        db.insert("labeledpapers", _rows(len(base.examples), stream.examples))
        decoded_mark = db.executor.example_cache.decoded_rows
        second = db.execute(
            "SELECT LRTrain('m', 'labeledpapers', 'vec', 'label')"
        ).scalar()
        assert "continued" in second
        # Delta-only decode: the retrain charged just the appended rows.
        assert (
            db.executor.example_cache.decoded_rows - decoded_mark
            == len(stream.examples)
        )
        assert trained_source(db, "m") == ("labeledpapers", db.table("labeledpapers").version)
        model = load_model(db, "m")
        assert model["w"].shape == (DIMENSION,)
        assert "__source__" not in model.component_names()

    def test_rewrite_between_trainings_falls_back_to_full_retrain(self, corpus):
        base, _ = corpus
        db = Database("postgres", seed=0)
        load_classification_table(db, "labeledpapers", base.examples)
        install_frontend(db)
        db.execute("SELECT LRTrain('m', 'labeledpapers', 'vec', 'label')")
        db.table("labeledpapers").shuffle(np.random.default_rng(3))
        message = db.execute(
            "SELECT LRTrain('m', 'labeledpapers', 'vec', 'label')"
        ).scalar()
        # partial_fit classifies the delta as a rewrite and retrains fully.
        assert "retrained" in message


# ---------------------------------------------------------------------------
# Chaos: kill a worker in the middle of delta payload shipping
# ---------------------------------------------------------------------------
@pytest.mark.backends
class TestDeltaShippingChaos:
    def _continue_after_insert(self, corpus, faults=()):
        base, stream = corpus
        database = SegmentedDatabase(
            3,
            "dbms_b",
            seed=0,
            faults=faults,
            recovery=RecoveryPolicy(timeout=30.0, max_respawns=3, backoff=0.0),
        )
        load_classification_table(database, "pts", base.examples)
        task = LogisticRegressionTask(DIMENSION, mu=0.01)
        runner = BismarckRunner(
            database,
            task,
            IGDConfig(
                max_epochs=2,
                ordering="shuffle_once",
                seed=0,
                parallelism=PureUDAParallelism(backend="process"),
            ),
        )
        try:
            trained = runner.train("pts")
            database.insert("pts", _rows(len(base.examples), stream.examples))
            refreshed = runner.partial_fit(
                "pts",
                initial_model=trained.model,
                since_version=trained.table_version,
                full_pass_every=2,
            )
            return trained, refreshed
        finally:
            database.close()

    def test_kill_during_extend_replays_base_plus_delta_bit_for_bit(self, corpus):
        before = _shm_entries()
        _, clean = self._continue_after_insert(corpus)
        _, faulted = self._continue_after_insert(
            corpus, faults=(FaultPlan("kill", worker=1, epoch=0, op="extend"),)
        )
        assert np.array_equal(
            clean.model.as_flat_vector(), faulted.model.as_flat_vector()
        )
        assert faulted.respawn_count >= 1
        (event,) = [e for e in faulted.recovery_events if getattr(e, "respawned", False)]
        assert "extend" in event.ops
        # The respawned worker re-received its base payloads and delta chain.
        assert event.payloads_replayed >= 1
        assert clean.recovery_events == []
        assert multiprocessing.active_children() == []
        assert _shm_entries() <= before

    def test_kill_during_base_load_recovers_too(self, corpus):
        """A kill during initial payload shipping is absorbed by train(),
        and the subsequent partial_fit still matches the clean run."""
        before = _shm_entries()
        _, clean = self._continue_after_insert(corpus)
        trained, faulted = self._continue_after_insert(
            corpus, faults=(FaultPlan("kill", worker=2, epoch=0, op="load"),)
        )
        assert np.array_equal(
            clean.model.as_flat_vector(), faulted.model.as_flat_vector()
        )
        assert trained.respawn_count >= 1
        (event,) = [e for e in trained.recovery_events if getattr(e, "respawned", False)]
        assert "load" in event.ops
        assert multiprocessing.active_children() == []
        assert _shm_entries() <= before


# ---------------------------------------------------------------------------
# Streaming-ingest experiment (the BENCH figure)
# ---------------------------------------------------------------------------
class TestStreamingExperiment:
    def test_incremental_beats_full_invalidation(self):
        result = run_streaming_ingest_experiment(
            "small", insert_rounds=3, rows_per_round=20
        )
        assert len(result.rounds) == 3
        assert result.cache_extensions >= 3
        # Delta-only decode: strictly less work than the invalidation world.
        assert result.incremental_decoded_total == 3 * 20
        assert result.baseline_decoded_total > result.incremental_decoded_total
        assert result.decode_ratio < 0.5
        payload = result.bench_payload()
        assert payload["decode_ratio"] == pytest.approx(result.decode_ratio, abs=1e-4)
        assert "Streaming ingest" in result.render()
