"""Zero-copy shared-memory chunk pages + float32 compute mode.

The ISSUE-10 acceptance bars:

* **transport is invisible to the arithmetic** — every deterministic scheme
  (pure-UDA train, loss, accuracy, generic SQL aggregates, ``partial_fit``
  extend chains including supervisor respawn replay) produces bit-for-bit
  identical results whether payloads ship pickled or as ``/dev/shm`` chunk
  pages;
* **pages actually page** — dense payloads publish into named pages and the
  pool's transport stats show the pipe carrying descriptors, not arrays;
* **no residue** — pages are unlinked by ``Database.close()`` and the atexit
  sweep; ``/dev/shm`` returns to baseline after every page-transport run;
* **fallback ladder** — a failed publish (``/dev/shm`` exhaustion) degrades
  that payload to pickled transport, counted, with identical results;
* **float32 compute mode** — opt-in, deterministic against itself, within an
  objective band of float64, and float64 stays the bit-for-bit default.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.core.driver import BismarckRunner, IGDConfig, train
from repro.core.parallel import PureUDAParallelism, SharedMemoryParallelism
from repro.core.uda import AccuracyAggregate, LossAggregate
from repro.data import (
    load_classification_table,
    make_dense_classification,
    make_sparse_classification,
)
from repro.db import (
    Database,
    ExecutionError,
    FaultPlan,
    ProcessBackend,
    ProcessWorkerPool,
    SegmentedDatabase,
    SerialBackend,
    compile_pass,
)
from repro.db import process_backend as pb
from repro.db.errors import EnvSpecError
from repro.db.process_backend import resolve_payload_transport
from repro.db.shared_memory import (
    ChunkPageSet,
    attach_chunk_pages,
)
from repro.db.supervisor import RecoveryPolicy
from repro.tasks.logistic_regression import LogisticRegressionTask

pytestmark = pytest.mark.backends

FAST = RecoveryPolicy(timeout=30.0, max_respawns=3, backoff=0.0)
DIMENSION = 8


@pytest.fixture(scope="module")
def dense_workload():
    dataset = make_dense_classification(96, DIMENSION, seed=9)
    return dataset, LogisticRegressionTask(DIMENSION, mu=0.01)


@pytest.fixture(scope="module")
def sparse_workload():
    dataset = make_sparse_classification(90, 40, nonzeros_per_example=5, seed=13)
    return dataset, LogisticRegressionTask(dataset.dimension)


def _shm_entries() -> set[str]:
    return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}


# ---------------------------------------------------------------------------
# Transport resolution & configuration plumbing
# ---------------------------------------------------------------------------
class TestTransportResolution:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAYLOAD_TRANSPORT", raising=False)
        assert resolve_payload_transport() == "auto"

    @pytest.mark.parametrize("value", ["auto", "pages", "pickle"])
    def test_env_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_PAYLOAD_TRANSPORT", value)
        assert resolve_payload_transport() == value

    def test_malformed_env_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAYLOAD_TRANSPORT", "zerocopy")
        with pytest.raises(EnvSpecError, match="REPRO_PAYLOAD_TRANSPORT"):
            resolve_payload_transport()

    def test_database_validates_eagerly(self):
        with pytest.raises(ExecutionError, match="transport"):
            Database("postgres", payload_transport="mmap")

    def test_database_rejects_malformed_env_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAYLOAD_TRANSPORT", "zerocopy")
        with pytest.raises(EnvSpecError):
            Database("postgres")

    def test_pool_transport_flows_from_database(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAYLOAD_TRANSPORT", raising=False)
        with Database("postgres", seed=0, payload_transport="pickle") as database:
            pool = database.process_pool(1)
            assert pool.transport == "pickle"
            assert pool.transport_stats["transport"] == "pickle"


# ---------------------------------------------------------------------------
# ChunkPageSet publish/attach round trip
# ---------------------------------------------------------------------------
class TestChunkPageSet:
    def test_round_trip_mixed_dtypes(self):
        arrays = [
            np.arange(24, dtype=np.float64).reshape(4, 6),
            np.arange(7, dtype=np.intp),
            np.array([], dtype=np.float32),
            np.arange(5, dtype=np.int32),
        ]
        pages = ChunkPageSet.publish(arrays)
        try:
            assert pages.nbytes == pages.descriptor.total_bytes
            shm, views = attach_chunk_pages(pages.descriptor)
            try:
                assert len(views) == len(arrays)
                for original, view in zip(arrays, views):
                    assert view.dtype == original.dtype
                    assert view.shape == original.shape
                    np.testing.assert_array_equal(view, original)
                    assert not view.flags.writeable
            finally:
                del views
                shm.close()
        finally:
            pages.free()

    def test_free_is_idempotent_and_unlinks(self):
        pages = ChunkPageSet.publish([np.ones(16)])
        name = pages.descriptor.segment
        assert name in os.listdir("/dev/shm")
        pages.free()
        assert name not in os.listdir("/dev/shm")
        pages.free()  # second free is a no-op

    def test_worker_views_survive_parent_unlink(self):
        """Unlink-first semantics: attached mappings outlive the name."""
        pages = ChunkPageSet.publish([np.arange(10, dtype=np.float64)])
        shm, views = attach_chunk_pages(pages.descriptor)
        try:
            pages.free()  # name gone, mapping still valid
            np.testing.assert_array_equal(views[0], np.arange(10, dtype=np.float64))
        finally:
            del views
            shm.close()


# ---------------------------------------------------------------------------
# Bit-for-bit parity: pages vs pickled, every deterministic scheme
# ---------------------------------------------------------------------------
class TestTransportParity:
    def _train(self, dataset, task, transport, *, sparse):
        database = SegmentedDatabase(3, "dbms_b", seed=0, payload_transport=transport)
        load_classification_table(database, "pts", dataset.examples, sparse=sparse)
        try:
            run = train(
                task,
                database,
                "pts",
                config=IGDConfig(
                    max_epochs=2,
                    ordering="shuffle_once",
                    parallelism=PureUDAParallelism(backend="process"),
                    seed=0,
                ),
            )
            stats = dict(database.master.process_pool(3).transport_stats)
        finally:
            database.close()
        return run, stats

    @pytest.mark.parametrize("sparse", [False, True], ids=["dense", "sparse"])
    def test_pure_uda_train_bit_for_bit(self, dense_workload, sparse_workload, sparse):
        dataset, task = sparse_workload if sparse else dense_workload
        pickled, _ = self._train(dataset, task, "pickle", sparse=sparse)
        paged, stats = self._train(dataset, task, "pages", sparse=sparse)
        assert np.array_equal(
            pickled.model.as_flat_vector(), paged.model.as_flat_vector()
        )
        assert pickled.objective_trace() == paged.objective_trace()
        assert stats["page_payloads"] >= 1
        if not sparse:
            # Dense payloads page wholesale; sparse dict-feature examples
            # have no arrays to lift and legitimately stay pickled.
            assert stats["pickle_payloads"] == 0
            # The pipe carried descriptors + skeletons, not the arrays.
            assert stats["pages_bytes_shipped"] < stats["page_bytes"]

    @pytest.mark.parametrize("kind", ["loss", "accuracy"])
    def test_scalar_aggregates_bit_for_bit(self, dense_workload, kind):
        dataset, task = dense_workload
        model = task.initial_model()
        make = LossAggregate if kind == "loss" else AccuracyAggregate
        values, stats = {}, {}
        for transport in ("pickle", "pages"):
            with Database("postgres", seed=0, payload_transport=transport) as database:
                load_classification_table(database, "pts", dataset.examples)
                database.executor.chunk_size = 16
                values[transport] = database.run_aggregate(
                    "pts", make(task, model), execution="auto", backend="process",
                    process_workers=2,
                )
                stats[transport] = dict(database.process_pool(2).transport_stats)
        assert values["pickle"] == values["pages"]  # exact, not approx
        assert stats["pages"]["page_payloads"] >= 1

    def test_generic_sql_aggregate_matches(self, dense_workload):
        dataset, _ = dense_workload
        values = {}
        for transport in ("pickle", "pages"):
            with Database("postgres", seed=0, payload_transport=transport) as database:
                load_classification_table(database, "pts", dataset.examples)
                values[transport] = database.run_aggregate(
                    "pts", "sum", "id", execution="auto", backend="process",
                    process_workers=2,
                )
        assert values["pickle"] == values["pages"]

    def test_process_shmem_single_worker_bit_for_bit(self, dense_workload):
        """workers=1 shmem epochs are deterministic: transports must agree."""
        dataset, task = dense_workload
        vectors = {}
        for transport in ("pickle", "pages"):
            with Database(
                "postgres", seed=0, payload_transport=transport
            ) as database:
                load_classification_table(database, "pts", dataset.examples)
                run = train(
                    task,
                    database,
                    "pts",
                    config=IGDConfig(
                        max_epochs=2,
                        ordering="shuffle_once",
                        seed=0,
                        parallelism=SharedMemoryParallelism(
                            workers=1, scheme="nolock", backend="process"
                        ),
                    ),
                )
                vectors[transport] = run.model.as_flat_vector()
        assert np.array_equal(vectors["pickle"], vectors["pages"])


# ---------------------------------------------------------------------------
# Extend chains: append deltas publish pages; respawn replays them
# ---------------------------------------------------------------------------
class TestExtendChainParity:
    def _partial_fit(self, base, stream, task, transport, *, faults=()):
        database = SegmentedDatabase(
            2, "dbms_b", seed=0, payload_transport=transport,
            recovery=FAST, faults=faults,
        )
        load_classification_table(database, "pts", base.examples)
        config = IGDConfig(
            max_epochs=2, ordering="shuffle_once", seed=0,
            parallelism=PureUDAParallelism(backend="process"),
        )
        runner = BismarckRunner(database, task, config)
        try:
            trained = runner.train("pts")
            start = len(base.examples)
            half = len(stream.examples) // 2
            for lo, hi in ((0, half), (half, len(stream.examples))):
                database.insert(
                    "pts",
                    [
                        (start + i, ex.features, ex.label)
                        for i, ex in enumerate(stream.examples[lo:hi], start=lo)
                    ],
                )
            refreshed = runner.partial_fit(
                "pts",
                initial_model=trained.model,
                since_version=trained.table_version,
                full_pass_every=2,
            )
            events = database.master.recovery_events()
        finally:
            database.close()
        assert multiprocessing.active_children() == []
        return refreshed.model.as_flat_vector(), events

    def test_extend_chain_bit_for_bit(self, dense_workload):
        dataset, task = dense_workload
        stream = make_dense_classification(32, DIMENSION, seed=10)
        pickled, _ = self._partial_fit(dataset, stream, task, "pickle")
        paged, _ = self._partial_fit(dataset, stream, task, "pages")
        assert np.array_equal(pickled, paged)

    def test_respawn_replays_paged_chain_bit_for_bit(self, dense_workload):
        """A worker killed mid-chain is replayed base + deltas as pages."""
        dataset, task = dense_workload
        stream = make_dense_classification(32, DIMENSION, seed=10)
        clean, _ = self._partial_fit(dataset, stream, task, "pages")
        faulted, events = self._partial_fit(
            dataset, stream, task, "pages",
            faults=(FaultPlan("kill", worker=1, epoch=3),),
        )
        assert np.array_equal(clean, faulted)
        replayed = [e for e in events if getattr(e, "payloads_replayed", 0)]
        assert replayed, "the kill never triggered a payload replay"


# ---------------------------------------------------------------------------
# Fallback ladder: publish failure degrades that payload to pickling
# ---------------------------------------------------------------------------
class TestPublishFallback:
    def test_oserror_falls_back_to_pickle(self, dense_workload, monkeypatch):
        dataset, task = dense_workload

        class ExhaustedPages:
            @classmethod
            def publish(cls, arrays):
                raise OSError(28, "No space left on device")

        monkeypatch.setattr(pb, "ChunkPageSet", ExhaustedPages)
        model = task.initial_model()
        with Database("postgres", seed=0, payload_transport="pages") as database:
            load_classification_table(database, "pts", dataset.examples)
            serial = database.run_aggregate(
                "pts", LossAggregate(task, model), execution="auto"
            )
            value = database.run_aggregate(
                "pts", LossAggregate(task, model), execution="auto",
                backend="process", process_workers=2,
            )
            stats = database.process_pool(2).transport_stats
            assert value == serial
            assert stats["page_fallbacks"] >= 1
            assert stats["page_payloads"] == 0
            assert stats["pickle_payloads"] >= 1


# ---------------------------------------------------------------------------
# Residue: pages are freed by close() and leave /dev/shm clean
# ---------------------------------------------------------------------------
class TestZeroResidue:
    def test_close_frees_pages(self, dense_workload):
        dataset, task = dense_workload
        baseline = _shm_entries()
        database = SegmentedDatabase(2, "dbms_b", seed=0, payload_transport="pages")
        load_classification_table(database, "pts", dataset.examples)
        train(
            task,
            database,
            "pts",
            config=IGDConfig(
                max_epochs=2, ordering="shuffle_once", seed=0,
                parallelism=PureUDAParallelism(backend="process"),
            ),
        )
        stats = database.master.process_pool(2).transport_stats
        assert stats["page_payloads"] >= 1
        database.close()
        assert _shm_entries() - baseline == set()
        assert multiprocessing.active_children() == []

    def test_payload_replacement_frees_old_pages(self, dense_workload):
        """A rebuilt payload (version bump) must not leak its old pages."""
        dataset, task = dense_workload
        model = task.initial_model()
        baseline = _shm_entries()
        with Database("postgres", seed=0, payload_transport="pages") as database:
            load_classification_table(database, "pts", dataset.examples)
            database.run_aggregate(
                "pts", LossAggregate(task, model), execution="auto",
                backend="process", process_workers=2,
            )
            during = _shm_entries() - baseline
            # Non-append mutation: bumps the version, forcing a rebuild.
            database.table("pts").cluster_by("id")
            database.run_aggregate(
                "pts", LossAggregate(task, model), execution="auto",
                backend="process", process_workers=2,
            )
            after_rebuild = _shm_entries() - baseline
            # Old pages were unlinked when the record was replaced, so the
            # live page population does not grow run-over-run.
            assert len(after_rebuild) <= len(during)
        assert _shm_entries() - baseline == set()


# ---------------------------------------------------------------------------
# float32 compute mode
# ---------------------------------------------------------------------------
class TestFloat32ComputeMode:
    def test_config_rejects_unknown_dtype(self):
        with pytest.raises(ValueError, match="compute dtype"):
            IGDConfig(compute_dtype="float16")

    def test_compile_pass_rejects_unknown_dtype(self, dense_workload):
        dataset, task = dense_workload
        with Database("postgres", seed=0) as database:
            load_classification_table(database, "pts", dataset.examples)
            with pytest.raises(ExecutionError, match="compute dtype"):
                compile_pass(
                    "loss", database.table("pts"),
                    lambda: LossAggregate(task, task.initial_model()),
                    compute_dtype="bfloat16",
                )

    def _serial_run(self, dataset, task, dtype):
        with Database("postgres", seed=0) as database:
            load_classification_table(database, "pts", dataset.examples)
            run = train(
                task,
                database,
                "pts",
                config=IGDConfig(
                    max_epochs=3, ordering="shuffle_once", seed=0,
                    compute_dtype=dtype,
                ),
            )
        return run

    def test_float32_deterministic_and_in_band(self, dense_workload):
        dataset, task = dense_workload
        f64 = self._serial_run(dataset, task, "float64")
        f32_a = self._serial_run(dataset, task, "float32")
        f32_b = self._serial_run(dataset, task, "float32")
        # float32 vs float32: exact.
        assert np.array_equal(
            f32_a.model.as_flat_vector(), f32_b.model.as_flat_vector()
        )
        assert f32_a.objective_trace() == f32_b.objective_trace()
        # float32 vs float64: same optimum to a loose band, not bit-equal.
        assert f32_a.final_objective == pytest.approx(f64.final_objective, rel=1e-3)
        assert not np.array_equal(
            f32_a.model.as_flat_vector(), f64.model.as_flat_vector()
        )

    def test_float64_default_unchanged(self, dense_workload):
        """Omitting compute_dtype is bit-for-bit the explicit float64 run."""
        dataset, task = dense_workload
        explicit = self._serial_run(dataset, task, "float64")
        with Database("postgres", seed=0) as database:
            load_classification_table(database, "pts", dataset.examples)
            default = train(
                task, database, "pts",
                config=IGDConfig(max_epochs=3, ordering="shuffle_once", seed=0),
            )
        assert np.array_equal(
            explicit.model.as_flat_vector(), default.model.as_flat_vector()
        )

    def test_float32_cache_entries_are_casts(self, dense_workload):
        dataset, task = dense_workload
        with Database("postgres", seed=0) as database:
            load_classification_table(database, "pts", dataset.examples)
            cache = database.executor.example_cache
            table = database.table("pts")
            base = cache.batches_for(table, task, 32)
            cast = cache.batches_for(table, task, 32, dtype="float32")
            assert base[0].X.dtype == np.float64
            assert cast[0].X.dtype == np.float32
            np.testing.assert_allclose(
                cast[0].X, base[0].X.astype(np.float32), rtol=0
            )
            # y is shared, not copied: the cast touches features only.
            assert cast[0].y is base[0].y

    def test_float32_loss_serial_process_bit_for_bit(self, dense_workload):
        """Both backends consume the same cached float32 chunks: exact match."""
        dataset, task = dense_workload
        with Database("postgres", seed=0, payload_transport="pages") as database:
            load_classification_table(database, "pts", dataset.examples)
            database.executor.chunk_size = 16
            # A nonzero model: with w = 0 every margin is 0 and the loss is
            # dtype-blind, which would make this test vacuous.
            model = train(
                task, database, "pts",
                config=IGDConfig(max_epochs=1, ordering="shuffle_once", seed=0),
            ).model
            plan = compile_pass(
                "loss", database.table("pts"),
                lambda: LossAggregate(task, model),
                execution="auto", workers=2, compute_dtype="float32",
            )
            serial = SerialBackend(database).run(plan)
            parallel = ProcessBackend(database).run(plan)
            assert serial == parallel
            # And the float32 pass really computed in float32.
            f64 = SerialBackend(database).run(
                compile_pass(
                    "loss", database.table("pts"),
                    lambda: LossAggregate(task, model),
                    execution="auto",
                )
            )
            assert serial != f64

    def test_pass_scoped_dtype_restores(self, dense_workload):
        """A float32 pass must not leak its dtype into later passes."""
        dataset, task = dense_workload
        model = task.initial_model()
        with Database("postgres", seed=0) as database:
            load_classification_table(database, "pts", dataset.examples)
            executor = database.executor
            assert executor.compute_dtype == "float64"
            SerialBackend(database).run(
                compile_pass(
                    "loss", database.table("pts"),
                    lambda: LossAggregate(task, model),
                    execution="auto", compute_dtype="float32",
                )
            )
            assert executor.compute_dtype == "float64"
