"""Tests for the real multi-process execution backend.

Determinism contract under test (the ISSUE-4 acceptance bar):

* pure-UDA (model-averaging) process runs are **bit-for-bit identical** to
  the in-process backends for a fixed seed and worker count;
* the racy shared-memory schemes are pinned by statistical objective-band
  assertions (their nondeterminism is the mechanism being reproduced);
* no shared-memory segments leak, pools reap their workers, and the arena
  lifecycle (context manager, idempotent free) holds under the process
  backend too.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.driver import IGDConfig, train
from repro.core.parallel import PureUDAParallelism, SharedMemoryParallelism
from repro.core.uda import IGDAggregate, LossAggregate
from repro.data import (
    load_classification_table,
    load_sequences_table,
    make_sequences,
    make_sparse_classification,
)
from repro.db import Database, ExecutionError, ProcessWorkerPool, SegmentedDatabase
from repro.tasks.crf import ConditionalRandomFieldTask
from repro.tasks.logistic_regression import LogisticRegressionTask

pytestmark = pytest.mark.backends


@pytest.fixture(scope="module")
def lr_workload():
    dataset = make_sparse_classification(90, 50, nonzeros_per_example=5, seed=11)
    return dataset, LogisticRegressionTask(dataset.dimension)


@pytest.fixture(scope="module")
def crf_workload():
    corpus = make_sequences(12, num_labels=3, seed=5)
    return corpus, lambda: ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)


def _shm_entries() -> set[str]:
    return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}


class TestPureUDAProcessParity:
    def test_lr_bit_for_bit_vs_in_process(self, lr_workload):
        dataset, task = lr_workload
        results = {}
        for backend in ("in_process", "process"):
            database = SegmentedDatabase(3, "dbms_b", seed=0)
            load_classification_table(database, "pts", dataset.examples, sparse=True)
            results[backend] = train(
                task,
                database,
                "pts",
                config=IGDConfig(
                    max_epochs=3,
                    ordering="shuffle_once",
                    parallelism=PureUDAParallelism(backend=backend),
                    seed=0,
                ),
            )
            database.close_process_pools()
        a, b = results["in_process"], results["process"]
        assert np.array_equal(a.model.as_flat_vector(), b.model.as_flat_vector())
        assert a.objective_trace() == b.objective_trace()
        assert b.parallelism_name == "pure_uda+process"

    def test_crf_bit_for_bit_vs_in_process(self, crf_workload):
        corpus, make_task = crf_workload
        vectors = []
        for backend in ("in_process", "process"):
            database = SegmentedDatabase(2, "dbms_b", seed=0)
            load_sequences_table(database, "conll_like", corpus.examples)
            run = train(
                make_task(),
                database,
                "conll_like",
                config=IGDConfig(
                    max_epochs=2,
                    ordering="shuffle_once",
                    parallelism=PureUDAParallelism(backend=backend),
                    seed=0,
                ),
            )
            database.close_process_pools()
            vectors.append(run.model.as_flat_vector())
        assert np.array_equal(vectors[0], vectors[1])

    def test_process_backend_refuses_per_tuple(self, lr_workload):
        dataset, task = lr_workload
        database = SegmentedDatabase(2, "dbms_b", seed=0)
        load_classification_table(database, "pts", dataset.examples, sparse=True)
        with pytest.raises(ExecutionError):
            database.run_parallel_aggregate(
                "pts",
                lambda: IGDAggregate(task, 0.1),
                execution="per_tuple",
                backend="process",
            )
        database.close_process_pools()


class TestExecutorProcessBackend:
    def test_loss_aggregate_matches_serial(self, lr_workload):
        dataset, task = lr_workload
        database = Database("postgres", seed=0)
        load_classification_table(database, "pts", dataset.examples, sparse=True)
        model = task.initial_model()
        serial = database.run_aggregate("pts", LossAggregate(task, model), execution="auto")
        with ProcessWorkerPool(3) as pool:
            parallel = database.executor.run_aggregate(
                database.table("pts"), LossAggregate(task, model),
                execution="auto", backend="process", process_pool=pool,
            )
        assert parallel == pytest.approx(serial, rel=1e-12)

    def test_igd_matches_segmented_bit_for_bit(self, lr_workload):
        """Executor process partitions == a segmented run with equal segments."""
        dataset, task = lr_workload
        database = Database("postgres", seed=0)
        load_classification_table(database, "pts", dataset.examples, sparse=True)
        segmented = SegmentedDatabase(4, "dbms_b", seed=0)
        load_classification_table(segmented, "pts", dataset.examples, sparse=True)
        aggregate = lambda: IGDAggregate(task, 0.1)  # noqa: E731
        reference = segmented.run_parallel_aggregate("pts", aggregate).value
        with ProcessWorkerPool(4) as pool:
            model = database.executor.run_aggregate(
                database.table("pts"), aggregate(),
                execution="auto", backend="process", process_pool=pool,
            )
        assert np.array_equal(
            model.as_flat_vector(), reference.as_flat_vector()
        )

    def test_row_order_and_where_compose(self, lr_workload):
        from repro.db.expressions import BinaryOp, ColumnRef, Literal

        dataset, task = lr_workload
        database = Database("postgres", seed=0)
        load_classification_table(database, "pts", dataset.examples, sparse=True)
        table = database.table("pts")
        predicate = BinaryOp("<", ColumnRef("id"), Literal(60))
        order = np.random.default_rng(3).permutation(len(table))
        model_serial = database.run_aggregate(
            "pts", IGDAggregate(task, 0.1), where=predicate, row_order=order,
            execution="auto",
        )
        # One worker: the process partition is the full serial visit order,
        # so the filtered + permuted pass must be bit-for-bit the serial one.
        with ProcessWorkerPool(1) as pool:
            model_process = database.executor.run_aggregate(
                table, IGDAggregate(task, 0.1), where=predicate, row_order=order,
                execution="auto", backend="process", process_pool=pool,
            )
        assert np.array_equal(
            model_serial.as_flat_vector(), model_process.as_flat_vector()
        )

    def test_per_tuple_execution_refused(self, lr_workload):
        """Matches the driver/SegmentedDatabase contract and the docs."""
        dataset, task = lr_workload
        database = Database("postgres", seed=0)
        load_classification_table(database, "pts", dataset.examples, sparse=True)
        model = task.initial_model()
        with ProcessWorkerPool(2) as pool:
            with pytest.raises(ExecutionError, match="per-tuple"):
                database.executor.run_aggregate(
                    database.table("pts"), LossAggregate(task, model),
                    execution="per_tuple", backend="process", process_pool=pool,
                )

    def test_non_mergeable_aggregate_raises(self, lr_workload):
        from repro.db import FunctionalAggregate

        dataset, task = lr_workload
        database = Database("postgres", seed=0)
        load_classification_table(database, "pts", dataset.examples, sparse=True)
        counter = FunctionalAggregate(initialize=int, transition=lambda s, v: s + 1)
        with ProcessWorkerPool(2) as pool:
            with pytest.raises(ExecutionError):
                database.executor.run_aggregate(
                    database.table("pts"), counter,
                    execution="auto", backend="process", process_pool=pool,
                )


class TestSharedMemoryProcessSchemes:
    @pytest.mark.parametrize("scheme", ["nolock", "aig", "lock"])
    def test_scheme_converges_within_band(self, scheme, lr_workload):
        """Racy schemes: statistical (objective-band) assertions only."""
        dataset, task = lr_workload
        serial_db = Database("postgres", seed=0)
        load_classification_table(serial_db, "pts", dataset.examples, sparse=True)
        serial = train(
            task, serial_db, "pts",
            config=IGDConfig(max_epochs=4, ordering="shuffle_once", seed=0),
        )
        database = Database("postgres", seed=0)
        load_classification_table(database, "pts", dataset.examples, sparse=True)
        run = train(
            task,
            database,
            "pts",
            config=IGDConfig(
                max_epochs=4,
                ordering="shuffle_once",
                parallelism=SharedMemoryParallelism(scheme=scheme, workers=2, backend="process"),
                seed=0,
            ),
        )
        database.close_process_pools()
        assert run.parallelism_name == f"shared_memory[{scheme}x2]+process"
        # The run must genuinely train (objective drops) and land in a band
        # around the serial optimum despite the racy update schedule.
        assert run.objective_trace()[-1] < run.objective_trace()[0]
        assert run.final_objective < serial.objective_trace()[0]
        assert run.final_objective <= serial.final_objective * 1.5
        # Epoch step accounting: every example contributed one step per epoch.
        assert run.history[-1].gradient_steps == 4 * len(dataset.examples)

    def test_logical_shuffle_ships_payload_once(self, lr_workload):
        """shuffle_always re-orders epochs without re-shipping examples."""
        dataset, task = lr_workload
        database = Database("postgres", seed=0)
        load_classification_table(database, "pts", dataset.examples, sparse=True)
        run = train(
            task,
            database,
            "pts",
            config=IGDConfig(
                max_epochs=3,
                ordering="shuffle_always",
                parallelism=SharedMemoryParallelism(scheme="nolock", workers=2, backend="process"),
                seed=0,
            ),
        )
        pool = database.process_pool(2)
        # Three epochs with three distinct logical permutations ship exactly
        # two payloads per worker: the decoded example list for the gradient
        # epochs and the columnar chunk list for the (now pool-backed) loss
        # passes — each pickled once per (table, version), never re-shipped.
        kinds = sorted({key[0] for (_worker, key) in pool._loaded})
        assert kinds == ["batches", "examples"]
        assert len({key for (_worker, key) in pool._loaded}) == 2
        assert len(pool._loaded) <= 4
        database.close_process_pools()
        assert run.epochs_run == 3

    def test_per_tuple_execution_rejected(self, lr_workload):
        dataset, task = lr_workload
        database = Database("postgres", seed=0)
        load_classification_table(database, "pts", dataset.examples, sparse=True)
        with pytest.raises(ValueError):
            train(
                task, database, "pts",
                config=IGDConfig(
                    max_epochs=1,
                    execution="per_tuple",
                    parallelism=SharedMemoryParallelism(scheme="nolock", workers=2, backend="process"),
                    seed=0,
                ),
            )


class TestLifecycle:
    def test_no_segment_leak_after_runs(self, lr_workload):
        dataset, task = lr_workload
        before = _shm_entries()
        database = Database("postgres", seed=0)
        load_classification_table(database, "pts", dataset.examples, sparse=True)
        train(
            task, database, "pts",
            config=IGDConfig(
                max_epochs=2,
                parallelism=SharedMemoryParallelism(scheme="nolock", workers=2, backend="process"),
                seed=0,
            ),
        )
        database.close_process_pools()
        assert database.shared_memory.names() == []
        assert _shm_entries() <= before

    def test_pool_close_is_idempotent_and_reaps_workers(self):
        pool = ProcessWorkerPool(2)
        pids = list(pool.run({0: ("ping",), 1: ("ping",)}).values())
        assert len(set(pids)) == 2
        pool.close()
        pool.close()
        assert all(not proc.is_alive() for proc in pool._procs)
        with pytest.raises(ExecutionError):
            pool.run({0: ("ping",)})

    def test_worker_error_propagates(self):
        with ProcessWorkerPool(1) as pool:
            with pytest.raises(ExecutionError, match="nonexistent_payload"):
                pool.run({0: ("uda_state", "nonexistent_payload", None, None)})

    def test_pool_stays_usable_after_worker_error(self):
        """A worker-side exception must not desync the persistent pool."""
        with ProcessWorkerPool(2) as pool:
            with pytest.raises(ExecutionError, match="missing_payload"):
                pool.run({0: ("uda_state", "missing_payload", None, None), 1: ("ping",)})
            # Worker 1's reply to the failed round was drained along with the
            # failure, so the next command must pair with fresh replies — not
            # consume stale buffered ones as its own.
            replies = pool.run({0: ("ping",), 1: ("ping",)})
            assert all(isinstance(pid, int) for pid in replies.values())
            assert len(replies) == 2

    def test_worker_failure_does_not_leak_segments(self, lr_workload):
        """A failing epoch command still frees the model segment."""
        dataset, task = lr_workload
        database = Database("postgres", seed=0)
        load_classification_table(database, "pts", dataset.examples, sparse=True)
        from repro.db.process_backend import run_process_shared_memory_epoch

        spec = SharedMemoryParallelism(scheme="nolock", workers=2, backend="process")
        pool = database.process_pool(2)
        pool.close()  # dead pool -> the epoch must fail, not hang
        with pytest.raises(ExecutionError):
            run_process_shared_memory_epoch(
                database.table("pts"), task, task.initial_model(), 0.1,
                spec=spec, pool=pool, arena=database.shared_memory,
                cache=database.executor.example_cache,
            )
        assert database.shared_memory.names() == []
        database.close_process_pools()


class TestMeasuredSpeedupSmoke:
    def test_measured_mode_runs_on_any_host(self):
        """The measured Figure 9B path must function even on one core."""
        from repro.experiments.parallelism import run_speedup_experiment

        result = run_speedup_experiment(
            "small", mode="measured", max_workers=2, epochs_per_point=1
        )
        assert result.mode == "measured"
        assert result.worker_counts == [1, 2]
        for scheme in ("pure_uda", "lock", "aig", "nolock"):
            assert len(result.speedups[scheme]) == 2
            assert all(value > 0 for value in result.speedups[scheme])
        payload = result.bench_payload()
        assert payload["mode"] == "measured"
        assert payload["cores"] >= 1
