"""Tests for engine personalities, the segmented database and shared memory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import (
    DBMS_A,
    DBMS_B,
    POSTGRES,
    Database,
    ExecutionError,
    FunctionalAggregate,
    NullAggregate,
    SegmentedDatabase,
    SharedMemoryArena,
    SharedMemoryError,
    UnknownTableError,
    connect,
)


class TestPersonalities:
    def test_connect_by_name(self):
        assert connect("postgres").personality is POSTGRES
        assert connect("dbms_a").personality is DBMS_A
        assert connect("dbms_b").personality is DBMS_B

    def test_postgresql_alias(self):
        assert Database("postgresql").personality is POSTGRES

    def test_unknown_personality_raises(self):
        with pytest.raises(ExecutionError):
            Database("dbms_z")

    def test_dbms_a_has_expensive_model_passing(self):
        assert DBMS_A.model_passing_cost > POSTGRES.model_passing_cost

    def test_dbms_b_is_parallel_by_default(self):
        assert DBMS_B.default_segments == 8


@pytest.mark.backends
class TestSegmentedDatabase:
    @pytest.fixture
    def seg_db(self):
        database = SegmentedDatabase(4, "dbms_b", seed=0)
        database.create_table("numbers", [("id", "int"), ("value", "float")])
        database.insert("numbers", [(i, float(i)) for i in range(40)])
        return database

    def test_segments_cover_all_rows(self, seg_db):
        segments = seg_db.segments_of("numbers")
        assert len(segments) == 4
        assert sum(len(s) for s in segments) == 40

    def test_parallel_aggregate_matches_serial(self, seg_db):
        outcome = seg_db.run_parallel_aggregate("numbers", lambda: seg_db.master.aggregates.create("sum"), "value")
        assert outcome.value == pytest.approx(sum(range(40)))
        assert outcome.num_segments == 4
        assert outcome.merges == 3

    def test_parallel_aggregate_without_merge_falls_back(self, seg_db):
        factory = lambda: FunctionalAggregate(initialize=int, transition=lambda s, v: s + 1)
        outcome = seg_db.run_parallel_aggregate("numbers", factory, "value")
        assert outcome.num_segments == 1
        assert outcome.value == 40

    def test_null_aggregate_parallel(self, seg_db):
        outcome = seg_db.run_parallel_aggregate("numbers", NullAggregate)
        assert outcome.value == 40

    def test_shuffle_redistributes(self, seg_db):
        before = [row["id"] for row in seg_db.segments_of("numbers")[0].scan()]
        seg_db.shuffle_table("numbers", seed=5)
        after = [row["id"] for row in seg_db.segments_of("numbers")[0].scan()]
        assert sorted(before) != sorted(after) or before != after
        assert sum(len(s) for s in seg_db.segments_of("numbers")) == 40

    def test_unknown_table_raises(self, seg_db):
        with pytest.raises(UnknownTableError):
            seg_db.segments_of("missing")

    def test_invalid_segment_count(self):
        with pytest.raises(ExecutionError):
            SegmentedDatabase(0, "dbms_b")

    def test_sql_passthrough(self, seg_db):
        assert seg_db.execute("SELECT count(*) FROM numbers").scalar() == 40

    def test_default_segment_count_from_personality(self):
        database = SegmentedDatabase(personality="dbms_b")
        assert database.num_segments == 8


def os_backed(segment) -> bool:
    """Whether a segment still holds a live OS shared-memory block."""
    return segment.os_name is not None


@pytest.mark.backends
class TestSharedMemory:
    def test_allocate_and_attach(self):
        arena = SharedMemoryArena()
        segment = arena.allocate("model", 10, fill=1.0)
        np.testing.assert_allclose(segment.array, np.ones(10))
        assert arena.attach("model") is segment
        assert arena.exists("model")
        assert arena.total_bytes() == 80

    def test_allocate_from_copies(self):
        arena = SharedMemoryArena()
        source = np.arange(5, dtype=np.float64)
        segment = arena.allocate_from("w", source)
        source[0] = 99.0
        assert segment.array[0] == 0.0

    def test_duplicate_allocation_raises(self):
        arena = SharedMemoryArena()
        arena.allocate("x", 3)
        with pytest.raises(SharedMemoryError):
            arena.allocate("x", 3)

    def test_attach_missing_raises(self):
        with pytest.raises(SharedMemoryError):
            SharedMemoryArena().attach("nope")

    def test_free_is_idempotent(self):
        arena = SharedMemoryArena()
        arena.allocate("x", 3)
        arena.free("x")
        assert not arena.exists("x")
        # Double-free (and freeing a never-allocated name) must be a no-op:
        # cleanup handlers of interrupted runs may race to free segments.
        arena.free("x")
        arena.free("never_allocated")

    def test_context_manager_frees_segments(self):
        import os

        with SharedMemoryArena() as arena:
            segment = arena.allocate("ctx", 4, fill=2.0)
            os_name = segment.os_name
            assert os_name is not None
            assert os.path.exists(f"/dev/shm/{os_name}")
        assert not arena.exists("ctx")
        assert not os.path.exists(f"/dev/shm/{os_name}")

    def test_segment_release_idempotent(self):
        arena = SharedMemoryArena()
        segment = arena.allocate("rel", 2)
        segment.release()
        segment.release()
        assert not os_backed(segment)

    def test_segments_are_os_shared_memory(self):
        import os

        arena = SharedMemoryArena()
        segment = arena.allocate("osseg", 6, fill=3.0)
        assert os.path.exists(f"/dev/shm/{segment.os_name}")
        arena.free_all()

    def test_lock_counts_acquisitions(self):
        arena = SharedMemoryArena()
        segment = arena.allocate("w", 4)
        with segment.lock() as array:
            array += 1.0
        assert segment.lock_acquisitions == 1
        np.testing.assert_allclose(segment.array, np.ones(4))

    def test_compare_and_exchange(self):
        arena = SharedMemoryArena()
        segment = arena.allocate("w", 2)
        assert segment.compare_and_exchange(0, 0.0, 5.0) is True
        assert segment.compare_and_exchange(0, 0.0, 7.0) is False
        assert segment.array[0] == 5.0

    def test_atomic_add(self):
        arena = SharedMemoryArena()
        segment = arena.allocate("w", 3)
        segment.atomic_add(1, 2.5)
        segment.atomic_add(1, -1.0)
        assert segment.array[1] == pytest.approx(1.5)
        assert segment.atomic_operations >= 2

    def test_unsynchronised_add(self):
        arena = SharedMemoryArena()
        segment = arena.allocate("w", 4)
        segment.unsynchronised_add(np.array([0, 2]), np.array([1.0, 3.0]))
        np.testing.assert_allclose(segment.array, [1.0, 0.0, 3.0, 0.0])
        assert segment.unsynchronised_writes == 1

    def test_snapshot_is_copy(self):
        arena = SharedMemoryArena()
        segment = arena.allocate("w", 2, fill=1.0)
        snapshot = segment.snapshot()
        segment.array[0] = 9.0
        assert snapshot[0] == 1.0

    def test_database_owns_arena(self):
        database = Database()
        database.shared_memory.allocate("model", 5)
        assert database.shared_memory.exists("model")
