"""Tests for heap tables: insertion, scans, clustering, shuffling, partitioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import ColumnType, Schema, SchemaError, Table


@pytest.fixture
def labelled_table():
    schema = Schema.of(("id", ColumnType.INTEGER), ("label", ColumnType.FLOAT))
    table = Table("labelled", schema, page_size=8)
    table.insert_many((i, 1.0 if i % 2 == 0 else -1.0) for i in range(50))
    return table


class TestInsertAndScan:
    def test_len_counts_rows(self, labelled_table):
        assert len(labelled_table) == 50

    def test_scan_preserves_insert_order(self, labelled_table):
        ids = [row["id"] for row in labelled_table.scan()]
        assert ids == list(range(50))

    def test_scan_values_matches_scan(self, labelled_table):
        assert list(labelled_table.scan_values()) == [row.values for row in labelled_table.scan()]

    def test_pages_created_by_page_size(self, labelled_table):
        assert labelled_table.num_pages == (50 + 7) // 8

    def test_row_at_random_access(self, labelled_table):
        assert labelled_table.row_at(17)["id"] == 17
        assert labelled_table.row_at(-1)["id"] == 49

    def test_row_at_out_of_range(self, labelled_table):
        with pytest.raises(IndexError):
            labelled_table.row_at(50)

    def test_insert_coerces_types(self):
        schema = Schema.of(("x", ColumnType.FLOAT))
        table = Table("t", schema)
        table.insert(("3",))
        assert table.row_at(0)["x"] == pytest.approx(3.0)

    def test_insert_mapping(self, labelled_table):
        labelled_table.insert({"id": 100, "label": -1.0})
        assert labelled_table.row_at(-1)["id"] == 100

    def test_column_values(self, labelled_table):
        labels = labelled_table.column_values("label")
        assert len(labels) == 50
        assert set(labels) == {1.0, -1.0}

    def test_truncate(self, labelled_table):
        labelled_table.truncate()
        assert len(labelled_table) == 0
        assert list(labelled_table.scan()) == []

    def test_scan_count_statistic(self, labelled_table):
        before = labelled_table.scan_count
        list(labelled_table.scan())
        assert labelled_table.scan_count == before + 1

    def test_invalid_page_size(self):
        with pytest.raises(SchemaError):
            Table("bad", Schema.of(("x", ColumnType.FLOAT)), page_size=0)


class TestReordering:
    def test_cluster_by_sorts_heap(self, labelled_table):
        labelled_table.cluster_by("label", descending=True)
        labels = labelled_table.column_values("label")
        assert labels == sorted(labels, reverse=True)
        assert labelled_table.clustered_on == "label"

    def test_cluster_by_key_callable(self, labelled_table):
        labelled_table.cluster_by_key(lambda row: -row["id"], label="neg_id")
        assert labelled_table.row_at(0)["id"] == 49
        assert labelled_table.clustered_on == "neg_id"

    def test_shuffle_is_permutation(self, labelled_table):
        before = labelled_table.column_values("id")
        labelled_table.shuffle(seed=3)
        after = labelled_table.column_values("id")
        assert sorted(after) == sorted(before)
        assert after != before  # overwhelmingly likely for 50 rows
        assert labelled_table.clustered_on is None

    def test_shuffle_deterministic_with_seed(self, labelled_table):
        clone = labelled_table.copy()
        labelled_table.shuffle(seed=11)
        clone.shuffle(seed=11)
        assert labelled_table.column_values("id") == clone.column_values("id")

    def test_insert_clears_clustering_flag(self, labelled_table):
        labelled_table.cluster_by("label")
        labelled_table.insert((999, 1.0))
        assert labelled_table.clustered_on is None

    def test_copy_is_independent(self, labelled_table):
        clone = labelled_table.copy("clone")
        clone.insert((999, 1.0))
        assert len(clone) == 51
        assert len(labelled_table) == 50


class TestVersionTracking:
    def test_new_table_starts_at_version_zero(self):
        table = Table("v", Schema.of(("x", ColumnType.FLOAT)))
        assert table.version == 0

    def test_insert_bumps_version(self, labelled_table):
        before = labelled_table.version
        labelled_table.insert((999, 1.0))
        assert labelled_table.version == before + 1

    def test_insert_many_bumps_version_once(self, labelled_table):
        before = labelled_table.version
        labelled_table.insert_many([(100, 1.0), (101, -1.0)])
        assert labelled_table.version == before + 1

    def test_shuffle_bumps_version(self, labelled_table):
        before = labelled_table.version
        labelled_table.shuffle(seed=0)
        assert labelled_table.version > before

    def test_cluster_by_bumps_version(self, labelled_table):
        before = labelled_table.version
        labelled_table.cluster_by("label")
        assert labelled_table.version > before

    def test_cluster_by_key_bumps_version(self, labelled_table):
        before = labelled_table.version
        labelled_table.cluster_by_key(lambda row: -row["id"], label="neg")
        assert labelled_table.version > before

    def test_truncate_bumps_version(self, labelled_table):
        before = labelled_table.version
        labelled_table.truncate()
        assert labelled_table.version > before

    def test_reads_do_not_bump_version(self, labelled_table):
        before = labelled_table.version
        list(labelled_table.scan())
        list(labelled_table.scan_chunks(8))
        labelled_table.row_at(3)
        labelled_table.column_values("label")
        assert labelled_table.version == before

    def test_copy_preserves_version(self, labelled_table):
        labelled_table.shuffle(seed=1)
        assert labelled_table.copy("c").version == labelled_table.version


class TestScanChunks:
    def test_chunks_cover_all_rows_in_order(self, labelled_table):
        chunks = list(labelled_table.scan_chunks(chunk_size=7))
        ids = np.concatenate([chunk.column("id") for chunk in chunks])
        assert ids.tolist() == list(range(50))
        assert [len(chunk) for chunk in chunks] == [7] * 7 + [1]
        assert [chunk.start for chunk in chunks] == [7 * i for i in range(8)]

    def test_chunk_boundaries_independent_of_page_size(self, labelled_table):
        # page_size=8, chunk_size=20 -> chunks straddle pages
        chunks = list(labelled_table.scan_chunks(chunk_size=20))
        assert [len(chunk) for chunk in chunks] == [20, 20, 10]

    def test_scan_chunks_counts_exactly_one_scan(self, labelled_table):
        before = labelled_table.scan_count
        list(labelled_table.scan_chunks(chunk_size=5))
        assert labelled_table.scan_count == before + 1

    def test_typed_columns(self, labelled_table):
        chunk = next(labelled_table.scan_chunks())
        assert chunk.column("id").dtype == np.int64
        assert chunk.column("label").dtype == np.float64

    def test_object_column_for_arrays(self):
        schema = Schema.of(("vec", ColumnType.FLOAT_ARRAY), ("label", ColumnType.FLOAT))
        table = Table("vecs", schema)
        table.insert_many(([float(i), 2.0], float(i)) for i in range(5))
        chunk = next(table.scan_chunks())
        vec_column = chunk.column("vec")
        assert vec_column.dtype == object
        assert np.array_equal(vec_column[3], np.array([3.0, 2.0]))

    def test_chunk_carries_table_identity(self, labelled_table):
        chunk = next(labelled_table.scan_chunks())
        assert chunk.table_name == "labelled"
        assert chunk.table_version == labelled_table.version

    def test_invalid_chunk_size(self, labelled_table):
        with pytest.raises(SchemaError):
            list(labelled_table.scan_chunks(chunk_size=0))

    def test_empty_table_yields_no_chunks(self):
        table = Table("empty", Schema.of(("x", ColumnType.FLOAT)))
        assert list(table.scan_chunks()) == []


class TestInsertManyBatching:
    def test_insert_many_matches_per_row_insert(self):
        schema = Schema.of(("id", ColumnType.INTEGER), ("label", ColumnType.FLOAT))
        one = Table("one", schema, page_size=8)
        many = Table("many", schema, page_size=8)
        rows = [(i, float(i % 3)) for i in range(37)]
        for row in rows:
            one.insert(row)
        assert many.insert_many(rows) == 37
        assert list(one.scan_values()) == list(many.scan_values())
        assert one.num_pages == many.num_pages

    def test_insert_many_fills_partial_tail_page(self):
        schema = Schema.of(("id", ColumnType.INTEGER))
        table = Table("t", schema, page_size=8)
        table.insert((0,))
        table.insert_many([(i,) for i in range(1, 20)])
        assert len(table) == 20
        assert table.num_pages == 3
        assert [row["id"] for row in table.scan()] == list(range(20))

    def test_insert_many_empty_iterable(self):
        table = Table("t", Schema.of(("id", ColumnType.INTEGER)))
        version = table.version
        assert table.insert_many([]) == 0
        assert table.version == version


class TestPartition:
    def test_round_robin_partition_counts(self, labelled_table):
        segments = labelled_table.partition(4)
        assert len(segments) == 4
        assert sum(len(segment) for segment in segments) == 50
        assert max(len(s) for s in segments) - min(len(s) for s in segments) <= 1

    def test_partition_contents_are_disjoint_cover(self, labelled_table):
        segments = labelled_table.partition(3)
        seen = sorted(
            row["id"] for segment in segments for row in segment.scan()
        )
        assert seen == list(range(50))

    def test_partition_invalid_count(self, labelled_table):
        with pytest.raises(SchemaError):
            labelled_table.partition(0)

    def test_partition_preserves_schema(self, labelled_table):
        segments = labelled_table.partition(2)
        assert all(segment.schema is labelled_table.schema for segment in segments)
