"""Tests for the SQL execution path: SELECT, filters, ordering, aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import (
    Database,
    DuplicateTableError,
    ExecutionError,
    FunctionalAggregate,
    UnknownFunctionError,
    UnknownTableError,
)


@pytest.fixture
def db():
    database = Database("postgres", seed=0)
    database.execute("CREATE TABLE points (id INT, x FLOAT, label FLOAT)")
    database.execute(
        "INSERT INTO points VALUES (1, 0.5, 1), (2, -0.5, -1), (3, 2.5, 1), (4, -2.0, -1), (5, 0.0, 1)"
    )
    return database


class TestDDLAndDML:
    def test_create_and_insert_via_sql(self, db):
        assert db.has_table("points")
        assert len(db.table("points")) == 5

    def test_duplicate_create_raises(self, db):
        with pytest.raises(DuplicateTableError):
            db.execute("CREATE TABLE points (id INT)")

    def test_drop_table(self, db):
        db.execute("DROP TABLE points")
        assert not db.has_table("points")

    def test_drop_missing_table_raises(self, db):
        with pytest.raises(UnknownTableError):
            db.execute("DROP TABLE nothere")

    def test_drop_if_exists_silent(self, db):
        db.execute("DROP TABLE IF EXISTS nothere")

    def test_insert_returns_count(self, db):
        result = db.execute("INSERT INTO points VALUES (6, 1.0, 1), (7, 2.0, -1)")
        assert result.rows == [(2,)]

    def test_array_column_roundtrip(self):
        database = Database()
        database.execute("CREATE TABLE vecs (id INT, v FLOAT8[])")
        database.execute("INSERT INTO vecs VALUES (1, ARRAY[1.0, 2.0, 3.0])")
        value = database.table("vecs").row_at(0)["v"]
        np.testing.assert_allclose(value, [1.0, 2.0, 3.0])


class TestSelect:
    def test_select_star(self, db):
        result = db.execute("SELECT * FROM points")
        assert result.columns == ["id", "x", "label"]
        assert len(result) == 5

    def test_select_projection(self, db):
        result = db.execute("SELECT id, x * 2 AS doubled FROM points")
        assert result.columns == ["id", "doubled"]
        assert result.rows[0] == (1, 1.0)

    def test_where_filter(self, db):
        result = db.execute("SELECT id FROM points WHERE label > 0")
        assert sorted(row[0] for row in result.rows) == [1, 3, 5]

    def test_where_and_or(self, db):
        result = db.execute("SELECT id FROM points WHERE label > 0 AND x > 0 OR id = 4")
        assert sorted(row[0] for row in result.rows) == [1, 3, 4]

    def test_order_by_and_limit(self, db):
        result = db.execute("SELECT id FROM points ORDER BY x DESC LIMIT 2")
        assert result.column("id") == [3, 1]

    def test_order_by_random_is_permutation(self, db):
        result = db.execute("SELECT id FROM points ORDER BY RANDOM()")
        assert sorted(result.column("id")) == [1, 2, 3, 4, 5]

    def test_tableless_select(self, db):
        assert db.execute("SELECT 1 + 2 * 3").scalar() == 7

    def test_select_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            db.execute("SELECT * FROM missing")

    def test_scalar_on_non_scalar_result_raises(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT * FROM points").scalar()

    def test_result_as_dicts(self, db):
        dicts = db.execute("SELECT id FROM points WHERE id = 1").as_dicts()
        assert dicts == [{"id": 1}]


class TestAggregationSQL:
    def test_count_star(self, db):
        assert db.execute("SELECT count(*) FROM points").scalar() == 5

    def test_multiple_aggregates(self, db):
        result = db.execute("SELECT count(*), avg(x), min(x), max(x) FROM points")
        count, avg, minimum, maximum = result.rows[0]
        assert count == 5
        assert avg == pytest.approx(0.1)
        assert minimum == -2.0
        assert maximum == 2.5

    def test_aggregate_with_where(self, db):
        assert db.execute("SELECT sum(x) FROM points WHERE label > 0").scalar() == pytest.approx(3.0)

    def test_null_agg_counts_tuples(self, db):
        assert db.execute("SELECT null_agg(*) FROM points").scalar() == 5

    def test_custom_uda_via_sql(self, db):
        db.register_aggregate(
            "sumsq",
            lambda: FunctionalAggregate(
                initialize=float,
                transition=lambda state, value: state + value * value,
                merge=lambda a, b: a + b,
            ),
        )
        expected = sum(x * x for x in db.table("points").column_values("x"))
        assert db.execute("SELECT sumsq(x) FROM points").scalar() == pytest.approx(expected)

    def test_mixing_aggregates_and_columns_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT id, count(*) FROM points")


class TestScalarFunctions:
    def test_registered_function_call(self, db):
        db.register_function("addone", lambda value: value + 1)
        assert db.execute("SELECT AddOne(41)").scalar() == 42

    def test_unknown_function_raises(self, db):
        with pytest.raises(UnknownFunctionError):
            db.execute("SELECT NoSuchFunction(1)")

    def test_function_usable_in_projection(self, db):
        db.register_function("square", lambda value: value * value)
        result = db.execute("SELECT square(x) FROM points WHERE id = 3")
        assert result.scalar() == pytest.approx(6.25)


class TestRunAggregateAPI:
    def test_run_aggregate_with_column_argument(self, db):
        assert db.run_aggregate("points", "sum", "x") == pytest.approx(0.5)

    def test_run_aggregate_with_row_order(self, db):
        order = [4, 3, 2, 1, 0]
        collected = []
        aggregate = FunctionalAggregate(
            initialize=list,
            transition=lambda state, row: state + [row["id"]],
            wants_row=True,
        )
        db.run_aggregate("points", aggregate, row_order=order)
        result = db.run_aggregate("points", aggregate, row_order=order)
        assert result[-5:] == [5, 4, 3, 2, 1]

    def test_run_aggregate_with_where(self, db):
        from repro.db.expressions import BinaryOp, ColumnRef, Literal

        predicate = BinaryOp(">", ColumnRef("label"), Literal(0))
        assert db.run_aggregate("points", "count", "id", where=predicate) == 3
