"""Durable training plane: WAL framing, checkpoints, recovery, env specs.

Covers the in-process half of the durability story — torn-record repair,
checkpoint atomicity and generation fallback, ``Database.open`` recovery,
idempotent close, strict ``REPRO_*`` spec validation, and the interplay
with the fault/degradation machinery from earlier PRs.  Whole-process
SIGKILL scenarios live in :mod:`tests.db.test_crash_harness`.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib

import numpy as np
import pytest

from repro.core.driver import BismarckRunner, IGDConfig
from repro.data import load_classification_table, make_sparse_classification
from repro.db import (
    CheckpointManager,
    ColumnType,
    CrashPlan,
    Database,
    DurabilityPolicy,
    EnvSpecError,
    ExecutionError,
    FaultPlan,
    RecoveryPolicy,
    SegmentedDatabase,
    crashes_from_env,
    parse_crash_spec,
    parse_fault_spec,
)
from repro.db.wal import (
    RECORD_HEADER,
    SEGMENT_HEADER_SIZE,
    WriteAheadLog,
    iter_wal_records,
    repair_wal_directory,
    scan_segment,
    segment_files,
)
from repro.frontend import install_frontend
from repro.tasks.logistic_regression import LogisticRegressionTask


def _open(path, **kwargs) -> Database:
    return Database.open(path, **kwargs)


def _rows(db: Database, name: str) -> list[tuple]:
    return [row.values for row in db.table(name).scan()]


# --------------------------------------------------------------------- WAL


class TestWriteAheadLog:
    def test_append_and_iter_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path, DurabilityPolicy.resolve("buffered"))
        records = [{"type": "mutation", "n": i} for i in range(5)]
        for record in records:
            wal.append(record)
        wal.close()
        assert list(iter_wal_records(tmp_path)) == records

    def test_position_tracks_segments_and_offsets(self, tmp_path):
        wal = WriteAheadLog(tmp_path, DurabilityPolicy.resolve("buffered"))
        assert wal.position() == (0, SEGMENT_HEADER_SIZE)
        wal.append({"n": 0})
        boundary = wal.position()
        wal.append({"n": 1})
        wal.rotate()
        assert wal.position() == (1, SEGMENT_HEADER_SIZE)
        wal.append({"n": 2})
        wal.close()
        # Replay after the boundary skips record 0 but crosses the rotation.
        assert list(iter_wal_records(tmp_path, after=boundary)) == [{"n": 1}, {"n": 2}]

    def test_torn_tail_is_truncated(self, tmp_path):
        wal = WriteAheadLog(tmp_path, DurabilityPolicy.resolve("buffered"))
        wal.append({"n": 0})
        wal.append({"n": 1})
        wal.close()
        (_, path), = segment_files(tmp_path)
        # Simulate a torn write: half a record appended at the tail.
        payload = pickle.dumps({"n": 2})
        with open(path, "ab") as handle:
            handle.write(RECORD_HEADER.pack(len(payload), zlib.crc32(payload)))
            handle.write(payload[: len(payload) // 2])
        discarded = repair_wal_directory(tmp_path)
        assert discarded == RECORD_HEADER.size + len(payload) // 2
        assert list(iter_wal_records(tmp_path)) == [{"n": 0}, {"n": 1}]
        # Repair is idempotent and the log accepts appends afterwards.
        assert repair_wal_directory(tmp_path) == 0
        wal = WriteAheadLog(tmp_path, DurabilityPolicy.resolve("buffered"))
        wal.append({"n": 2})
        wal.close()
        assert list(iter_wal_records(tmp_path)) == [{"n": 0}, {"n": 1}, {"n": 2}]

    def test_corrupt_checksum_stops_scan(self, tmp_path):
        wal = WriteAheadLog(tmp_path, DurabilityPolicy.resolve("buffered"))
        wal.append({"n": 0})
        position = wal.position()
        wal.append({"n": 1})
        wal.close()
        (_, path), = segment_files(tmp_path)
        with open(path, "r+b") as handle:
            handle.seek(position[1] + RECORD_HEADER.size)  # first payload byte
            byte = handle.read(1)
            handle.seek(position[1] + RECORD_HEADER.size)
            handle.write(bytes([byte[0] ^ 0xFF]))
        records, clean_length, torn = scan_segment(path)
        assert [payload for _, payload in records] == [{"n": 0}]
        assert clean_length == position[1]
        assert torn > 0

    def test_torn_segment_header_is_rewritten(self, tmp_path):
        wal = WriteAheadLog(tmp_path, DurabilityPolicy.resolve("buffered"))
        wal.append({"n": 0})
        wal.rotate()
        wal.close()
        (_, _), (_, tail_path) = segment_files(tmp_path)
        with open(tail_path, "wb") as handle:
            handle.write(b"BW")  # crash mid-rotation: partial header
        repair_wal_directory(tmp_path)
        assert list(iter_wal_records(tmp_path)) == [{"n": 0}]
        wal = WriteAheadLog(tmp_path, DurabilityPolicy.resolve("buffered"))
        assert wal.position()[0] == 1
        wal.close()

    def test_prune_drops_older_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, DurabilityPolicy.resolve("buffered"))
        wal.append({"n": 0})
        wal.rotate()
        wal.append({"n": 1})
        wal.rotate()
        wal.prune(1)
        wal.close()
        assert [index for index, _ in segment_files(tmp_path)] == [1, 2]
        assert list(iter_wal_records(tmp_path)) == [{"n": 1}]

    def test_close_is_idempotent(self, tmp_path):
        wal = WriteAheadLog(tmp_path, DurabilityPolicy.resolve("fsync"))
        wal.append({"n": 0})
        wal.close()
        wal.close()
        assert wal.closed

    def test_durability_mode_validation(self):
        with pytest.raises(EnvSpecError, match="sometimes"):
            DurabilityPolicy.resolve("sometimes")
        assert not DurabilityPolicy.resolve("off").wal_enabled
        assert DurabilityPolicy.resolve("fsync").fsync
        assert not DurabilityPolicy.resolve(None).fsync


# -------------------------------------------------------------- checkpoints


class TestCheckpointManager:
    def test_generations_and_pruning(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        for n in range(4):
            manager.write({"tables": {}, "training": {}, "wal_position": (0, n)})
        # Only the last KEEP_GENERATIONS snapshots survive.
        assert manager.generations() == [2, 3]
        payload, generation = manager.load_latest()
        assert generation == 3
        assert payload["wal_position"] == (0, 3)

    def test_corrupt_latest_falls_back(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.write({"tables": {}, "training": {}, "wal_position": (0, 0)})
        manager.write({"tables": {}, "training": {}, "wal_position": (0, 1)})
        newest = tmp_path / "checkpoint-000001.ckpt"
        data = newest.read_bytes()
        newest.write_bytes(data[: len(data) // 2])  # torn snapshot
        payload, generation = manager.load_latest()
        assert generation == 0
        assert payload["wal_position"] == (0, 0)

    def test_bad_magic_is_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.write({"tables": {}, "training": {}, "wal_position": None})
        path = tmp_path / "checkpoint-000000.ckpt"
        path.write_bytes(b"XXXXX" + path.read_bytes()[5:])
        assert manager.load(0) is None
        assert manager.load_latest() is None

    def test_stale_tmp_files_are_swept(self, tmp_path):
        (tmp_path / "checkpoint-000007.ckpt.tmp").write_bytes(b"half-written")
        CheckpointManager(tmp_path)
        assert not (tmp_path / "checkpoint-000007.ckpt.tmp").exists()

    def test_in_process_checkpoint_crash_leaves_previous_snapshot(self, tmp_path):
        db = _open(tmp_path / "db")
        table = db.create_table("t", [("x", ColumnType.INTEGER)])
        table.insert((1,))
        db.checkpoint()
        table.insert((2,))
        # Arm a mid-checkpoint crash; in-process the injector raises SIGKILL,
        # so emulate the interruption at the same point: the tmp file exists
        # but os.replace never ran.
        manager = db.checkpoints

        class Boom(RuntimeError):
            pass

        class FiringInjector:
            armed = True

            def crash_point(self, op):
                if op == "checkpoint":
                    raise Boom

        original = manager._crash
        manager._crash = FiringInjector()
        with pytest.raises(Boom):
            db.checkpoint()
        manager._crash = original
        db.close()

        recovered = _open(tmp_path / "db")
        # Generation 0 plus the WAL delta reconstruct both rows.
        assert recovered.recovery_report.checkpoint_generation == 0
        assert sorted(_rows(recovered, "t")) == [(1,), (2,)]
        recovered.close()


# ----------------------------------------------------------------- recovery


class TestDatabaseRecovery:
    def test_open_without_prior_state_is_empty(self, tmp_path):
        db = _open(tmp_path / "db")
        assert db.durable
        assert not db.recovery_report.recovered_anything
        db.close()

    def test_wal_only_recovery(self, tmp_path):
        db = _open(tmp_path / "db")
        table = db.create_table("t", [("x", ColumnType.INTEGER), ("y", ColumnType.TEXT)])
        table.insert((1, "a"))
        table.insert_many([(2, "b"), (3, "c")])
        version = table.version
        db.close()

        recovered = _open(tmp_path / "db")
        assert sorted(_rows(recovered, "t")) == [(1, "a"), (2, "b"), (3, "c")]
        assert recovered.table("t").version == version
        assert recovered.recovery_report.records_replayed == 3  # create + 2 muts
        recovered.close()

    def test_checkpoint_plus_delta_recovery(self, tmp_path):
        db = _open(tmp_path / "db")
        table = db.create_table("t", [("x", ColumnType.INTEGER)])
        table.insert_many([(i,) for i in range(10)])
        db.checkpoint()
        table.insert_many([(i,) for i in range(10, 15)])
        version = table.version
        db.close()

        recovered = _open(tmp_path / "db")
        report = recovered.recovery_report
        assert report.checkpoint_generation == 0
        assert report.tables_restored == 1
        assert report.records_replayed == 1  # just the post-checkpoint insert
        assert sorted(_rows(recovered, "t")) == [(i,) for i in range(15)]
        assert recovered.table("t").version == version
        # The reconstructed ledger classifies the delta exactly.
        delta = recovered.table("t").classify_delta(version - 1)
        assert delta.kind == "append"
        recovered.close()

    def test_ledger_survives_recovery_for_partial_fit(self, tmp_path):
        db = _open(tmp_path / "db")
        table = db.create_table("t", [("x", ColumnType.INTEGER)])
        table.insert_many([(i,) for i in range(8)])
        watermark = table.version
        table.insert_many([(i,) for i in range(8, 12)])
        db.close()

        recovered = _open(tmp_path / "db")
        delta = recovered.table("t").classify_delta(watermark)
        assert delta.kind == "append"
        assert delta.rows_added == 4
        recovered.close()

    def test_drop_table_is_replayed(self, tmp_path):
        db = _open(tmp_path / "db")
        db.create_table("keep", [("x", ColumnType.INTEGER)]).insert((1,))
        db.create_table("gone", [("x", ColumnType.INTEGER)]).insert((2,))
        db.drop_table("gone")
        db.close()

        recovered = _open(tmp_path / "db")
        assert recovered.has_table("keep")
        assert not recovered.has_table("gone")
        recovered.close()

    def test_rewrite_mutation_is_replayed(self, tmp_path):
        db = _open(tmp_path / "db")
        table = db.create_table("t", [("x", ColumnType.INTEGER)])
        table.insert_many([(i,) for i in range(6)])
        db.checkpoint()
        table.shuffle(np.random.default_rng(3))
        shuffled = _rows(db, "t")
        db.close()

        recovered = _open(tmp_path / "db")
        assert _rows(recovered, "t") == shuffled
        assert recovered.table("t").classify_delta(0).kind == "rewrite"
        recovered.close()

    def test_durability_off_skips_wal(self, tmp_path):
        db = _open(tmp_path / "db", durability="off")
        table = db.create_table("t", [("x", ColumnType.INTEGER)])
        table.insert((1,))
        db.checkpoint()
        table.insert((2,))  # never logged: lost without a checkpoint
        db.close()
        assert segment_files(tmp_path / "db") == []

        recovered = _open(tmp_path / "db", durability="off")
        assert sorted(_rows(recovered, "t")) == [(1,)]
        recovered.close()

    def test_close_is_idempotent_and_flushes(self, tmp_path):
        db = _open(tmp_path / "db")
        db.create_table("t", [("x", ColumnType.INTEGER)]).insert((1,))
        db.close()
        db.close()  # double close is a no-op

        recovered = _open(tmp_path / "db")
        assert sorted(_rows(recovered, "t")) == [(1,)]
        recovered.close()
        recovered.close()  # close after a recovery open is equally idempotent


# ------------------------------------------------------------ training state


def _sparse_dataset():
    return make_sparse_classification(60, 12, nonzeros_per_example=4, seed=11)


def _train_config(**overrides) -> IGDConfig:
    defaults = dict(step_size=0.1, max_epochs=4, ordering="shuffle_once", seed=0)
    defaults.update(overrides)
    return IGDConfig(**defaults)


class TestTrainingStateCheckpoints:
    def test_epoch_checkpoint_and_resume_matches_uninterrupted(self, tmp_path):
        dataset = _sparse_dataset()
        task = LogisticRegressionTask(dataset.dimension, mu=0.01)

        reference_db = Database("postgres", seed=0)
        load_classification_table(reference_db, "pts", dataset.examples, sparse=True)
        reference = BismarckRunner(reference_db, task, _train_config()).train("pts")

        db = _open(tmp_path / "db")
        load_classification_table(db, "pts", dataset.examples, sparse=True)
        runner = BismarckRunner(db, task, _train_config(checkpoint_every=1, max_epochs=2))
        runner.train("pts")
        state = db.training_state("pts")
        assert state is not None and state.next_epoch == 2
        db.close()

        # Reopen as after a crash; the recovered state resumes epochs 2..3.
        recovered = _open(tmp_path / "db")
        state = recovered.training_state("pts")
        assert state is not None
        resumed = BismarckRunner(recovered, task, _train_config(checkpoint_every=1)).train(
            "pts", resume_from=state
        )
        np.testing.assert_array_equal(
            resumed.model.as_flat_vector(), reference.model.as_flat_vector()
        )
        assert resumed.objective_trace()[-1] == reference.objective_trace()[-1]
        recovered.close()

    def test_resume_after_convergence_runs_no_extra_epochs(self, tmp_path):
        dataset = _sparse_dataset()
        task = LogisticRegressionTask(dataset.dimension, mu=0.01)
        db = _open(tmp_path / "db")
        load_classification_table(db, "pts", dataset.examples, sparse=True)
        config = _train_config(checkpoint_every=1, max_epochs=3)
        result = BismarckRunner(db, task, config).train("pts")
        state = db.training_state("pts")
        db.close()

        recovered = _open(tmp_path / "db")
        resumed = BismarckRunner(recovered, task, config).train(
            "pts", resume_from=recovered.training_state("pts")
        )
        assert resumed.epochs_run == result.epochs_run
        np.testing.assert_array_equal(
            resumed.model.as_flat_vector(), result.model.as_flat_vector()
        )
        recovered.close()

    def test_partial_fit_resume_delegates_to_train(self, tmp_path):
        dataset = _sparse_dataset()
        task = LogisticRegressionTask(dataset.dimension, mu=0.01)
        db = _open(tmp_path / "db")
        load_classification_table(db, "pts", dataset.examples, sparse=True)
        config = _train_config(checkpoint_every=1, max_epochs=2)
        BismarckRunner(db, task, config).train("pts")
        state = db.training_state("pts")
        db.close()

        recovered = _open(tmp_path / "db")
        runner = BismarckRunner(recovered, task, _train_config(checkpoint_every=1))
        resumed = runner.partial_fit("pts", resume_from=recovered.training_state("pts"))
        reference_db = Database("postgres", seed=0)
        load_classification_table(reference_db, "pts", dataset.examples, sparse=True)
        reference = BismarckRunner(reference_db, task, _train_config()).train("pts")
        np.testing.assert_array_equal(
            resumed.model.as_flat_vector(), reference.model.as_flat_vector()
        )
        recovered.close()


# ---------------------------------------------------------------- env specs


class TestEnvSpecValidation:
    def test_fault_spec_bad_field_named(self):
        with pytest.raises(ValueError, match="epoch"):
            parse_fault_spec("kill:epoch=three")
        with pytest.raises(ValueError, match="unknown key"):
            parse_fault_spec("kill:flavor=2")
        with pytest.raises(ValueError, match="worker"):
            parse_fault_spec("kill:epoch=1:worker=x")
        # EnvSpecError doubles as ExecutionError for backward compatibility.
        with pytest.raises(ExecutionError):
            parse_fault_spec("kill:epoch=nope")

    def test_crash_spec_grammar(self):
        assert parse_crash_spec("kill:epoch=3") == (CrashPlan(op="epoch", at=3),)
        assert parse_crash_spec("kill:op=checkpoint") == (CrashPlan(op="checkpoint", at=0),)
        assert parse_crash_spec("kill:op=wal_append:at=2") == (
            CrashPlan(op="wal_append", at=2),
        )
        assert parse_crash_spec("kill:epoch=1; kill:op=checkpoint") == (
            CrashPlan(op="epoch", at=1),
            CrashPlan(op="checkpoint", at=0),
        )

    def test_crash_spec_bad_field_named(self):
        with pytest.raises(EnvSpecError, match="op"):
            parse_crash_spec("kill:op=reboot")
        with pytest.raises(EnvSpecError, match="at"):
            parse_crash_spec("kill:op=epoch:at=x")
        with pytest.raises(EnvSpecError, match="epoch"):
            parse_crash_spec("kill:epoch=-1")
        with pytest.raises(EnvSpecError, match="kill"):
            parse_crash_spec("pause:epoch=1")

    def test_crashes_from_env(self):
        plans = crashes_from_env({"REPRO_CRASH": "kill:epoch=2"})
        assert plans == (CrashPlan(op="epoch", at=2),)
        assert crashes_from_env({}) == ()
        with pytest.raises(EnvSpecError, match="REPRO_CRASH"):
            crashes_from_env({"REPRO_CRASH": "kill:when=later"})

    def test_recovery_env_bad_field_named(self):
        with pytest.raises(EnvSpecError, match="REPRO_RECOVERY_TIMEOUT"):
            RecoveryPolicy.from_env({"REPRO_RECOVERY_TIMEOUT": "fast"})
        with pytest.raises(ValueError, match="REPRO_RECOVERY_MAX_RESPAWNS"):
            RecoveryPolicy.from_env({"REPRO_RECOVERY_MAX_RESPAWNS": "2.5"})
        with pytest.raises(EnvSpecError, match="REPRO_RECOVERY_BACKOFF"):
            RecoveryPolicy.from_env({"REPRO_RECOVERY_BACKOFF": "soon"})
        policy = RecoveryPolicy.from_env(
            {"REPRO_RECOVERY_TIMEOUT": "3", "REPRO_RECOVERY_BACKOFF": ""}
        )
        assert policy.timeout == 3.0

    def test_database_validates_env_eagerly(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "kill:epoch=bogus")
        with pytest.raises(EnvSpecError, match="epoch"):
            Database("postgres", seed=0)
        monkeypatch.delenv("REPRO_FAULT")
        monkeypatch.setenv("REPRO_CRASH", "explode")
        with pytest.raises(EnvSpecError, match="REPRO_CRASH"):
            Database("postgres", seed=0)
        monkeypatch.delenv("REPRO_CRASH")
        monkeypatch.setenv("REPRO_RECOVERY_TIMEOUT", "yesterday")
        with pytest.raises(EnvSpecError, match="REPRO_RECOVERY_TIMEOUT"):
            Database("postgres", seed=0)


# ------------------------------------------------- interplay with PR 6 / PR 7


@pytest.mark.backends
class TestDurabilityFaultInterplay:
    def test_extend_kill_during_checkpointing_epoch(self, tmp_path):
        """A PR-6 worker kill on ``extend`` recovers while epochs checkpoint."""
        from repro.core.parallel import PureUDAParallelism

        dataset = _sparse_dataset()
        task = LogisticRegressionTask(dataset.dimension, mu=0.01)
        db = SegmentedDatabase.open(
            tmp_path / "db",
            num_segments=2,
            seed=0,
            recovery=RecoveryPolicy(timeout=30.0, max_respawns=3, backoff=0.0),
            faults=[FaultPlan("kill", worker=0, epoch=0, op="extend")],
        )
        load_classification_table(db, "pts", dataset.examples, sparse=True)
        config = _train_config(
            checkpoint_every=1,
            max_epochs=2,
            parallelism=PureUDAParallelism(backend="process"),
        )
        result = BismarckRunner(db, task, config).train("pts")
        watermark = result.table_version
        # Grow the table; the continuation's segment extension trips the
        # planted kill, the supervised pool recovers, and every delta epoch
        # still checkpoints into the live WAL/checkpoint plane.
        extra = make_sparse_classification(20, 12, nonzeros_per_example=4, seed=12)
        db.insert(
            "pts",
            [
                (60 + i, example.features, example.label)
                for i, example in enumerate(extra.examples)
            ],
        )
        runner = BismarckRunner(db, task, config)
        delta = runner.partial_fit(
            "pts", initial_model=result.model, since_version=watermark
        )
        assert delta.respawn_count >= 1
        assert db.training_state("pts") is not None
        master_rows = sorted(_rows(db.master, "pts"))
        db.close_process_pools()
        db.close()

        recovered = SegmentedDatabase.open(tmp_path / "db", num_segments=2)
        assert recovered.training_state("pts") is not None
        assert sorted(_rows(recovered.master, "pts")) == master_rows
        recovered.close()

    def test_degradation_fallback_with_live_wal(self, tmp_path):
        """The PR-6 degradation ladder falls back while a WAL is live."""
        from repro.core.parallel import PureUDAParallelism

        dataset = _sparse_dataset()
        task = LogisticRegressionTask(dataset.dimension, mu=0.01)
        db = SegmentedDatabase.open(
            tmp_path / "db",
            num_segments=2,
            seed=0,
            recovery=RecoveryPolicy(timeout=30.0, max_respawns=0, backoff=0.0),
            faults=[FaultPlan("kill", worker=0, epoch=0)],
        )
        load_classification_table(db, "pts", dataset.examples, sparse=True)
        config = _train_config(
            checkpoint_every=1,
            max_epochs=2,
            parallelism=PureUDAParallelism(backend="process"),
        )
        result = BismarckRunner(db, task, config).train("pts")
        assert result.degraded
        master_rows = sorted(_rows(db.master, "pts"))
        db.close_process_pools()
        db.close()

        recovered = SegmentedDatabase.open(tmp_path / "db", num_segments=2)
        assert sorted(_rows(recovered.master, "pts")) == master_rows
        recovered.close()

    def test_segmented_recovery_preserves_segment_identity(self, tmp_path):
        db = SegmentedDatabase.open(tmp_path / "db", num_segments=3)
        table = db.create_table("t", [("x", ColumnType.INTEGER)])
        db.insert("t", [(i,) for i in range(10)])
        original_segments = [
            [row.values for row in segment.scan()] for segment in db.segments_of("t")
        ]
        original_names = [segment.name for segment in db.segments_of("t")]
        db.close()

        recovered = SegmentedDatabase.open(tmp_path / "db", num_segments=3)
        segments = recovered.segments_of("t")
        assert [segment.name for segment in segments] == original_names
        assert [
            [row.values for row in segment.scan()] for segment in segments
        ] == original_segments
        recovered.close()


# ------------------------------------------------------------ SQL front end


class TestFrontendDurability:
    def test_resumed_sql_training_matches_uninterrupted(self, tmp_path):
        dataset = _sparse_dataset()
        # Uninterrupted reference.
        reference_db = Database("postgres", seed=0)
        load_classification_table(reference_db, "pts", dataset.examples, sparse=True)
        install_frontend(reference_db)
        reference_db.execute(
            "SELECT LRTrain('m', 'pts', 'vec', 'label', 0.1, 4)"
        )
        from repro.frontend.models import load_model

        reference = load_model(reference_db, "m")

        # Interrupted run: train half the epochs with per-epoch checkpoints,
        # leave the training state behind (as a crash would), reopen, and let
        # the SQL front end resume it.
        db = _open(tmp_path / "db")
        load_classification_table(db, "pts", dataset.examples, sparse=True)
        # Mirror the frontend's task construction exactly (same inferred
        # dimension) so the recovered TrainingState matches its task check.
        from repro.frontend.train import _infer_feature_dimension

        dimension = _infer_feature_dimension(db.table("pts"), "vec")
        task = LogisticRegressionTask(dimension, mu=0.0)
        BismarckRunner(
            db,
            task,
            _train_config(checkpoint_every=1, max_epochs=2, checkpoint_name="m"),
        ).train("pts")
        db.close()

        recovered = _open(tmp_path / "db")
        install_frontend(recovered)
        summary = recovered.execute(
            "SELECT LRTrain('m', 'pts', 'vec', 'label', 0.1, 4)"
        ).rows[0][0]
        assert "resumed" in summary
        resumed = load_model(recovered, "m")
        np.testing.assert_array_equal(
            resumed.as_flat_vector(), reference.as_flat_vector()
        )
        # The state is cleared once the model is durably persisted.
        assert recovered.training_state("m") is None
        recovered.close()
