"""Tests for built-in aggregates, the UDA contract and the registry."""

from __future__ import annotations

import math

import pytest

from repro.db import (
    AggregateRegistry,
    ColumnType,
    ExecutionError,
    FunctionalAggregate,
    NullAggregate,
    Schema,
    UnknownFunctionError,
)
from repro.db.aggregates import (
    AvgAggregate,
    CountAggregate,
    MaxAggregate,
    MinAggregate,
    StddevAggregate,
    SumAggregate,
)
from repro.db.types import Row


class TestBuiltinAggregates:
    def test_count_ignores_nulls(self):
        assert CountAggregate().run([1, None, 2, None, 3]) == 3

    def test_sum(self):
        assert SumAggregate().run([1, 2, 3, None]) == 6

    def test_sum_all_null_returns_none(self):
        assert SumAggregate().run([None, None]) is None

    def test_avg(self):
        assert AvgAggregate().run([2, 4, None, 6]) == pytest.approx(4.0)

    def test_avg_empty_is_none(self):
        assert AvgAggregate().run([]) is None

    def test_min_max(self):
        assert MinAggregate().run([5, 1, None, 3]) == 1
        assert MaxAggregate().run([5, 1, None, 3]) == 5

    def test_stddev_matches_population_formula(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        assert StddevAggregate().run(values) == pytest.approx(2.0)

    def test_stddev_empty_is_none(self):
        assert StddevAggregate().run([]) is None

    def test_null_aggregate_counts_rows(self):
        schema = Schema.of(("x", ColumnType.FLOAT))
        rows = [Row(schema, (float(i),)) for i in range(10)]
        assert NullAggregate().run(rows) == 10


class TestMergeSemantics:
    """Merging partial states must equal a single serial aggregation."""

    @pytest.mark.parametrize(
        "aggregate_cls",
        [CountAggregate, SumAggregate, AvgAggregate, MinAggregate, MaxAggregate, StddevAggregate],
    )
    def test_merge_equals_serial(self, aggregate_cls):
        values = [1.0, -2.0, 5.5, 3.25, 0.0, 10.0, -7.5]
        serial = aggregate_cls().run(values)

        aggregate = aggregate_cls()
        state_a = aggregate.initialize()
        for value in values[:3]:
            state_a = aggregate.transition(state_a, value)
        state_b = aggregate.initialize()
        for value in values[3:]:
            state_b = aggregate.transition(state_b, value)
        merged = aggregate.terminate(aggregate.merge(state_a, state_b))

        if serial is None:
            assert merged is None
        else:
            assert merged == pytest.approx(serial)

    def test_stddev_merge_with_empty_partition(self):
        aggregate = StddevAggregate()
        state_a = aggregate.initialize()
        state_b = aggregate.initialize()
        for value in (1.0, 2.0, 3.0):
            state_b = aggregate.transition(state_b, value)
        merged = aggregate.terminate(aggregate.merge(state_a, state_b))
        assert merged == pytest.approx(aggregate.run([1.0, 2.0, 3.0]))


class TestFunctionalAggregate:
    def test_wraps_callables(self):
        concat = FunctionalAggregate(
            initialize=list,
            transition=lambda state, value: state + [value],
            terminate=lambda state: ",".join(state),
        )
        assert concat.run(["a", "b", "c"]) == "a,b,c"

    def test_merge_unsupported_raises(self):
        aggregate = FunctionalAggregate(initialize=int, transition=lambda s, v: s + v)
        assert aggregate.supports_merge is False
        with pytest.raises(ExecutionError):
            aggregate.merge(1, 2)

    def test_merge_supported_when_provided(self):
        aggregate = FunctionalAggregate(
            initialize=int,
            transition=lambda s, v: s + v,
            merge=lambda a, b: a + b,
        )
        assert aggregate.supports_merge is True
        assert aggregate.merge(3, 4) == 7


class TestRegistry:
    def test_builtins_present(self):
        registry = AggregateRegistry()
        for name in ("count", "sum", "avg", "min", "max", "stddev", "null_agg"):
            assert name in registry

    def test_register_and_create(self):
        registry = AggregateRegistry()
        registry.register("mycount", CountAggregate)
        instance = registry.create("MYCOUNT")
        assert isinstance(instance, CountAggregate)

    def test_register_instance_returns_same_object(self):
        registry = AggregateRegistry()
        shared = NullAggregate()
        registry.register_instance("shared_null", shared)
        assert registry.create("shared_null") is shared

    def test_unknown_raises(self):
        registry = AggregateRegistry()
        with pytest.raises(UnknownFunctionError):
            registry.create("no_such_aggregate")

    def test_unregister(self):
        registry = AggregateRegistry()
        registry.register("temp", CountAggregate)
        registry.unregister("temp")
        assert "temp" not in registry

    def test_create_returns_fresh_instances(self):
        registry = AggregateRegistry()
        assert registry.create("count") is not registry.create("count")
