"""Tests for the baseline ('native tool') trainers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    train_als_matrix_factorization,
    train_batch_crf,
    train_batch_gradient_descent,
    train_batch_matrix_factorization,
    train_batch_svm,
    train_newton_logistic_regression,
)
from repro.core import train_in_memory
from repro.data import make_dense_classification, make_ratings, make_sequences
from repro.tasks import (
    ConditionalRandomFieldTask,
    LinearRegressionTask,
    LogisticRegressionTask,
    LowRankMatrixFactorizationTask,
    SVMTask,
)


@pytest.fixture(scope="module")
def dense():
    return make_dense_classification(200, 6, seed=11)


@pytest.fixture(scope="module")
def ratings():
    return make_ratings(30, 20, 400, rank=3, noise=0.05, seed=11)


class TestNewtonLR:
    def test_converges_to_low_loss(self, dense):
        result = train_newton_logistic_regression(dense.examples, 6, iterations=8)
        igd = train_in_memory(LogisticRegressionTask(6), dense.examples, epochs=10, step_size=0.1)
        # Newton should reach at least the quality IGD reaches.
        assert result.final_objective <= igd.final_objective * 1.05

    def test_objective_monotone_after_first_iterations(self, dense):
        result = train_newton_logistic_regression(dense.examples, 6, iterations=8)
        trace = result.objective_trace()
        assert trace[-1] <= trace[1]

    def test_charge_per_tuple_called_once_per_tuple_per_iteration(self, dense):
        calls = []
        train_newton_logistic_regression(
            dense.examples, 6, iterations=2, charge_per_tuple=lambda: calls.append(1)
        )
        assert len(calls) == 2 * len(dense.examples)

    def test_early_stop_on_tiny_step(self, dense):
        result = train_newton_logistic_regression(dense.examples, 6, iterations=50, tolerance=1e-3)
        assert result.iterations < 50


class TestBatchLinearBaselines:
    def test_batch_gd_decreases_objective(self, dense):
        result = train_batch_gradient_descent(
            LogisticRegressionTask(6), dense.examples, step_size=0.001, iterations=20
        )
        trace = result.objective_trace()
        assert trace[-1] < trace[0]

    def test_batch_gd_rejects_non_linear_tasks(self, ratings):
        task = LowRankMatrixFactorizationTask(30, 20, rank=3)
        with pytest.raises(TypeError):
            train_batch_gradient_descent(task, ratings.examples)

    def test_batch_gd_least_squares(self):
        rng = np.random.default_rng(0)
        from repro.tasks import SupervisedExample

        true_w = np.array([1.0, -1.0])
        examples = [
            SupervisedExample(x, float(x @ true_w))
            for x in rng.normal(size=(100, 2))
        ]
        result = train_batch_gradient_descent(
            LinearRegressionTask(2), examples, step_size=0.005, iterations=100
        )
        np.testing.assert_allclose(result.model["w"], true_w, atol=0.1)

    def test_batch_svm_decreases_objective(self, dense):
        result = train_batch_svm(SVMTask(6), dense.examples, step_size=0.001, iterations=20)
        trace = result.objective_trace()
        assert trace[-1] < trace[0]

    def test_batch_svm_needs_more_passes_than_igd(self, dense):
        """The core of Figure 7A: per pass, IGD makes far more progress."""
        igd = train_in_memory(SVMTask(6), dense.examples, epochs=5, step_size=0.05, seed=0)
        batch = train_batch_svm(SVMTask(6), dense.examples, step_size=0.005, iterations=5)
        assert igd.final_objective < batch.final_objective

    def test_time_to_reach_helper(self, dense):
        result = train_batch_svm(SVMTask(6), dense.examples, step_size=0.005, iterations=10)
        assert result.time_to_reach(result.objective_trace()[-1]) is not None
        assert result.time_to_reach(-1.0) is None


class TestMatrixFactorizationBaselines:
    def test_als_fits_ratings_well(self, ratings):
        task = LowRankMatrixFactorizationTask(30, 20, rank=3, mu=0.01)
        result = train_als_matrix_factorization(task, ratings.examples, iterations=10)
        rmse = task.reconstruction_rmse(result.model, ratings.examples)
        assert rmse < 0.5

    def test_als_objective_decreases(self, ratings):
        task = LowRankMatrixFactorizationTask(30, 20, rank=3, mu=0.01)
        result = train_als_matrix_factorization(task, ratings.examples, iterations=5)
        trace = result.objective_trace()
        assert trace[-1] < trace[0]

    def test_batch_mf_much_slower_convergence_than_igd(self, ratings):
        """Figure 7A's LMF claim: per pass, SGD beats batch gradient descent."""
        task = LowRankMatrixFactorizationTask(30, 20, rank=3, mu=0.01)
        igd = train_in_memory(task, ratings.examples, epochs=10, step_size=0.05, seed=0)
        batch = train_batch_matrix_factorization(
            LowRankMatrixFactorizationTask(30, 20, rank=3, mu=0.01),
            ratings.examples,
            step_size=0.001,
            iterations=10,
        )
        assert igd.final_objective < batch.final_objective

    def test_batch_mf_objective_decreases(self, ratings):
        result = train_batch_matrix_factorization(
            LowRankMatrixFactorizationTask(30, 20, rank=3, mu=0.01),
            ratings.examples,
            step_size=0.001,
            iterations=10,
        )
        trace = result.objective_trace()
        assert trace[-1] < trace[0]


class TestBatchCRF:
    def test_objective_decreases(self):
        corpus = make_sequences(15, mean_length=6, num_labels=3, seed=5)
        task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
        result = train_batch_crf(task, corpus.examples, step_size=0.5, iterations=8)
        trace = result.objective_trace()
        assert trace[-1] < trace[0]

    def test_igd_converges_faster_per_pass(self):
        """Figure 7B's claim at unit-test scale."""
        corpus = make_sequences(15, mean_length=6, num_labels=3, seed=5)
        igd = train_in_memory(
            ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels),
            corpus.examples,
            epochs=5,
            step_size=0.2,
            seed=0,
        )
        batch = train_batch_crf(
            ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels),
            corpus.examples,
            step_size=0.5,
            iterations=5,
        )
        assert igd.final_objective < batch.final_objective
