"""Tests for dataset generators, loaders and the Table-1 statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    classification_statistics,
    encode_sequence_for_storage,
    load_catx_table,
    load_classification_table,
    load_ratings_table,
    load_returns_table,
    load_sequences_table,
    load_timeseries_table,
    make_catx,
    make_dense_classification,
    make_noisy_timeseries,
    make_portfolio_returns,
    make_ratings,
    make_sequences,
    make_sparse_classification,
    ratings_statistics,
    sequence_statistics,
)
from repro.db import Database, SegmentedDatabase
from repro.tasks import ConditionalRandomFieldTask


class TestClassificationGenerators:
    def test_dense_shape_and_labels(self):
        dataset = make_dense_classification(100, 10, seed=0)
        assert len(dataset) == 100
        assert dataset.dimension == 10
        assert not dataset.sparse
        assert {example.label for example in dataset.examples} == {1.0, -1.0}
        assert dataset.num_positive + dataset.num_negative == 100

    def test_dense_reproducible(self):
        a = make_dense_classification(50, 5, seed=3)
        b = make_dense_classification(50, 5, seed=3)
        np.testing.assert_allclose(a.examples[7].features, b.examples[7].features)

    def test_dense_roughly_balanced(self):
        dataset = make_dense_classification(200, 5, seed=1)
        assert 80 <= dataset.num_positive <= 120

    def test_sparse_structure(self):
        dataset = make_sparse_classification(
            60, 200, nonzeros_per_example=8, common_features=3, seed=0
        )
        assert dataset.sparse
        for example in dataset.examples:
            assert isinstance(example.features, dict)
            assert len(example.features) == 8 + 3
            assert all(example.features[i] == 1.0 for i in range(3))
            assert max(example.features) < 200

    def test_clustered_by_label_order(self):
        dataset = make_dense_classification(100, 4, seed=2).clustered_by_label()
        labels = [example.label for example in dataset.examples]
        assert labels == sorted(labels, reverse=True)

    def test_shuffled_preserves_multiset(self):
        dataset = make_dense_classification(50, 4, seed=2)
        shuffled = dataset.shuffled(seed=9)
        assert sorted(e.label for e in shuffled.examples) == sorted(
            e.label for e in dataset.examples
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            make_dense_classification(1, 5)
        with pytest.raises(ValueError):
            make_sparse_classification(10, 20, nonzeros_per_example=0)
        with pytest.raises(ValueError):
            make_sparse_classification(10, 20, nonzeros_per_example=5, common_features=20)

    def test_approximate_bytes_positive(self):
        dense = make_dense_classification(30, 5, seed=0)
        sparse = make_sparse_classification(30, 50, nonzeros_per_example=4, seed=0)
        assert dense.approximate_bytes() > 0
        assert sparse.approximate_bytes() > 0


class TestCATX:
    def test_structure(self):
        dataset = make_catx(10)
        assert len(dataset) == 20
        labels = dataset.labels()
        assert np.all(labels[:10] == 1.0)
        assert np.all(labels[10:] == -1.0)
        assert all(example.features == 1.0 for example in dataset.examples)

    def test_random_order_is_permutation(self):
        dataset = make_catx(10)
        randomized = dataset.random_order(seed=1)
        assert sorted(e.label for e in randomized) == sorted(e.label for e in dataset.examples)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            make_catx(0)


class TestRatingsAndSequences:
    def test_ratings_structure(self):
        dataset = make_ratings(20, 15, 100, rank=3, seed=0)
        assert len(dataset) == 100
        assert 0 < dataset.density() <= 1
        for example in dataset.examples:
            assert 0 <= example.row < 20
            assert 0 <= example.col < 15

    def test_ratings_no_duplicate_cells(self):
        dataset = make_ratings(10, 10, 80, rank=2, seed=1)
        cells = {(example.row, example.col) for example in dataset.examples}
        assert len(cells) == len(dataset)

    def test_ratings_clustered_by_row(self):
        dataset = make_ratings(10, 10, 50, rank=2, seed=2).clustered_by_row()
        rows = [example.row for example in dataset.examples]
        assert rows == sorted(rows)

    def test_ratings_capped_at_matrix_size(self):
        dataset = make_ratings(5, 5, 1000, rank=2, seed=0)
        assert len(dataset) == 25

    def test_sequences_structure(self):
        corpus = make_sequences(10, mean_length=7, num_labels=3, seed=0)
        assert len(corpus) == 10
        assert corpus.num_labels == 3
        assert corpus.num_tokens > 0
        for example in corpus.examples:
            assert len(example.token_features) == len(example.labels)
            assert all(0 <= label < 3 for label in example.labels)
            for features in example.token_features:
                assert all(0 <= f < corpus.num_features for f in features)

    def test_sequence_encoding(self):
        corpus = make_sequences(3, mean_length=5, num_labels=2, seed=1)
        tokens, labels = encode_sequence_for_storage(corpus.examples[0])
        assert "|" in tokens
        assert len(labels.split()) == len(corpus.examples[0])

    def test_invalid_sequence_args(self):
        with pytest.raises(ValueError):
            make_sequences(0)
        with pytest.raises(ValueError):
            make_sequences(5, num_labels=1)
        with pytest.raises(ValueError):
            make_sequences(5, stickiness=1.5)


class TestOtherGenerators:
    def test_timeseries(self):
        series = make_noisy_timeseries(30, 2, seed=0)
        assert len(series) == 30
        assert series.true_states.shape == (30, 2)
        assert series.examples[5].time_index == 5

    def test_portfolio_returns(self):
        data = make_portfolio_returns(5, 100, seed=0)
        assert len(data) == 100
        assert data.num_assets == 5
        assert data.covariance.shape == (5, 5)
        sample_mean = data.sample_mean()
        assert np.all(np.abs(sample_mean - data.expected_returns) < 0.2)

    def test_portfolio_invalid_args(self):
        with pytest.raises(ValueError):
            make_portfolio_returns(1, 100)
        with pytest.raises(ValueError):
            make_portfolio_returns(5, 1)


class TestLoaders:
    def test_classification_loader_dense(self):
        database = Database()
        dataset = make_dense_classification(20, 4, seed=0)
        table = load_classification_table(database, "papers", dataset.examples)
        assert len(table) == 20
        assert database.table("papers").schema.column_names == ("id", "vec", "label")

    def test_classification_loader_sparse(self):
        database = Database()
        dataset = make_sparse_classification(10, 30, nonzeros_per_example=3, seed=0)
        load_classification_table(database, "docs", dataset.examples, sparse=True)
        row = database.table("docs").row_at(0)
        assert isinstance(row["vec"], dict)

    def test_loader_replace(self):
        database = Database()
        dataset = make_dense_classification(10, 3, seed=0)
        load_classification_table(database, "t", dataset.examples)
        load_classification_table(database, "t", dataset.examples[:5], replace=True)
        assert len(database.table("t")) == 5

    def test_catx_loader(self):
        database = Database()
        load_catx_table(database, "catx", make_catx(5).examples)
        assert len(database.table("catx")) == 10

    def test_ratings_loader(self):
        database = Database()
        dataset = make_ratings(5, 5, 10, rank=2, seed=0)
        load_ratings_table(database, "ratings", dataset.examples)
        assert database.execute("SELECT count(*) FROM ratings").scalar() == 10

    def test_sequences_loader_roundtrips_through_task(self):
        database = Database()
        corpus = make_sequences(4, mean_length=5, num_labels=2, seed=0)
        load_sequences_table(database, "sentences", corpus.examples)
        task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
        decoded = [task.example_from_row(row) for row in database.table("sentences").scan()]
        assert decoded[0].labels == corpus.examples[0].labels
        assert decoded[0].token_features == corpus.examples[0].token_features

    def test_timeseries_and_returns_loaders(self):
        database = Database()
        series = make_noisy_timeseries(10, 2, seed=0)
        load_timeseries_table(database, "obs", series.examples)
        assert len(database.table("obs")) == 10
        returns = make_portfolio_returns(4, 20, seed=0)
        load_returns_table(database, "returns", returns.examples)
        assert len(database.table("returns")) == 20

    def test_loader_on_segmented_database(self):
        database = SegmentedDatabase(3, "dbms_b")
        dataset = make_dense_classification(30, 4, seed=0)
        load_classification_table(database, "papers", dataset.examples)
        assert sum(len(s) for s in database.segments_of("papers")) == 30


class TestStatistics:
    def test_statistics_rows(self):
        dense = make_dense_classification(50, 5, seed=0)
        sparse = make_sparse_classification(20, 100, nonzeros_per_example=4, seed=0)
        ratings = make_ratings(10, 10, 40, rank=2, seed=0)
        corpus = make_sequences(5, num_labels=2, seed=0)
        stats = [
            classification_statistics(dense),
            classification_statistics(sparse),
            ratings_statistics(ratings),
            sequence_statistics(corpus),
        ]
        for stat in stats:
            assert stat.num_examples > 0
            assert stat.approximate_bytes > 0
            assert stat.size_human()
        assert stats[1].format == "sparse-vector"
        assert stats[2].format == "sparse-matrix"
        assert "x" in stats[2].dimension
