"""Batch-gradient matrix factorisation — the 'native tool' LMF baseline.

The in-RDBMS matrix-factorisation implementations the paper compares against
(MADlib's and DBMS B's native tools, circa 2012) recompute a full gradient
over every observed entry before each parameter update; the paper reports them
as *orders of magnitude* slower than Bismarck's per-entry SGD.  This baseline
reproduces that implementation style: one full pass per update, so progress
per tuple touched is far lower than IGD's.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from ..core.convergence import EpochRecord
from ..core.model import Model
from ..tasks.matrix_factorization import LowRankMatrixFactorizationTask, RatingExample
from .base import BaselineResult


def train_batch_matrix_factorization(
    task: LowRankMatrixFactorizationTask,
    examples: Sequence[RatingExample],
    *,
    step_size: float = 0.001,
    iterations: int = 50,
    seed: int | None = 0,
    charge_per_tuple: Callable[[], object] | None = None,
) -> BaselineResult:
    """Full-batch gradient descent on the observed-entry squared error."""
    rng = np.random.default_rng(seed)
    left = rng.normal(scale=0.1, size=(task.num_rows, task.rank))
    right = rng.normal(scale=0.1, size=(task.num_cols, task.rank))
    history: list[EpochRecord] = []
    total_start = time.perf_counter()

    for iteration in range(iterations):
        start = time.perf_counter()
        grad_left = task.mu * left.copy()
        grad_right = task.mu * right.copy()
        for example in examples:
            if charge_per_tuple is not None:
                charge_per_tuple()
            li = left[example.row]
            rj = right[example.col]
            residual = float(np.dot(li, rj)) - example.value
            grad_left[example.row] += residual * rj
            grad_right[example.col] += residual * li
        left -= step_size * grad_left
        right -= step_size * grad_right

        model = Model({"L": left.copy(), "R": right.copy()})
        objective = task.full_objective(model, examples)
        history.append(
            EpochRecord(
                epoch=iteration,
                objective=objective,
                elapsed_seconds=time.perf_counter() - start,
                gradient_steps=(iteration + 1) * len(examples),
                model_norm=model.norm(),
            )
        )

    return BaselineResult(
        model=Model({"L": left, "R": right}),
        history=history,
        total_seconds=time.perf_counter() - total_start,
        name="batch_mf",
    )
