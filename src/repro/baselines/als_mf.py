"""Alternating least squares (ALS) matrix factorisation baseline.

Stands in for the matrix-factorisation implementations in MADlib and the
commercial tools the paper compares against.  Each ALS iteration solves a
ridge-regularised least-squares system per row and per column — super-linear
work per pass compared to the LMF task's single SGD step per observed entry,
which is why the paper reports Bismarck being orders of magnitude faster on
this task.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Callable, Sequence

import numpy as np

from ..core.convergence import EpochRecord
from ..core.model import Model
from ..tasks.matrix_factorization import LowRankMatrixFactorizationTask, RatingExample
from .base import BaselineResult


def train_als_matrix_factorization(
    task: LowRankMatrixFactorizationTask,
    examples: Sequence[RatingExample],
    *,
    iterations: int = 20,
    ridge: float | None = None,
    seed: int | None = 0,
    charge_per_tuple: Callable[[], object] | None = None,
) -> BaselineResult:
    """Factorise the observed entries with alternating least squares."""
    ridge = task.mu if ridge is None else ridge
    rng = np.random.default_rng(seed)
    rank = task.rank
    left = rng.normal(scale=0.1, size=(task.num_rows, rank))
    right = rng.normal(scale=0.1, size=(task.num_cols, rank))

    by_row: dict[int, list[RatingExample]] = defaultdict(list)
    by_col: dict[int, list[RatingExample]] = defaultdict(list)
    for example in examples:
        by_row[example.row].append(example)
        by_col[example.col].append(example)

    history: list[EpochRecord] = []
    total_start = time.perf_counter()
    eye = np.eye(rank)

    for iteration in range(iterations):
        start = time.perf_counter()
        if charge_per_tuple is not None:
            # ALS scans every observed entry twice per iteration (row pass and
            # column pass) through the engine.
            for _ in range(2 * len(examples)):
                charge_per_tuple()
        # Solve for every row factor with column factors fixed.
        for row, observed in by_row.items():
            design = np.stack([right[example.col] for example in observed])
            targets = np.array([example.value for example in observed])
            gram = design.T @ design + (ridge * len(observed) + 1e-9) * eye
            left[row] = np.linalg.solve(gram, design.T @ targets)
        # Solve for every column factor with row factors fixed.
        for col, observed in by_col.items():
            design = np.stack([left[example.row] for example in observed])
            targets = np.array([example.value for example in observed])
            gram = design.T @ design + (ridge * len(observed) + 1e-9) * eye
            right[col] = np.linalg.solve(gram, design.T @ targets)

        model = Model({"L": left.copy(), "R": right.copy()})
        objective = task.full_objective(model, examples)
        history.append(
            EpochRecord(
                epoch=iteration,
                objective=objective,
                elapsed_seconds=time.perf_counter() - start,
                gradient_steps=(iteration + 1) * len(examples),
                model_norm=model.norm(),
            )
        )

    return BaselineResult(
        model=Model({"L": left, "R": right}),
        history=history,
        total_seconds=time.perf_counter() - total_start,
        name="als_mf",
    )
