"""Batch CRF trainer — the CRF++ / Mallet analogue for Figure 7(B).

CRF++ and Mallet train linear-chain CRFs with batch quasi-Newton methods:
every iteration runs forward–backward over the entire corpus before updating
the weights once.  We model that cost profile with full-batch gradient descent
(with a simple adaptive step), which reproduces the qualitative comparison of
Figure 7(B): the batch tool needs whole-corpus passes per update, while
Bismarck's IGD updates after every sequence.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from ..core.convergence import EpochRecord
from ..core.model import Model
from ..tasks.crf import ConditionalRandomFieldTask, SequenceExample
from .base import BaselineResult


def train_batch_crf(
    task: ConditionalRandomFieldTask,
    examples: Sequence[SequenceExample],
    *,
    step_size: float = 0.5,
    iterations: int = 50,
    step_decay: float = 0.98,
    charge_per_tuple: Callable[[], object] | None = None,
) -> BaselineResult:
    """Full-batch gradient descent on the CRF negative log-likelihood."""
    model = task.initial_model()
    history: list[EpochRecord] = []
    total_start = time.perf_counter()
    alpha = step_size
    num_examples = max(1, len(examples))

    for iteration in range(iterations):
        start = time.perf_counter()
        # Accumulate an approximate full-batch gradient by applying unit-step
        # IGD updates to a scratch copy and averaging the resulting
        # displacement; each CRF step is an "+ alpha * (empirical - expected)"
        # update, so the averaged displacement tracks the batch direction.
        scratch = model.copy()
        for example in examples:
            if charge_per_tuple is not None:
                charge_per_tuple()
            task.gradient_step(scratch, example, 1.0)
        direction = {
            name: (scratch[name] - model[name]) / num_examples for name, _ in model.items()
        }
        for name, array in model.items():
            array += alpha * direction[name]
        alpha *= step_decay

        objective = task.total_loss(model, examples)
        history.append(
            EpochRecord(
                epoch=iteration,
                objective=objective,
                elapsed_seconds=time.perf_counter() - start,
                gradient_steps=(iteration + 1) * len(examples),
                model_norm=model.norm(),
            )
        )

    return BaselineResult(
        model=model,
        history=history,
        total_seconds=time.perf_counter() - total_start,
        name="batch_crf",
    )
