"""Baseline trainers modelling the 'native' analytics tools of the paper."""

from .als_mf import train_als_matrix_factorization
from .base import BaselineResult
from .batch_gd import train_batch_gradient_descent
from .crf_batch import train_batch_crf
from .mf_batch import train_batch_matrix_factorization
from .newton_lr import train_newton_logistic_regression
from .svm_batch import train_batch_svm

__all__ = [
    "BaselineResult",
    "train_als_matrix_factorization",
    "train_batch_crf",
    "train_batch_gradient_descent",
    "train_batch_matrix_factorization",
    "train_batch_svm",
    "train_newton_logistic_regression",
]
