"""IRLS / Newton logistic regression — the MADlib-style LR baseline.

MADlib's logistic regression (and the commercial tools' equivalents) use
iteratively reweighted least squares implemented as an in-database aggregate:
every iteration scans the data once and, **per tuple**, accumulates the
gradient and the d x d Hessian contribution ``p(1-p) * x x^T`` before solving
a d x d system.  The per-iteration cost is therefore O(N d^2 + d^3) — super-
linear in the dimension, which is exactly the reason the paper gives for
Bismarck's speed advantage on LR ("the algorithms in MADlib for LR are
super-linear in the dimension").

``charge_per_tuple`` lets the comparison harness charge the engine's per-tuple
scan cost for every tuple the baseline touches, so Bismarck and the baseline
are measured against the same in-RDBMS substrate.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from ..core.convergence import EpochRecord
from ..core.model import Model
from ..tasks.base import SupervisedExample
from ..tasks.logistic_regression import LogisticRegressionTask
from .base import BaselineResult


def _densify(features, dimension: int) -> np.ndarray:
    if isinstance(features, dict):
        dense = np.zeros(dimension)
        for index, value in features.items():
            dense[index] = value
        return dense
    return np.asarray(features, dtype=np.float64)


def train_newton_logistic_regression(
    examples: Sequence[SupervisedExample],
    dimension: int,
    *,
    iterations: int = 25,
    ridge: float = 1e-6,
    tolerance: float = 1e-8,
    charge_per_tuple: Callable[[], object] | None = None,
) -> BaselineResult:
    """Train LR by Newton/IRLS iterations with per-tuple scan accounting."""
    task = LogisticRegressionTask(dimension)
    weights = np.zeros(dimension)
    history: list[EpochRecord] = []
    total_start = time.perf_counter()

    # The modelled in-RDBMS cost of IRLS is the per-tuple scan (charged below,
    # once per tuple per iteration) plus the O(N d^2 + d^3) arithmetic; the
    # arithmetic itself is batched here so the harness measures the modelled
    # engine cost rather than Python loop overhead.
    if examples:
        features_matrix = np.stack(
            [_densify(example.features, dimension) for example in examples]
        )
    else:
        features_matrix = np.zeros((0, dimension))
    labels = np.fromiter(
        (example.label for example in examples), dtype=np.float64, count=len(examples)
    )

    for iteration in range(iterations):
        start = time.perf_counter()
        # One scan of the data; per tuple: O(d) for the gradient, O(d^2) for
        # the Hessian rank-one update (the MADlib IRLS transition function).
        if charge_per_tuple is not None:
            for _ in range(len(examples)):
                charge_per_tuple()
        margins = labels * (features_matrix @ weights)
        probabilities = 1.0 / (1.0 + np.exp(np.clip(margins, -35, 35)))
        gradient = -(labels * probabilities) @ features_matrix
        hessian_weights = probabilities * (1.0 - probabilities)
        hessian = ridge * np.eye(dimension) + features_matrix.T @ (
            hessian_weights[:, None] * features_matrix
        )
        try:
            step = np.linalg.solve(hessian, gradient)
        except np.linalg.LinAlgError:
            step = np.linalg.lstsq(hessian, gradient, rcond=None)[0]
        weights = weights - step

        model = Model({"w": weights.copy()})
        objective = task.total_loss(model, examples)
        history.append(
            EpochRecord(
                epoch=iteration,
                objective=objective,
                elapsed_seconds=time.perf_counter() - start,
                gradient_steps=(iteration + 1) * len(examples),
                model_norm=float(np.linalg.norm(weights)),
            )
        )
        if float(np.linalg.norm(step)) < tolerance:
            break

    return BaselineResult(
        model=Model({"w": weights}),
        history=history,
        total_seconds=time.perf_counter() - total_start,
        name="newton_lr",
    )
