"""Full-batch (sub)gradient descent baseline.

A traditional gradient method must touch every data item to take a single
step (Section 2.2 of the paper).  This baseline implements that behaviour for
any linear-model task (LR, SVM, least squares, lasso): each iteration computes
the full-batch gradient and takes one step, so its per-iteration cost equals a
whole IGD epoch while making far less progress per pass.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from ..core.convergence import EpochRecord
from ..core.model import Model
from ..tasks.base import LinearModelTask, SupervisedExample, dot_product, scale_and_add
from ..tasks.logistic_regression import LogisticRegressionTask, sigmoid
from ..tasks.svm import SVMTask
from .base import BaselineResult


def _batch_gradient(
    task: LinearModelTask, weights: np.ndarray, examples: Sequence[SupervisedExample]
) -> np.ndarray:
    """Analytic full-batch (sub)gradient for the supported linear-model tasks."""
    gradient = np.zeros_like(weights)
    if isinstance(task, LogisticRegressionTask):
        for example in examples:
            wx = dot_product(weights, example.features)
            coefficient = -example.label * sigmoid(-wx * example.label)
            scale_and_add(gradient, example.features, coefficient)
        return gradient
    if isinstance(task, SVMTask):
        for example in examples:
            wx = dot_product(weights, example.features)
            if 1.0 - wx * example.label > 0:
                scale_and_add(gradient, example.features, -example.label)
        return gradient
    # Least-squares family (LinearRegressionTask, LassoTask, 1-D variant).
    for example in examples:
        residual = dot_product(weights, example.features) - example.label
        scale_and_add(gradient, example.features, residual)
    return gradient


def train_batch_gradient_descent(
    task: LinearModelTask,
    examples: Sequence[SupervisedExample],
    *,
    step_size: float = 0.01,
    iterations: int = 100,
    step_decay: float = 1.0,
    charge_per_tuple: Callable[[], object] | None = None,
) -> BaselineResult:
    """Train a linear-model task with full-batch gradient descent."""
    if not isinstance(task, LinearModelTask):
        raise TypeError("batch gradient descent baseline supports linear-model tasks only")
    model = task.initial_model()
    weights = model["w"]
    history: list[EpochRecord] = []
    total_start = time.perf_counter()
    alpha = step_size

    for iteration in range(iterations):
        start = time.perf_counter()
        if charge_per_tuple is not None:
            for _ in range(len(examples)):
                charge_per_tuple()
        gradient = _batch_gradient(task, weights, examples)
        weights -= alpha * gradient
        task.proximal.apply(model, alpha)
        alpha *= step_decay

        objective = task.total_loss(model, examples) + task.proximal.penalty(model)
        history.append(
            EpochRecord(
                epoch=iteration,
                objective=objective,
                elapsed_seconds=time.perf_counter() - start,
                gradient_steps=(iteration + 1) * len(examples),
                model_norm=float(np.linalg.norm(weights)),
            )
        )

    return BaselineResult(
        model=model,
        history=history,
        total_seconds=time.perf_counter() - total_start,
        name=f"batch_gd[{task.name}]",
    )
