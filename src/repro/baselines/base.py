"""Common result type and helpers for the baseline ("native tool") trainers.

The baselines stand in for the native analytics tools the paper compares
against (MADlib over PostgreSQL, the built-in tools of DBMS A and DBMS B, and
in-memory tools like CRF++/Mallet).  Each baseline reports the same per-
iteration history Bismarck reports so the Figure-7 style comparisons can
measure time-to-tolerance uniformly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.convergence import EpochRecord
from ..core.model import Model


@dataclass
class BaselineResult:
    """Outcome of a baseline training run."""

    model: Model
    history: list[EpochRecord] = field(default_factory=list)
    total_seconds: float = 0.0
    name: str = "baseline"

    @property
    def iterations(self) -> int:
        return len(self.history)

    @property
    def final_objective(self) -> float:
        return self.history[-1].objective if self.history else float("nan")

    def objective_trace(self) -> list[float]:
        return [record.objective for record in self.history]

    def time_trace(self) -> list[float]:
        cumulative = 0.0
        trace = []
        for record in self.history:
            cumulative += record.elapsed_seconds
            trace.append(cumulative)
        return trace

    def time_to_reach(self, target_objective: float) -> float | None:
        cumulative = 0.0
        for record in self.history:
            cumulative += record.elapsed_seconds
            if record.objective <= target_objective:
                return cumulative
        return None


class Timer:
    """Tiny context helper for per-iteration timing."""

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self.start
