"""Batch subgradient SVM baseline (native-tool analogue for classification).

Commercial in-database SVM tools (e.g. Oracle's SVM [Milenova et al.]) solve
the full problem with batch solvers; we model them with full-batch subgradient
descent over the hinge loss, whose per-iteration cost is one pass over the
data for a single parameter update.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from ..core.convergence import EpochRecord
from ..core.model import Model
from ..tasks.base import SupervisedExample, dot_product, scale_and_add
from ..tasks.svm import SVMTask
from .base import BaselineResult


def train_batch_svm(
    task: SVMTask,
    examples: Sequence[SupervisedExample],
    *,
    step_size: float = 0.01,
    iterations: int = 100,
    step_decay: float = 0.99,
    charge_per_tuple: Callable[[], object] | None = None,
) -> BaselineResult:
    """Full-batch subgradient descent on the hinge loss.

    ``charge_per_tuple`` is called once per tuple per iteration so the
    comparison harness can charge the engine's scan cost (the native tool runs
    inside the same RDBMS).
    """
    model = task.initial_model()
    weights = model["w"]
    history: list[EpochRecord] = []
    total_start = time.perf_counter()
    alpha = step_size

    for iteration in range(iterations):
        start = time.perf_counter()
        gradient = np.zeros_like(weights)
        for example in examples:
            if charge_per_tuple is not None:
                charge_per_tuple()
            wx = dot_product(weights, example.features)
            if 1.0 - wx * example.label > 0:
                scale_and_add(gradient, example.features, -example.label)
        weights -= alpha * gradient
        task.proximal.apply(model, alpha)
        alpha *= step_decay

        objective = task.total_loss(model, examples) + task.proximal.penalty(model)
        history.append(
            EpochRecord(
                epoch=iteration,
                objective=objective,
                elapsed_seconds=time.perf_counter() - start,
                gradient_steps=(iteration + 1) * len(examples),
                model_norm=float(np.linalg.norm(weights)),
            )
        )

    return BaselineResult(
        model=model,
        history=history,
        total_seconds=time.perf_counter() - total_start,
        name="batch_svm",
    )
