"""Experiment E7 — Table 4: scalability of the tools to larger datasets.

The paper's Table 4 records, for the large datasets (Classify300M, Matrix5B,
DBLP), whether each tool *completes the task* within 48 hours.  We reproduce
the shape of that experiment at laptop scale:

* Bismarck trains each task on the scaled-up generated dataset to a tolerance
  band around its own best objective, recording its wall-clock time;
* the corresponding baseline ("native tool" analogue) is then given a
  wall-clock budget of ``budget_multiplier`` times Bismarck's time — the
  analogue of the paper's fixed 48-hour wall, which Bismarck fits comfortably
  and several native/in-memory tools do not;
* a tool "completes" if it reaches the same quality band within its budget.

Expected shape: Bismarck completes every task; the batch baselines fail on the
complex tasks (LMF, CRF) and possibly SVM, as in the paper's check/X pattern.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..baselines import (
    train_batch_crf,
    train_batch_matrix_factorization,
    train_batch_svm,
    train_newton_logistic_regression,
)
from ..core.driver import IGDConfig, train
from ..db.engine import Database
from ..data import (
    load_classification_table,
    load_ratings_table,
    load_sequences_table,
    make_large_ratings,
    make_large_sequences,
    make_scalability_classification,
)
from ..db.process_backend import available_cores
from ..tasks.crf import ConditionalRandomFieldTask
from ..tasks.logistic_regression import LogisticRegressionTask
from ..tasks.matrix_factorization import LowRankMatrixFactorizationTask
from ..tasks.svm import SVMTask
from .harness import ExperimentScale, evaluate_model, resolve_scale, tolerance_target
from .reporting import render_table


@dataclass(frozen=True)
class ScalabilityRow:
    """One (task, system) scalability verdict."""

    task: str
    system: str
    seconds: float
    budget_seconds: float
    completes: bool

    def as_row(self) -> tuple:
        return (
            self.task,
            self.system,
            f"{self.seconds:.3f}s",
            f"{self.budget_seconds:.3f}s",
            "yes" if self.completes else "NO",
        )


@dataclass
class ScalabilityResult:
    """Table 4: completion verdicts for Bismarck and the baselines."""

    rows: list[ScalabilityRow] = field(default_factory=list)

    def render(self) -> str:
        return render_table(
            ["Task", "System", "Time used", "Budget", "Completes"],
            [row.as_row() for row in self.rows],
            title="Table 4 (reproduction): scalability to the large datasets",
        )

    def verdict(self, task: str, system: str) -> bool:
        for row in self.rows:
            if row.task == task and row.system == system:
                return row.completes
        raise KeyError(f"no scalability row for ({task}, {system})")


def _baseline_within_budget(run_iteration, target: float, budget_seconds: float,
                            max_iterations: int = 200) -> tuple[float, bool]:
    """Run baseline iterations until the target, the budget, or the cap is hit.

    ``run_iteration`` is a callable performing one full baseline iteration and
    returning the current objective value.
    """
    start = time.perf_counter()
    for _ in range(max_iterations):
        objective = run_iteration()
        elapsed = time.perf_counter() - start
        if objective <= target:
            return elapsed, True
        if elapsed >= budget_seconds:
            return elapsed, False
    return time.perf_counter() - start, False


def run_scalability_experiment(
    scale: ExperimentScale | str | None = None,
    *,
    budget_multiplier: float = 3.0,
    tolerance: float = 0.10,
    seed: int = 0,
) -> ScalabilityResult:
    """Regenerate Table 4 at laptop scale."""
    scale = resolve_scale(scale)
    result = ScalabilityResult()
    epochs = max(scale.max_epochs, 12)

    def bismarck_run(task, database, table, step_size):
        start = time.perf_counter()
        outcome = train(
            task,
            database,
            table,
            config=IGDConfig(step_size=step_size, max_epochs=epochs,
                             ordering="shuffle_once", seed=seed),
        )
        return outcome, time.perf_counter() - start

    # ------------------------------------------------------------- LR / SVM
    classify = make_scalability_classification(scale.scalability_examples, seed=seed)
    database = Database("postgres", seed=seed)
    charge = database.executor._charge_overhead
    load_classification_table(database, "classify_large", classify.examples, sparse=False)
    step_size = {"kind": "epoch_decay", "alpha0": 0.05, "decay": 0.9}

    lr_task = LogisticRegressionTask(classify.dimension)
    lr_result, lr_seconds = bismarck_run(lr_task, database, "classify_large", step_size)
    lr_target = tolerance_target(min(lr_result.objective_trace()), tolerance)
    budget = budget_multiplier * lr_seconds
    result.rows.append(
        ScalabilityRow("LR", "bismarck", lr_seconds, budget, True)
    )

    # Newton converges in very few iterations; give it a short full run and
    # compare its wall-clock against the budget directly.
    start = time.perf_counter()
    newton = train_newton_logistic_regression(
        classify.examples, classify.dimension, iterations=6, charge_per_tuple=charge
    )
    newton_seconds = time.perf_counter() - start
    newton_completes = (
        newton_seconds <= budget and min(newton.objective_trace()) <= lr_target * 1.5
    )
    result.rows.append(
        ScalabilityRow("LR", "native_baseline", newton_seconds, budget, newton_completes)
    )

    svm_task = SVMTask(classify.dimension)
    svm_result, svm_seconds = bismarck_run(svm_task, database, "classify_large", step_size)
    svm_target = tolerance_target(min(svm_result.objective_trace()), tolerance)
    svm_budget = budget_multiplier * svm_seconds
    result.rows.append(ScalabilityRow("SVM", "bismarck", svm_seconds, svm_budget, True))

    # Batch subgradient SVM: run iterations until the target, the budget, or a
    # hard cap is reached (each "iteration" is one full pass over the data).
    # The per-iteration objective check is an engine loss *pass* — compiled
    # through the pass-plan layer and fanned out over the process backend when
    # the host has the cores for it — not an ad-hoc in-memory sum.
    from ..tasks.base import dot_product, scale_and_add
    import numpy as np

    eval_cores = available_cores()
    eval_backend = "process" if eval_cores >= 2 else "in_process"
    svm_baseline_task = SVMTask(classify.dimension)
    svm_weights = svm_baseline_task.initial_model()
    alpha = 0.005
    start = time.perf_counter()
    svm_completes = False
    svm_elapsed = 0.0
    for _ in range(200):
        gradient = np.zeros(classify.dimension)
        for example in classify.examples:
            charge()
            if 1.0 - dot_product(svm_weights["w"], example.features) * example.label > 0:
                scale_and_add(gradient, example.features, -example.label)
        svm_weights["w"][...] -= alpha * gradient
        alpha *= 0.99
        objective = evaluate_model(
            database, "classify_large", svm_baseline_task, svm_weights,
            kind="loss", workers=eval_cores, backend=eval_backend,
        )
        svm_elapsed = time.perf_counter() - start
        if objective <= svm_target:
            svm_completes = True
            break
        if svm_elapsed >= svm_budget:
            break
    result.rows.append(
        ScalabilityRow("SVM", "native_baseline", svm_elapsed, svm_budget, svm_completes)
    )

    # --------------------------------------------------------------- LMF
    ratings = make_large_ratings(
        num_rows=max(400, scale.rating_rows * 4),
        num_cols=max(400, scale.rating_cols * 4),
        num_ratings=scale.num_ratings * 4,
        seed=seed,
    )
    mf_db = Database("postgres", seed=seed)
    mf_charge = mf_db.executor._charge_overhead
    load_ratings_table(mf_db, "matrix_large", ratings.examples)
    mf_task = LowRankMatrixFactorizationTask(ratings.num_rows, ratings.num_cols, rank=10, mu=0.01)
    mf_result, mf_seconds = bismarck_run(mf_task, mf_db, "matrix_large", 0.05)
    mf_target = tolerance_target(min(mf_result.objective_trace()), tolerance)
    mf_budget = budget_multiplier * mf_seconds
    result.rows.append(ScalabilityRow("LMF", "bismarck", mf_seconds, mf_budget, True))

    # Batch-gradient matrix factorisation, iterated until target/budget/cap.
    import numpy as np

    baseline_mf_task = LowRankMatrixFactorizationTask(
        ratings.num_rows, ratings.num_cols, rank=10, mu=0.01
    )
    mf_rng = np.random.default_rng(seed)
    left = mf_rng.normal(scale=0.1, size=(ratings.num_rows, 10))
    right = mf_rng.normal(scale=0.1, size=(ratings.num_cols, 10))
    start = time.perf_counter()
    completed = False
    elapsed = 0.0
    for _ in range(60):
        grad_left = baseline_mf_task.mu * left.copy()
        grad_right = baseline_mf_task.mu * right.copy()
        for example in ratings.examples:
            mf_charge()
            li = left[example.row]
            rj = right[example.col]
            residual = float(np.dot(li, rj)) - example.value
            grad_left[example.row] += residual * rj
            grad_right[example.col] += residual * li
        left -= 0.001 * grad_left
        right -= 0.001 * grad_right
        from ..core.model import Model

        objective = baseline_mf_task.full_objective(
            Model({"L": left, "R": right}), ratings.examples
        )
        elapsed = time.perf_counter() - start
        if objective <= mf_target:
            completed = True
            break
        if elapsed >= mf_budget:
            break
    result.rows.append(
        ScalabilityRow("LMF", "native_baseline", elapsed, mf_budget, completed)
    )

    # --------------------------------------------------------------- CRF
    corpus = make_large_sequences(
        num_sequences=scale.num_sequences * 3, num_labels=scale.sequence_labels + 1, seed=seed
    )
    crf_db = Database("postgres", seed=seed)
    crf_charge = crf_db.executor._charge_overhead
    load_sequences_table(crf_db, "dblp_like", corpus.examples)
    crf_task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
    crf_result, crf_seconds = bismarck_run(
        crf_task, crf_db, "dblp_like", {"kind": "epoch_decay", "alpha0": 0.2, "decay": 0.9}
    )
    crf_target = tolerance_target(min(crf_result.objective_trace()), tolerance)
    crf_budget = budget_multiplier * crf_seconds
    result.rows.append(ScalabilityRow("CRF", "bismarck", crf_seconds, crf_budget, True))

    start = time.perf_counter()
    crf_baseline = train_batch_crf(
        ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels),
        corpus.examples,
        step_size=0.5,
        iterations=max(4, int(budget_multiplier * epochs // 4)),
        charge_per_tuple=crf_charge,
    )
    crf_elapsed = time.perf_counter() - start
    crf_completes = (
        crf_elapsed <= crf_budget and min(crf_baseline.objective_trace()) <= crf_target
    )
    result.rows.append(
        ScalabilityRow("CRF", "in_memory_baseline", crf_elapsed, crf_budget, crf_completes)
    )
    # Deterministic teardown: reap worker pools and arena segments now, not
    # at interpreter exit.
    for engine in (database, mf_db, crf_db):
        engine.close()
    return result
