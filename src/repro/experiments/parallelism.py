"""Experiments E9/E10 — Figure 9: parallelising the IGD aggregate.

Figure 9(A): objective vs. epochs for the pure-UDA (model-averaging) scheme
against the shared-memory schemes (Lock, AIG, NoLock) on the CRF workload with
8 workers/segments.  The expected shape: model averaging converges worse per
epoch; Lock, AIG and NoLock are nearly identical.

Figure 9(B): speed-up of the per-epoch gradient computation against the
number of workers.  The serial per-epoch time is measured on the substrate;
the parallel times come from the calibrated cost model in
:func:`repro.core.parallel.modeled_speedup` (this substitution is documented
in DESIGN.md / EXPERIMENTS.md — single-process Python cannot exhibit real
multicore scaling).  Expected shape: NoLock >= AIG >> pure UDA > Lock (~1x).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.driver import IGDConfig, train
from ..core.parallel import PureUDAParallelism, SharedMemoryParallelism, modeled_speedup
from ..db.engine import DBMS_B, Database
from ..db.parallel import SegmentedDatabase
from ..data import load_sequences_table, make_sequences
from ..tasks.crf import ConditionalRandomFieldTask
from .harness import ExperimentScale, resolve_scale
from .reporting import render_series, render_table

SCHEMES = ("pure_uda", "lock", "aig", "nolock")


@dataclass
class ParallelConvergenceResult:
    """Figure 9(A): per-scheme objective traces."""

    traces: dict[str, list[float]] = field(default_factory=dict)
    workers: int = 8

    def render(self) -> str:
        lines = [f"Figure 9A (reproduction): parallel IGD convergence ({self.workers} workers)"]
        for scheme, trace in self.traces.items():
            lines.append(render_series(scheme, list(range(1, len(trace) + 1)), trace))
        return "\n".join(lines)

    def final_objective(self, scheme: str) -> float:
        return self.traces[scheme][-1]


def run_parallel_convergence(
    scale: ExperimentScale | str | None = None,
    *,
    workers: int = 8,
    max_epochs: int | None = None,
) -> ParallelConvergenceResult:
    """Regenerate Figure 9(A) on the CRF (CoNLL-like) workload."""
    scale = resolve_scale(scale)
    epochs = max_epochs or max(6, scale.max_epochs // 2)
    corpus = make_sequences(scale.num_sequences, num_labels=scale.sequence_labels, seed=5)
    step_size = {"kind": "epoch_decay", "alpha0": 0.2, "decay": 0.9}

    result = ParallelConvergenceResult(workers=workers)

    # Pure UDA: shared-nothing segments merged by model averaging.
    segmented = SegmentedDatabase(workers, DBMS_B, seed=0)
    load_sequences_table(segmented, "conll_like", corpus.examples)
    task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
    pure = train(
        task,
        segmented,
        "conll_like",
        config=IGDConfig(
            step_size=step_size,
            max_epochs=epochs,
            ordering="shuffle_once",
            parallelism=PureUDAParallelism(),
            seed=0,
        ),
    )
    result.traces["pure_uda"] = pure.objective_trace()

    # Shared-memory variants.
    for scheme in ("lock", "aig", "nolock"):
        database = Database("postgres", seed=0)
        load_sequences_table(database, "conll_like", corpus.examples)
        run = train(
            ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels),
            database,
            "conll_like",
            config=IGDConfig(
                step_size=step_size,
                max_epochs=epochs,
                ordering="shuffle_once",
                parallelism=SharedMemoryParallelism(scheme=scheme, workers=workers),
                seed=0,
            ),
        )
        result.traces[scheme] = run.objective_trace()
    return result


# ---------------------------------------------------------------------------
# Figure 9(B): speed-up vs number of workers
# ---------------------------------------------------------------------------
@dataclass
class SpeedupResult:
    """Figure 9(B): modelled speed-up per scheme and worker count."""

    serial_epoch_seconds: float
    worker_counts: list[int] = field(default_factory=list)
    speedups: dict[str, list[float]] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["Workers"] + list(self.speedups)
        rows = []
        for i, workers in enumerate(self.worker_counts):
            rows.append(
                [workers] + [f"{self.speedups[s][i]:.2f}x" for s in self.speedups]
            )
        return render_table(
            headers,
            rows,
            title=(
                "Figure 9B (reproduction): per-epoch speed-up vs workers "
                f"(serial epoch = {self.serial_epoch_seconds:.3f}s)"
            ),
        )

    def speedup(self, scheme: str, workers: int) -> float:
        index = self.worker_counts.index(workers)
        return self.speedups[scheme][index]


def run_speedup_experiment(
    scale: ExperimentScale | str | None = None,
    *,
    max_workers: int = 8,
    model_passing_cost: float = 5.0,
) -> SpeedupResult:
    """Regenerate Figure 9(B).

    The serial per-epoch gradient time is measured by running one real epoch of
    the CRF task on the substrate; the per-scheme parallel times come from the
    calibrated analytic model (see module docstring).
    """
    scale = resolve_scale(scale)
    corpus = make_sequences(scale.num_sequences, num_labels=scale.sequence_labels, seed=5)
    database = Database("postgres", seed=0)
    load_sequences_table(database, "conll_like", corpus.examples)
    task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)

    start = time.perf_counter()
    train(
        task,
        database,
        "conll_like",
        config=IGDConfig(
            step_size=0.2, max_epochs=1, ordering="clustered", seed=0, compute_objective=False
        ),
    )
    serial_seconds = time.perf_counter() - start

    model_parameters = task.initial_model().num_parameters
    result = SpeedupResult(serial_epoch_seconds=serial_seconds)
    result.worker_counts = list(range(1, max_workers + 1))
    for scheme in SCHEMES:
        result.speedups[scheme] = [
            modeled_speedup(
                serial_seconds,
                scheme,
                workers,
                model_passing_cost=model_passing_cost,
                model_parameters=model_parameters,
            )
            for workers in result.worker_counts
        ]
    return result
