"""Experiments E9/E10 — Figure 9: parallelising the IGD aggregate.

Figure 9(A): objective vs. epochs for the pure-UDA (model-averaging) scheme
against the shared-memory schemes (Lock, AIG, NoLock) on the CRF workload with
8 workers/segments.  The expected shape: model averaging converges worse per
epoch; Lock, AIG and NoLock are nearly identical.  This experiment keeps the
deterministic cooperative simulation — it is about *convergence*, and the
simulated interleaving makes the traces reproducible.

Figure 9(B): speed-up of the per-epoch gradient computation against the
number of workers, on the scalability classification dataset.  With two or
more cores available this is **measured** wall-clock: each scheme runs real
epochs on the multi-process backend (:mod:`repro.db.process_backend` —
worker processes racing on the mmap-shared model for lock/AIG/NoLock, real
per-segment processes merged by model averaging for the pure UDA) and the
speed-up is the ratio of measured per-epoch times.  On a single-core host the
experiment falls back to the calibrated analytic model
(:func:`repro.core.parallel.modeled_speedup`) and **labels the result as
modelled** — one core cannot exhibit multicore scaling, measured or
otherwise.  ``REPRO_FIG9B_MODE`` (``auto``/``measured``/``modeled``)
overrides the choice.  Expected shape either way:
NoLock >= AIG >> pure UDA > Lock (~1x).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.driver import IGDConfig, train
from ..core.parallel import PureUDAParallelism, SharedMemoryParallelism, modeled_speedup
from ..db.engine import DBMS_B, Database
from ..db.parallel import SegmentedDatabase
from ..db.process_backend import available_cores, resolve_payload_transport
from ..data import (
    load_classification_table,
    load_sequences_table,
    make_scalability_classification,
    make_sequences,
)
from ..tasks.crf import ConditionalRandomFieldTask
from ..tasks.logistic_regression import LogisticRegressionTask
from .harness import ExperimentScale, evaluate_model, resolve_scale
from .reporting import render_series, render_table

SCHEMES = ("pure_uda", "lock", "aig", "nolock")


@dataclass
class ParallelConvergenceResult:
    """Figure 9(A): per-scheme objective traces."""

    traces: dict[str, list[float]] = field(default_factory=dict)
    workers: int = 8

    def render(self) -> str:
        lines = [f"Figure 9A (reproduction): parallel IGD convergence ({self.workers} workers)"]
        for scheme, trace in self.traces.items():
            lines.append(render_series(scheme, list(range(1, len(trace) + 1)), trace))
        return "\n".join(lines)

    def final_objective(self, scheme: str) -> float:
        return self.traces[scheme][-1]


def run_parallel_convergence(
    scale: ExperimentScale | str | None = None,
    *,
    workers: int = 8,
    max_epochs: int | None = None,
) -> ParallelConvergenceResult:
    """Regenerate Figure 9(A) on the CRF (CoNLL-like) workload."""
    scale = resolve_scale(scale)
    epochs = max_epochs or max(6, scale.max_epochs // 2)
    corpus = make_sequences(scale.num_sequences, num_labels=scale.sequence_labels, seed=5)
    step_size = {"kind": "epoch_decay", "alpha0": 0.2, "decay": 0.9}

    result = ParallelConvergenceResult(workers=workers)

    # Pure UDA: shared-nothing segments merged by model averaging.
    segmented = SegmentedDatabase(workers, DBMS_B, seed=0)
    load_sequences_table(segmented, "conll_like", corpus.examples)
    task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
    pure = train(
        task,
        segmented,
        "conll_like",
        config=IGDConfig(
            step_size=step_size,
            max_epochs=epochs,
            ordering="shuffle_once",
            parallelism=PureUDAParallelism(),
            seed=0,
        ),
    )
    result.traces["pure_uda"] = pure.objective_trace()

    # Shared-memory variants.
    for scheme in ("lock", "aig", "nolock"):
        database = Database("postgres", seed=0)
        load_sequences_table(database, "conll_like", corpus.examples)
        run = train(
            ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels),
            database,
            "conll_like",
            config=IGDConfig(
                step_size=step_size,
                max_epochs=epochs,
                ordering="shuffle_once",
                parallelism=SharedMemoryParallelism(scheme=scheme, workers=workers),
                seed=0,
            ),
        )
        result.traces[scheme] = run.objective_trace()
    return result


# ---------------------------------------------------------------------------
# Figure 9(B): speed-up vs number of workers
# ---------------------------------------------------------------------------
@dataclass
class SpeedupResult:
    """Figure 9(B): per-scheme speed-up per worker count.

    ``mode`` records provenance: ``"measured"`` means real multi-process
    wall-clock ratios from the process backend; ``"modeled"`` means the
    labelled analytic fallback (single-core hosts).
    """

    serial_epoch_seconds: float
    worker_counts: list[int] = field(default_factory=list)
    speedups: dict[str, list[float]] = field(default_factory=dict)
    mode: str = "modeled"
    cores: int = 1
    dataset: str = "classify_large"
    #: Measured per-epoch seconds per scheme (measured mode only).
    epoch_seconds: dict[str, list[float]] = field(default_factory=dict)
    #: Payload transport the worker pools used ("auto"/"pages"/"pickle") and
    #: the kernels' compute dtype — provenance for cross-snapshot comparisons.
    transport: str = "auto"
    compute_dtype: str = "float64"

    def render(self) -> str:
        headers = ["Workers"] + list(self.speedups)
        rows = []
        for i, workers in enumerate(self.worker_counts):
            rows.append(
                [workers] + [f"{self.speedups[s][i]:.2f}x" for s in self.speedups]
            )
        if self.mode == "measured":
            provenance = f"measured wall-clock, {self.cores} cores"
        else:
            provenance = f"MODELED analytic fallback, {self.cores} core(s)"
        return render_table(
            headers,
            rows,
            title=(
                "Figure 9B (reproduction): per-epoch speed-up vs workers "
                f"({provenance}; serial epoch = {self.serial_epoch_seconds:.3f}s "
                f"on {self.dataset})"
            ),
        )

    def speedup(self, scheme: str, workers: int) -> float:
        index = self.worker_counts.index(workers)
        return self.speedups[scheme][index]

    def bench_payload(self) -> dict:
        """Provenance record for ``BENCH_<n>.json`` snapshots."""
        payload = {
            "mode": self.mode,
            "cores": self.cores,
            "dataset": self.dataset,
            "transport": self.transport,
            "compute_dtype": self.compute_dtype,
            "serial_epoch_seconds": round(self.serial_epoch_seconds, 4),
            "worker_counts": list(self.worker_counts),
            "speedups": {
                scheme: [round(value, 3) for value in values]
                for scheme, values in self.speedups.items()
            },
        }
        if 4 in self.worker_counts:
            payload["speedup_at_4"] = {
                scheme: round(self.speedup(scheme, 4), 3) for scheme in self.speedups
            }
        return payload


def _measured_worker_counts(max_workers: int) -> list[int]:
    counts = [1]
    while counts[-1] * 2 <= max_workers:
        counts.append(counts[-1] * 2)
    if counts[-1] != max_workers:
        counts.append(max_workers)
    return counts


def _best_epoch_seconds(history, *, skip_first: bool = True) -> float:
    """Steady-state per-epoch time: the best epoch after warm-up.

    The first epoch pays one-off costs (decode, payload shipping to workers)
    that the per-epoch speed-up of Figure 9B is explicitly not about.
    """
    records = history[1:] if skip_first and len(history) > 1 else history
    return min(record.elapsed_seconds for record in records)


def run_speedup_experiment(
    scale: ExperimentScale | str | None = None,
    *,
    max_workers: int = 8,
    model_passing_cost: float = 5.0,
    mode: str | None = None,
    epochs_per_point: int = 2,
    seed: int = 0,
) -> SpeedupResult:
    """Regenerate Figure 9(B) on the scalability classification dataset.

    ``mode`` is ``"measured"`` (force the multi-process backend),
    ``"modeled"`` (force the analytic model) or ``"auto"`` (the default:
    measured when at least two cores are available, modelled otherwise);
    the ``REPRO_FIG9B_MODE`` environment variable overrides the default.
    The serial per-epoch gradient time is always measured on the substrate;
    in measured mode each scheme then runs ``epochs_per_point`` timed epochs
    per worker count on the process backend and reports wall-clock ratios.
    """
    scale = resolve_scale(scale)
    mode = mode or os.environ.get("REPRO_FIG9B_MODE", "auto")
    if mode not in ("auto", "measured", "modeled"):
        raise ValueError(f"unknown Figure 9B mode {mode!r}")
    cores = available_cores()
    measured = mode == "measured" or (mode == "auto" and cores >= 2)

    dataset = make_scalability_classification(scale.scalability_examples, seed=7)
    task = LogisticRegressionTask(dataset.dimension)
    step_size = 0.05
    epochs = epochs_per_point + 1  # first epoch is warm-up (decode/shipping)

    def serial_database() -> Database:
        database = Database("postgres", seed=seed)
        load_classification_table(database, "classify_large", dataset.examples)
        return database

    serial_run = train(
        task,
        serial_database(),
        "classify_large",
        config=IGDConfig(
            step_size=step_size, max_epochs=epochs, ordering="clustered",
            seed=seed, compute_objective=False,
        ),
    )
    serial_seconds = _best_epoch_seconds(serial_run.history)

    model_parameters = task.initial_model().num_parameters
    result = SpeedupResult(
        serial_epoch_seconds=serial_seconds,
        mode="measured" if measured else "modeled",
        cores=cores,
        dataset=dataset.name,
        transport=resolve_payload_transport(),
    )

    if not measured:
        result.worker_counts = list(range(1, max_workers + 1))
        for scheme in SCHEMES:
            result.speedups[scheme] = [
                modeled_speedup(
                    serial_seconds,
                    scheme,
                    workers,
                    model_passing_cost=model_passing_cost,
                    model_parameters=model_parameters,
                )
                for workers in result.worker_counts
            ]
        return result

    result.worker_counts = _measured_worker_counts(max_workers)
    for scheme in SCHEMES:
        result.speedups[scheme] = []
        result.epoch_seconds[scheme] = []
        for workers in result.worker_counts:
            if scheme == "pure_uda":
                database: Database | SegmentedDatabase = SegmentedDatabase(
                    workers, "postgres", seed=seed
                )
                load_classification_table(database, "classify_large", dataset.examples)
                parallelism = PureUDAParallelism(backend="process")
            else:
                database = serial_database()
                parallelism = SharedMemoryParallelism(
                    scheme=scheme, workers=workers, backend="process"
                )
            with database:
                run = train(
                    task,
                    database,
                    "classify_large",
                    config=IGDConfig(
                        step_size=step_size, max_epochs=epochs, ordering="clustered",
                        seed=seed, compute_objective=False, parallelism=parallelism,
                    ),
                )
            epoch_seconds = _best_epoch_seconds(run.history)
            result.epoch_seconds[scheme].append(epoch_seconds)
            result.speedups[scheme].append(serial_seconds / epoch_seconds)
    return result


# ---------------------------------------------------------------------------
# Whole-loop parallelisation: gradient + loss passes on the worker pool
# ---------------------------------------------------------------------------
@dataclass
class WholeLoopResult:
    """End-to-end comparison of whole-loop vs gradient-only parallelisation.

    ``serial`` trains with no parallelism; ``gradient_only`` runs the PR-4
    shape (process-backed gradient epochs, serial loss passes:
    ``parallel_evaluation=False``); ``whole_loop`` routes the loss pass
    through the same worker pool (``parallel_evaluation=True``).  All three
    compute the objective every epoch, so the loss pass is a real share of
    the loop — on the CRF workload the forward-algorithm loss costs about as
    much as the gradient epoch itself, which is exactly the regime where
    gradient-only parallelism hits Amdahl's wall.  ``steady_seconds``
    excludes the first epoch (decode + payload shipping, which the per-epoch
    figures are explicitly not about).
    """

    workers: int
    cores: int
    epochs: int
    scheme: str = "nolock"
    dataset: str = "conll_like"
    total_seconds: dict[str, float] = field(default_factory=dict)
    steady_seconds: dict[str, float] = field(default_factory=dict)
    final_objectives: dict[str, float] = field(default_factory=dict)
    #: Final-model objective re-evaluated through the harness's evaluation
    #: pass (process-backed for the parallel modes — the same pass-plan
    #: machinery and worker pool the training loop uses).
    final_eval: dict[str, float] = field(default_factory=dict)
    #: Worker-pool payload transport and kernel compute dtype provenance.
    transport: str = "auto"
    compute_dtype: str = "float64"

    def speedup_vs_gradient_only(self) -> float:
        """Steady-state whole-loop speed-up over the gradient-only shape."""
        whole = self.steady_seconds["whole_loop"]
        if whole <= 0:
            return float("nan")
        return self.steady_seconds["gradient_only"] / whole

    def render(self) -> str:
        rows = [
            (
                mode,
                f"{self.total_seconds[mode]:.3f}s",
                f"{self.steady_seconds[mode]:.3f}s",
                f"{self.final_objectives[mode]:.4f}",
                f"{self.final_eval[mode]:.4f}",
            )
            for mode in self.total_seconds
        ]
        return render_table(
            ["Mode", "Total", "Steady", "Final objective", "Re-evaluated"],
            rows,
            title=(
                f"Whole-loop parallelisation ({self.scheme} x{self.workers}, "
                f"{self.cores} cores, {self.epochs} epochs on {self.dataset}; "
                f"whole-loop vs gradient-only: {self.speedup_vs_gradient_only():.2f}x)"
            ),
        )

    def bench_payload(self) -> dict:
        return {
            "workers": self.workers,
            "cores": self.cores,
            "epochs": self.epochs,
            "scheme": self.scheme,
            "dataset": self.dataset,
            "transport": self.transport,
            "compute_dtype": self.compute_dtype,
            "total_seconds": {k: round(v, 4) for k, v in self.total_seconds.items()},
            "steady_seconds": {k: round(v, 4) for k, v in self.steady_seconds.items()},
            "speedup_vs_gradient_only": round(self.speedup_vs_gradient_only(), 3),
        }


def run_whole_loop_experiment(
    scale: ExperimentScale | str | None = None,
    *,
    workers: int | None = None,
    scheme: str = "nolock",
    epochs: int = 4,
    seed: int = 0,
) -> WholeLoopResult:
    """Measure what parallelising the loss pass buys on top of the gradient pass.

    Uses the Figure 9A CRF workload, whose per-epoch loss (one forward
    algorithm per sequence) costs about as much as the gradient pass — so
    once the gradient epochs run on worker processes, the serial loss pass
    dominates and gradient-only parallelism stops scaling.  Every run
    computes the objective after every epoch.  On a single-core host the
    numbers still record honestly — the ``cores`` field labels them — but
    only a >= 2-core host can show genuine whole-loop wins.
    """
    scale = resolve_scale(scale)
    cores = available_cores()
    workers = workers or min(4, max(2, cores))
    corpus = make_sequences(
        scale.num_sequences * 2, num_labels=scale.sequence_labels, seed=7
    )
    num_sequences = len(corpus.examples)
    step_size = {"kind": "epoch_decay", "alpha0": 0.2, "decay": 0.9}
    result = WholeLoopResult(
        workers=workers, cores=cores, epochs=epochs, scheme=scheme,
        transport=resolve_payload_transport(),
    )

    def build() -> Database:
        database = Database("postgres", seed=seed)
        load_sequences_table(database, "conll_like", corpus.examples)
        # Several chunks per worker, so the chunk-partitioned loss pass has
        # real parallel slack to deal out (the corpus is one chunk at the
        # default chunk size).
        database.executor.chunk_size = max(1, num_sequences // (workers * 4))
        return database

    def make_task() -> ConditionalRandomFieldTask:
        return ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)

    configs = {
        "serial": IGDConfig(
            step_size=step_size, max_epochs=epochs, ordering="clustered", seed=seed
        ),
        "gradient_only": IGDConfig(
            step_size=step_size, max_epochs=epochs, ordering="clustered", seed=seed,
            parallelism=SharedMemoryParallelism(scheme=scheme, workers=workers, backend="process"),
            parallel_evaluation=False,
        ),
        "whole_loop": IGDConfig(
            step_size=step_size, max_epochs=epochs, ordering="clustered", seed=seed,
            parallelism=SharedMemoryParallelism(scheme=scheme, workers=workers, backend="process"),
            parallel_evaluation=True,
        ),
    }
    for mode, config in configs.items():
        task = make_task()
        with build() as database:
            run = train(task, database, "conll_like", config=config)
            result.total_seconds[mode] = run.total_seconds
            steady = [record.elapsed_seconds for record in run.history[1:]] or [
                record.elapsed_seconds for record in run.history
            ]
            result.steady_seconds[mode] = float(sum(steady))
            result.final_objectives[mode] = run.final_objective
            # The final-model evaluation pass rides the same pass-plan
            # machinery (and, when parallel, the same worker pool) as training.
            result.final_eval[mode] = evaluate_model(
                database, "conll_like", task, run.model,
                kind="loss", include_penalty=True,
                workers=workers if mode != "serial" else 1,
                backend="process" if mode != "serial" else "in_process",
            )
    return result
