"""Experiments E2/E3 — Tables 2 and 3: runtime overhead vs the NULL aggregate.

The paper measures, for every engine and task, the single-iteration (one
epoch) runtime of the Bismarck aggregate against a strawman "NULL" aggregate
that scans the same tuples but computes nothing.  Table 2 uses the pure-UDA
implementation, Table 3 the shared-memory UDA.

We reproduce the measurement on the substrate's three engine personalities
(postgres, dbms_a, dbms_b-with-8-segments) over the dense (Forest-like),
sparse (DBLife-like) and ratings (MovieLens-like) datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.uda import IGDAggregate
from ..db.aggregates import NullAggregate
from ..db.engine import Database
from ..db.parallel import SegmentedDatabase
from ..db.shared_memory import SharedMemoryParallelism, run_shared_memory_epoch
from ..data import (
    load_classification_table,
    load_ratings_table,
    make_dense_classification,
    make_ratings,
    make_sparse_classification,
)
from ..tasks.logistic_regression import LogisticRegressionTask
from ..tasks.matrix_factorization import LowRankMatrixFactorizationTask
from ..tasks.svm import SVMTask
from .harness import ExperimentScale, overhead_percent, resolve_scale, time_callable
from .reporting import render_table

ENGINES = ("postgres", "dbms_a", "dbms_b")
DBMS_B_SEGMENTS = 8


@dataclass(frozen=True)
class OverheadRow:
    """One (engine, dataset, task) measurement."""

    engine: str
    dataset: str
    task: str
    null_seconds: float
    task_seconds: float

    @property
    def overhead_pct(self) -> float:
        return overhead_percent(self.null_seconds, self.task_seconds)

    def as_row(self) -> tuple:
        return (
            self.engine,
            self.dataset,
            self.task,
            f"{self.null_seconds * 1000:.2f}ms",
            f"{self.task_seconds * 1000:.2f}ms",
            f"{self.overhead_pct:.1f}%",
        )


@dataclass
class OverheadTableResult:
    """All rows of a Table-2/Table-3 style overhead table."""

    variant: str
    rows: list[OverheadRow] = field(default_factory=list)

    def render(self) -> str:
        title = (
            "Table 2 (reproduction): pure-UDA single-iteration overhead vs NULL aggregate"
            if self.variant == "pure_uda"
            else "Table 3 (reproduction): shared-memory UDA single-iteration overhead vs NULL aggregate"
        )
        return render_table(
            ["Engine", "Dataset", "Task", "NULL time", "Runtime", "Overhead"],
            [row.as_row() for row in self.rows],
            title=title,
        )

    def rows_for(self, engine: str | None = None, task: str | None = None) -> list[OverheadRow]:
        selected = self.rows
        if engine is not None:
            selected = [row for row in selected if row.engine == engine]
        if task is not None:
            selected = [row for row in selected if row.task == task]
        return selected

    def max_overhead_pct(self) -> float:
        return max(row.overhead_pct for row in self.rows)


def _build_engine(engine: str, seed: int = 0):
    if engine == "dbms_b":
        return SegmentedDatabase(DBMS_B_SEGMENTS, "dbms_b", seed=seed)
    return Database(engine, seed=seed)


def _load_workloads(database, scale: ExperimentScale) -> dict:
    dense = make_dense_classification(scale.dense_examples, scale.dense_dimension, seed=0)
    sparse = make_sparse_classification(
        scale.sparse_examples,
        scale.sparse_dimension,
        nonzeros_per_example=scale.sparse_nonzeros,
        seed=1,
    )
    ratings = make_ratings(scale.rating_rows, scale.rating_cols, scale.num_ratings, rank=5, seed=2)
    load_classification_table(database, "forest_like", dense.examples, sparse=False, replace=True)
    load_classification_table(database, "dblife_like", sparse.examples, sparse=True, replace=True)
    load_ratings_table(database, "movielens_like", ratings.examples, replace=True)
    return {
        "forest_like": ("dense", dense),
        "dblife_like": ("sparse", sparse),
        "movielens_like": ("ratings", ratings),
    }


def _tasks_for(dataset_name: str, kind, payload, scale: ExperimentScale) -> list:
    if dataset_name == "movielens_like":
        return [
            (
                "LMF",
                LowRankMatrixFactorizationTask(
                    payload.num_rows, payload.num_cols, rank=5, mu=0.01
                ),
            )
        ]
    dimension = payload.dimension
    return [("LR", LogisticRegressionTask(dimension)), ("SVM", SVMTask(dimension))]


def _run_null_epoch(database, table_name: str) -> None:
    if isinstance(database, SegmentedDatabase):
        database.run_parallel_aggregate(table_name, NullAggregate)
    else:
        database.run_aggregate(table_name, NullAggregate())


def _run_pure_uda_epoch(database, table_name: str, task) -> None:
    def factory():
        return IGDAggregate(task, 0.05)

    # Tables 2 and 3 measure the per-tuple function-call boundary itself, so
    # the overhead epochs must not ride the cached chunk plane.
    if isinstance(database, SegmentedDatabase):
        database.run_parallel_aggregate(table_name, factory, execution="per_tuple")
    else:
        database.run_aggregate(table_name, factory(), execution="per_tuple")


def _run_shared_memory_epoch(database, table_name: str, task) -> None:
    engine = database.master if isinstance(database, SegmentedDatabase) else database
    table = engine.table(table_name)
    model = task.initial_model()
    spec = SharedMemoryParallelism(
        scheme="nolock",
        workers=DBMS_B_SEGMENTS if isinstance(database, SegmentedDatabase) else 2,
    )
    run_shared_memory_epoch(
        table, task, model, 0.05, spec=spec, charge_per_tuple=engine.executor._charge_overhead
    )


def run_overhead_table(
    variant: str = "pure_uda",
    scale: ExperimentScale | str | None = None,
    *,
    engines: tuple[str, ...] = ENGINES,
    repeats: int = 2,
) -> OverheadTableResult:
    """Regenerate Table 2 (``variant='pure_uda'``) or Table 3 (``'shared_memory'``)."""
    if variant not in ("pure_uda", "shared_memory"):
        raise ValueError("variant must be 'pure_uda' or 'shared_memory'")
    scale = resolve_scale(scale)
    result = OverheadTableResult(variant=variant)

    for engine in engines:
        database = _build_engine(engine)
        workloads = _load_workloads(database, scale)
        for dataset_name, (kind, payload) in workloads.items():
            null_sample = time_callable(
                lambda: _run_null_epoch(database, dataset_name),
                repeats=repeats,
                label="null",
            )
            for task_name, task in _tasks_for(dataset_name, kind, payload, scale):
                if variant == "pure_uda":
                    runner = lambda: _run_pure_uda_epoch(database, dataset_name, task)
                else:
                    runner = lambda: _run_shared_memory_epoch(database, dataset_name, task)
                task_sample = time_callable(runner, repeats=repeats, label=task_name)
                result.rows.append(
                    OverheadRow(
                        engine=engine,
                        dataset=dataset_name,
                        task=task_name,
                        null_seconds=null_sample.mean,
                        task_seconds=task_sample.mean,
                    )
                )
    return result
