"""Shared utilities for the experiment harness.

Every experiment module in this package regenerates one table or figure of
the paper's evaluation section and returns a plain dataclass whose fields are
the rows/series the paper reports.  The benchmarks under ``benchmarks/`` call
these functions and print the rendered tables, and ``EXPERIMENTS.md`` records
the measured shapes against the paper's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.convergence import EpochRecord


def evaluate_model(
    database,
    table_name: str,
    task,
    model,
    *,
    kind: str = "loss",
    workers: int = 1,
    backend: str = "in_process",
    execution: str = "auto",
    include_penalty: bool = False,
):
    """Run one evaluation pass (loss or accuracy) through the pass-plan layer.

    This is the harness's counterpart of the driver's objective pass: the
    model is scored by the same :class:`~repro.core.uda.LossAggregate` /
    :class:`~repro.core.uda.AccuracyAggregate` UDAs, compiled to a
    :class:`~repro.db.pass_plan.PassPlan` and executed on the serial backend
    or — with ``backend="process"`` — fanned out over the engine's forked
    worker pool, so experiment evaluations scale with the same machinery as
    training.  ``include_penalty`` adds the task's proximal penalty (the full
    objective the driver records).
    """
    from ..core.uda import AccuracyAggregate, LossAggregate
    from ..db.parallel import SegmentedDatabase
    from ..db.pass_plan import ProcessBackend, SerialBackend, compile_pass

    engine = database.master if isinstance(database, SegmentedDatabase) else database
    if kind == "loss":
        factory = lambda: LossAggregate(task, model)  # noqa: E731 - tiny closure
    elif kind == "accuracy":
        factory = lambda: AccuracyAggregate(task, model)  # noqa: E731 - tiny closure
    else:
        raise ValueError(f"unknown evaluation kind {kind!r}; expected 'loss' or 'accuracy'")
    plan = compile_pass(
        kind, engine.table(table_name), factory, execution=execution, workers=workers
    )
    if backend == "process":
        value = ProcessBackend(engine).run(plan)
    else:
        value = SerialBackend(engine).run(plan)
    if kind == "loss" and include_penalty:
        return float(value) + task.proximal.penalty(model)
    return value


@dataclass(frozen=True)
class ExperimentScale:
    """Knob controlling how large the generated workloads are.

    ``small`` keeps every experiment to a few seconds (used by the test suite
    and the default benchmark runs); ``full`` approaches the largest sizes that
    are still reasonable on a laptop.
    """

    name: str = "small"
    dense_examples: int = 800
    dense_dimension: int = 54
    sparse_examples: int = 400
    sparse_dimension: int = 2000
    sparse_nonzeros: int = 15
    rating_rows: int = 120
    rating_cols: int = 80
    num_ratings: int = 2000
    num_sequences: int = 30
    sequence_labels: int = 3
    scalability_examples: int = 8000
    max_epochs: int = 10

    @classmethod
    def small(cls) -> "ExperimentScale":
        return cls()

    @classmethod
    def medium(cls) -> "ExperimentScale":
        return cls(
            name="medium",
            dense_examples=4000,
            sparse_examples=1500,
            sparse_dimension=8000,
            sparse_nonzeros=20,
            rating_rows=300,
            rating_cols=200,
            num_ratings=8000,
            num_sequences=60,
            scalability_examples=20000,
            max_epochs=20,
        )

    @classmethod
    def full(cls) -> "ExperimentScale":
        return cls(
            name="full",
            dense_examples=20000,
            sparse_examples=5000,
            sparse_dimension=40000,
            sparse_nonzeros=25,
            rating_rows=1000,
            rating_cols=700,
            num_ratings=50000,
            num_sequences=200,
            sequence_labels=4,
            scalability_examples=100000,
            max_epochs=30,
        )


def resolve_scale(scale: "ExperimentScale | str | None") -> ExperimentScale:
    """Coerce a scale name ('small' / 'medium' / 'full') into a scale object."""
    if scale is None:
        return ExperimentScale.small()
    if isinstance(scale, ExperimentScale):
        return scale
    factories = {
        "small": ExperimentScale.small,
        "medium": ExperimentScale.medium,
        "full": ExperimentScale.full,
    }
    try:
        return factories[scale.lower()]()
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; expected one of {sorted(factories)}") from None


@dataclass
class TimingSample:
    """Repeated wall-clock measurements of one operation."""

    label: str
    seconds: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.seconds)) if self.seconds else 0.0

    @property
    def minimum(self) -> float:
        return float(np.min(self.seconds)) if self.seconds else 0.0


def time_callable(func: Callable[[], object], *, repeats: int = 3, label: str = "") -> TimingSample:
    """Time a zero-argument callable ``repeats`` times (warm runs, like the paper)."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    sample = TimingSample(label=label or getattr(func, "__name__", "operation"))
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        sample.seconds.append(time.perf_counter() - start)
    return sample


def overhead_percent(baseline_seconds: float, measured_seconds: float) -> float:
    """Overhead of ``measured`` over ``baseline`` as a percentage (Table 2/3)."""
    if baseline_seconds <= 0:
        return float("inf")
    return 100.0 * (measured_seconds - baseline_seconds) / baseline_seconds


def tolerance_target(optimum: float, tolerance: float = 1e-3) -> float:
    """Objective value corresponding to a relative tolerance above the optimum."""
    return optimum + tolerance * max(abs(optimum), 1e-12)


def time_to_tolerance(
    history: Sequence[EpochRecord], optimum: float, *, tolerance: float = 1e-3
) -> float | None:
    """Cumulative seconds until the objective reaches the tolerance band."""
    target = tolerance_target(optimum, tolerance)
    cumulative = 0.0
    for record in history:
        cumulative += record.elapsed_seconds
        if record.objective <= target:
            return cumulative
    return None


def epochs_to_tolerance(
    history: Sequence[EpochRecord], optimum: float, *, tolerance: float = 1e-3
) -> int | None:
    """Number of epochs until the objective reaches the tolerance band (1-based)."""
    target = tolerance_target(optimum, tolerance)
    for record in history:
        if record.objective <= target:
            return record.epoch + 1
    return None
