"""Experiment E1 — Table 1: dataset statistics.

Builds the reproduction's benchmark datasets (the laptop-scale analogues of
Forest, DBLife, MovieLens, CoNLL, Classify300M, Matrix5B and DBLP) and reports
their statistics in the layout of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data import (
    classification_statistics,
    make_dense_classification,
    make_large_ratings,
    make_large_sequences,
    make_ratings,
    make_scalability_classification,
    make_sequences,
    make_sparse_classification,
    ratings_statistics,
    sequence_statistics,
)
from ..data.statistics import DatasetStatistics
from .harness import ExperimentScale, resolve_scale
from .reporting import render_table


@dataclass
class DatasetsTableResult:
    """All dataset-statistics rows (Table 1)."""

    rows: list[DatasetStatistics]

    def render(self) -> str:
        return render_table(
            ["Dataset", "Dimension", "# Examples", "Size", "Format"],
            [row.as_row() for row in self.rows],
            title="Table 1 (reproduction): dataset statistics",
        )

    def by_name(self, name: str) -> DatasetStatistics:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"no dataset named {name!r}")


def build_benchmark_datasets(scale: ExperimentScale | str | None = None) -> dict:
    """Construct every benchmark dataset used by the experiment suite."""
    scale = resolve_scale(scale)
    return {
        "forest_like": make_dense_classification(
            scale.dense_examples, scale.dense_dimension, seed=0
        ),
        "dblife_like": make_sparse_classification(
            scale.sparse_examples,
            scale.sparse_dimension,
            nonzeros_per_example=scale.sparse_nonzeros,
            seed=1,
        ),
        "movielens_like": make_ratings(
            scale.rating_rows, scale.rating_cols, scale.num_ratings, rank=5, seed=2
        ),
        "conll_like": make_sequences(
            scale.num_sequences, num_labels=scale.sequence_labels, seed=3
        ),
        "classify_large": make_scalability_classification(scale.scalability_examples, seed=4),
        "matrix_large": make_large_ratings(
            num_rows=max(200, scale.rating_rows * 4),
            num_cols=max(200, scale.rating_cols * 4),
            num_ratings=scale.num_ratings * 4,
            seed=5,
        ),
        "dblp_like": make_large_sequences(
            num_sequences=scale.num_sequences * 3, num_labels=scale.sequence_labels + 1, seed=6
        ),
    }


def run_datasets_table(scale: ExperimentScale | str | None = None) -> DatasetsTableResult:
    """Regenerate Table 1 for the reproduction's datasets."""
    datasets = build_benchmark_datasets(scale)
    rows = [
        classification_statistics(datasets["forest_like"]),
        classification_statistics(datasets["dblife_like"]),
        ratings_statistics(datasets["movielens_like"]),
        sequence_statistics(datasets["conll_like"]),
        classification_statistics(datasets["classify_large"]),
        ratings_statistics(datasets["matrix_large"]),
        sequence_statistics(datasets["dblp_like"]),
    ]
    return DatasetsTableResult(rows=rows)
