"""Streaming ingest: model refresh cost under continuous inserts.

The incremental chunk plane (append-aware version ledger, delta decode,
``partial_fit`` continuation) exists so that a model trained over a growing
table can be refreshed at a cost proportional to the *delta*, not the table.
This experiment measures exactly that claim.  A classification table takes
``insert_rounds`` batches of appended rows; after every batch the model is
refreshed two ways:

* **incremental** — :meth:`~repro.core.driver.BismarckRunner.partial_fit`
  continues the current model over just the appended rows (plus a periodic
  full pass), with the example cache extending in place, so the decode-row
  counter charges only the delta;
* **full invalidation** — the pre-ledger world: every insert busts the cache,
  so the refresh re-decodes the whole table and runs its epochs over every
  row.

Reported per round: rows decoded (the honest work counter — wall-clock on a
table this size is noise-prone, decode rows are exact), refresh seconds, and
the full-table objective of each refreshed model (freshness: the cheap
refresh must not drift away from the expensive one).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.driver import BismarckRunner, IGDConfig
from ..data import load_classification_table, make_dense_classification
from ..db import Database
from ..tasks.logistic_regression import LogisticRegressionTask
from .harness import ExperimentScale, resolve_scale
from .reporting import render_table


@dataclass
class StreamingRound:
    """One insert batch and the two model refreshes that followed it."""

    round_index: int
    rows_added: int
    rows_total: int
    incremental_decoded_rows: int
    baseline_decoded_rows: int
    incremental_seconds: float
    baseline_seconds: float
    incremental_objective: float
    baseline_objective: float


@dataclass
class StreamingIngestResult:
    """Incremental vs full-invalidation refresh over a continuous-insert feed."""

    base_rows: int
    rows_per_round: int
    insert_rounds: int
    delta_epochs: int
    full_pass_every: int
    rounds: list[StreamingRound] = field(default_factory=list)
    #: Example-cache extension events observed on the incremental side —
    #: each one is an append delta absorbed without a full re-decode.
    cache_extensions: int = 0

    @property
    def incremental_decoded_total(self) -> int:
        return sum(r.incremental_decoded_rows for r in self.rounds)

    @property
    def baseline_decoded_total(self) -> int:
        return sum(r.baseline_decoded_rows for r in self.rounds)

    @property
    def decode_ratio(self) -> float:
        """Incremental decode work as a fraction of the full-invalidation one."""
        baseline = self.baseline_decoded_total
        return self.incremental_decoded_total / baseline if baseline else 0.0

    @property
    def freshness_gap(self) -> float:
        """Final-round objective gap: incremental minus baseline (full-table)."""
        if not self.rounds:
            return 0.0
        last = self.rounds[-1]
        return last.incremental_objective - last.baseline_objective

    def render(self) -> str:
        rows = [
            (
                str(r.round_index),
                str(r.rows_total),
                f"{r.incremental_decoded_rows} / {r.baseline_decoded_rows}",
                f"{r.incremental_seconds:.4f}s / {r.baseline_seconds:.4f}s",
                f"{r.incremental_objective:.5g} / {r.baseline_objective:.5g}",
            )
            for r in self.rounds
        ]
        return render_table(
            ["Round", "Rows", "Decoded inc/full", "Refresh inc/full", "Objective inc/full"],
            rows,
            title=(
                f"Streaming ingest ({self.insert_rounds} x {self.rows_per_round} rows onto "
                f"{self.base_rows}; decode ratio {self.decode_ratio:.3f}, "
                f"{self.cache_extensions} cache extensions, "
                f"freshness gap {self.freshness_gap:+.4g})"
            ),
        )

    def bench_payload(self) -> dict:
        return {
            "base_rows": self.base_rows,
            "rows_per_round": self.rows_per_round,
            "insert_rounds": self.insert_rounds,
            "delta_epochs": self.delta_epochs,
            "full_pass_every": self.full_pass_every,
            "incremental_decoded_rows": self.incremental_decoded_total,
            "baseline_decoded_rows": self.baseline_decoded_total,
            "decode_ratio": round(self.decode_ratio, 4),
            "incremental_seconds": round(sum(r.incremental_seconds for r in self.rounds), 4),
            "baseline_seconds": round(sum(r.baseline_seconds for r in self.rounds), 4),
            "cache_extensions": self.cache_extensions,
            "freshness_gap": round(self.freshness_gap, 6),
            "final_incremental_objective": round(self.rounds[-1].incremental_objective, 6)
            if self.rounds
            else None,
            "final_baseline_objective": round(self.rounds[-1].baseline_objective, 6)
            if self.rounds
            else None,
        }


def run_streaming_ingest_experiment(
    scale: ExperimentScale | str | None = None,
    *,
    insert_rounds: int = 4,
    rows_per_round: int | None = None,
    delta_epochs: int = 3,
    full_pass_every: int = 3,
    seed: int = 0,
) -> StreamingIngestResult:
    """Feed insert batches into two identical databases and refresh both ways.

    Both sides start from the same trained model over the same base table and
    see the identical insert stream.  The incremental side shares one task
    instance across rounds (the cache keys decoded entries on it) and calls
    ``partial_fit`` from the persisted version watermark; the baseline side
    uses a fresh task instance per round, which is precisely the
    full-invalidation world — every refresh decodes the whole table cold —
    and retrains over all rows, warm-started from its own current model.
    """
    scale = resolve_scale(scale)
    dimension = min(scale.dense_dimension, 20)
    base_rows = max(scale.dense_examples // 2, 40)
    rows_per_round = rows_per_round or max(base_rows // 8, 5)

    base = make_dense_classification(base_rows, dimension, seed=21)
    stream = make_dense_classification(insert_rounds * rows_per_round, dimension, seed=22)

    def fresh_db() -> Database:
        db = Database("postgres", seed=seed)
        load_classification_table(db, "stream", base.examples)
        return db

    def row_tuples(start: int, examples) -> list[tuple]:
        return [(start + i, ex.features, ex.label) for i, ex in enumerate(examples)]

    config = IGDConfig(max_epochs=delta_epochs, ordering="shuffle_once", seed=seed)

    inc_db, full_db = fresh_db(), fresh_db()
    inc_task = LogisticRegressionTask(dimension, mu=0.01)
    inc_runner = BismarckRunner(inc_db, inc_task, config)

    warm = inc_runner.train("stream")
    inc_model, inc_version = warm.model, warm.table_version
    # The baseline starts from the same trained model, so from round one the
    # only difference between the two sides is the refresh strategy.
    full_model = warm.model.copy()

    result = StreamingIngestResult(
        base_rows=base_rows,
        rows_per_round=rows_per_round,
        insert_rounds=insert_rounds,
        delta_epochs=delta_epochs,
        full_pass_every=full_pass_every,
    )
    inc_cache = inc_db.executor.example_cache
    full_cache = full_db.executor.example_cache
    extensions_before = inc_cache.extensions

    for round_index in range(insert_rounds):
        start = base_rows + round_index * rows_per_round
        batch = row_tuples(start, stream.examples[round_index * rows_per_round:(round_index + 1) * rows_per_round])
        inc_db.insert("stream", batch)
        full_db.insert("stream", batch)

        decoded_mark = inc_cache.decoded_rows
        tick = time.perf_counter()
        refreshed = inc_runner.partial_fit(
            "stream",
            initial_model=inc_model,
            since_version=inc_version,
            full_pass_every=full_pass_every,
        )
        inc_seconds = time.perf_counter() - tick
        inc_model, inc_version = refreshed.model, refreshed.table_version
        inc_decoded = inc_cache.decoded_rows - decoded_mark

        # Fresh task instance per round: no cache entry survives, the refresh
        # decodes the whole table — the pre-ledger invalidation behaviour.
        full_task = LogisticRegressionTask(dimension, mu=0.01)
        full_runner = BismarckRunner(full_db, full_task, config)
        decoded_mark = full_cache.decoded_rows
        tick = time.perf_counter()
        retrained = full_runner.train("stream", initial_model=full_model)
        full_seconds = time.perf_counter() - tick
        full_model = retrained.model
        full_decoded = full_cache.decoded_rows - decoded_mark

        result.rounds.append(
            StreamingRound(
                round_index=round_index,
                rows_added=len(batch),
                rows_total=len(inc_db.table("stream")),
                incremental_decoded_rows=inc_decoded,
                baseline_decoded_rows=full_decoded,
                incremental_seconds=inc_seconds,
                baseline_seconds=full_seconds,
                incremental_objective=refreshed.final_objective,
                baseline_objective=retrained.final_objective,
            )
        )

    result.cache_extensions = inc_cache.extensions - extensions_before
    return result
