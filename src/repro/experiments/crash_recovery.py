"""Whole-process crash recovery: kill a durable training engine, resume it.

The durability plane (:mod:`repro.db.wal`, :mod:`repro.db.checkpoint`) turns
engine death from run-fatal into a reopenable database; this experiment
measures the price and proves the contract.  It trains a durable serial run
as a child process SIGKILLed mid-epoch by the crash-injection harness
(``REPRO_CRASH``), then reopens the database here, times the recovery pass
(checkpoint restore + WAL replay + torn-tail repair), resumes from the
recovered :class:`~repro.db.checkpoint.TrainingState`, and checks the
resumed model is bit-for-bit an uninterrupted run's.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.driver import BismarckRunner, IGDConfig
from ..data import load_classification_table, make_sparse_classification
from ..db import Database
from ..tasks.logistic_regression import LogisticRegressionTask
from .harness import ExperimentScale, resolve_scale
from .reporting import render_table

#: The child re-creates the exact same durable workload, trains with
#: per-epoch checkpoints, and is SIGKILLed by its own crash injector.
_CHILD_SOURCE = """
import sys
from repro.core.driver import BismarckRunner, IGDConfig
from repro.data import load_classification_table, make_sparse_classification
from repro.db import Database
from repro.tasks.logistic_regression import LogisticRegressionTask

path = sys.argv[1]
examples, dimension, nonzeros = int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4])
epochs, seed = int(sys.argv[5]), int(sys.argv[6])
dataset = make_sparse_classification(examples, dimension,
                                     nonzeros_per_example=nonzeros, seed=11)
task = LogisticRegressionTask(dataset.dimension)
db = Database.open(path)
load_classification_table(db, "pts", dataset.examples, sparse=True)
config = IGDConfig(step_size=0.1, max_epochs=epochs, ordering="shuffle_once",
                   seed=seed, checkpoint_every=1)
BismarckRunner(db, task, config).train("pts")
db.close()
"""


@dataclass
class CrashRecoveryResult:
    """One SIGKILLed training run and its recovery, vs the clean run."""

    epochs: int
    crash_epoch: int
    examples: int
    #: Wall-clock of ``Database.open`` on the crashed directory — torn-tail
    #: repair + newest-valid-checkpoint restore + WAL delta replay.
    recovery_seconds: float = 0.0
    clean_train_seconds: float = 0.0
    resumed_train_seconds: float = 0.0
    checkpoint_generation: int = -1
    wal_records_replayed: int = 0
    torn_bytes_discarded: int = 0
    resumed_from_epoch: int = 0
    #: The acceptance bar: the resumed run's final model must be bit-for-bit
    #: the uninterrupted run's (deterministic serial IGD).
    bit_for_bit: bool = False
    event_kinds: list = field(default_factory=list)

    def render(self) -> str:
        rows = [
            ("uninterrupted", f"{self.epochs} epochs", f"{self.clean_train_seconds:.3f}s", "-"),
            (
                "SIGKILL + recover",
                f"{self.resumed_from_epoch}..{self.epochs - 1} resumed",
                f"{self.resumed_train_seconds:.3f}s",
                f"open {self.recovery_seconds:.4f}s (ckpt gen {self.checkpoint_generation}, "
                f"{self.wal_records_replayed} WAL record(s), "
                f"{self.torn_bytes_discarded}B torn)",
            ),
        ]
        return render_table(
            ["Run", "Epochs", "Train", "Recovery"],
            rows,
            title=(
                f"Crash recovery (serial, SIGKILL after epoch {self.crash_epoch}, "
                f"{self.examples} examples; bit-for-bit: {self.bit_for_bit})"
            ),
        )

    def bench_payload(self) -> dict:
        return {
            "epochs": self.epochs,
            "crash_epoch": self.crash_epoch,
            "examples": self.examples,
            "recovery_seconds": round(self.recovery_seconds, 4),
            "clean_train_seconds": round(self.clean_train_seconds, 4),
            "resumed_train_seconds": round(self.resumed_train_seconds, 4),
            "checkpoint_generation": self.checkpoint_generation,
            "wal_records_replayed": self.wal_records_replayed,
            "torn_bytes_discarded": self.torn_bytes_discarded,
            "resumed_from_epoch": self.resumed_from_epoch,
            "bit_for_bit": self.bit_for_bit,
        }


def run_crash_recovery_experiment(
    scale: ExperimentScale | str | None = None,
    *,
    epochs: int = 6,
    crash_epoch: int = 2,
    seed: int = 0,
) -> CrashRecoveryResult:
    """SIGKILL a durable training run mid-epoch, reopen, resume, compare.

    The child process dies at the ``epoch`` crash point *before* that
    epoch's checkpoint lands, so recovery restores the previous epoch's
    snapshot and the resume re-runs ``crash_epoch .. epochs-1``.
    """
    scale = resolve_scale(scale)
    examples = min(scale.sparse_examples, 400)
    dimension, nonzeros = scale.sparse_dimension, scale.sparse_nonzeros
    dataset = make_sparse_classification(
        examples, dimension, nonzeros_per_example=nonzeros, seed=11
    )
    task = LogisticRegressionTask(dataset.dimension)
    config = IGDConfig(
        step_size=0.1, max_epochs=epochs, ordering="shuffle_once",
        seed=seed, checkpoint_every=1,
    )
    result = CrashRecoveryResult(epochs=epochs, crash_epoch=crash_epoch, examples=examples)

    # Uninterrupted reference (in-memory: same bits, no disk noise).
    clean_db = Database("postgres", seed=seed)
    load_classification_table(clean_db, "pts", dataset.examples, sparse=True)
    start = time.perf_counter()
    clean = BismarckRunner(clean_db, task, config).train("pts")
    result.clean_train_seconds = time.perf_counter() - start

    workdir = tempfile.mkdtemp(prefix="repro-crash-")
    try:
        path = os.path.join(workdir, "db")
        src_root = str(Path(__file__).parents[2])
        pythonpath = src_root
        if os.environ.get("PYTHONPATH"):
            pythonpath += os.pathsep + os.environ["PYTHONPATH"]
        env = {
            **os.environ,
            "PYTHONPATH": pythonpath,
            "REPRO_CRASH": f"kill:epoch={crash_epoch}",
        }
        completed = subprocess.run(
            [
                sys.executable, "-c", _CHILD_SOURCE, path,
                str(examples), str(dimension), str(nonzeros), str(epochs), str(seed),
            ],
            env=env, capture_output=True, text=True, timeout=300,
        )
        if completed.returncode != -9:
            raise RuntimeError(
                f"crash child was expected to die by SIGKILL, got "
                f"{completed.returncode}: {completed.stderr[-500:]}"
            )
        result.event_kinds.append("sigkill")

        start = time.perf_counter()
        recovered = Database.open(path)
        result.recovery_seconds = time.perf_counter() - start
        report = recovered.recovery_report
        result.checkpoint_generation = report.checkpoint_generation
        result.wal_records_replayed = report.records_replayed
        result.torn_bytes_discarded = report.torn_bytes_discarded
        state = recovered.training_state("pts")
        if state is None:
            raise RuntimeError("no training state survived the crash")
        result.resumed_from_epoch = state.next_epoch
        result.event_kinds.append("resumed")

        start = time.perf_counter()
        resumed = BismarckRunner(recovered, task, config).train("pts", resume_from=state)
        result.resumed_train_seconds = time.perf_counter() - start
        recovered.close()

        result.bit_for_bit = bool(
            np.array_equal(
                resumed.model.as_flat_vector(), clean.model.as_flat_vector()
            )
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return result
