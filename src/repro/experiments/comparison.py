"""Experiments E5/E6 — Figure 7: Bismarck vs native analytics tools.

Figure 7(A): end-to-end runtime to convergence (0.1% tolerance of the best
objective reached by either system) for LR, SVM and LMF, comparing Bismarck's
IGD-as-a-UDA against the baseline trainers that model the native tools
(Newton/IRLS LR, batch-subgradient SVM, ALS matrix factorisation).

Figure 7(B): objective-vs-time convergence curves for the CRF task, Bismarck
against the batch CRF trainer standing in for CRF++ / Mallet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines import (
    train_batch_crf,
    train_batch_gradient_descent,
    train_batch_matrix_factorization,
    train_batch_svm,
    train_newton_logistic_regression,
)
from ..core.driver import IGDConfig, train
from ..db.engine import Database
from ..data import (
    load_classification_table,
    load_ratings_table,
    load_sequences_table,
    make_dense_classification,
    make_ratings,
    make_sequences,
    make_sparse_classification,
)
from ..tasks.crf import ConditionalRandomFieldTask
from ..tasks.logistic_regression import LogisticRegressionTask
from ..tasks.matrix_factorization import LowRankMatrixFactorizationTask
from ..tasks.svm import SVMTask
from .harness import ExperimentScale, resolve_scale, time_to_tolerance, tolerance_target
from .reporting import render_series, render_table


@dataclass(frozen=True)
class ComparisonRow:
    """One (dataset, task) comparison between Bismarck and a native-tool baseline."""

    dataset: str
    task: str
    bismarck_seconds: float | None
    baseline_name: str
    baseline_seconds: float | None
    bismarck_final_objective: float
    baseline_final_objective: float

    @property
    def speedup(self) -> float | None:
        """How many times faster Bismarck reached the tolerance band."""
        if self.bismarck_seconds is None or self.baseline_seconds is None:
            return None
        if self.bismarck_seconds <= 0:
            return float("inf")
        return self.baseline_seconds / self.bismarck_seconds

    def as_row(self) -> tuple:
        return (
            self.dataset,
            self.task,
            _fmt_seconds(self.bismarck_seconds),
            self.baseline_name,
            _fmt_seconds(self.baseline_seconds),
            f"{self.speedup:.1f}x" if self.speedup is not None else "-",
        )


def _fmt_seconds(value: float | None) -> str:
    return f"{value:.3f}s" if value is not None else "did not reach"


@dataclass
class BenchmarkComparisonResult:
    """Figure 7(A): runtime-to-convergence comparison rows."""

    rows: list[ComparisonRow] = field(default_factory=list)
    tolerance: float = 1e-3

    def render(self) -> str:
        return render_table(
            ["Dataset", "Task", "Bismarck", "Baseline", "Baseline time", "Speed-up"],
            [row.as_row() for row in self.rows],
            title="Figure 7A (reproduction): time to convergence, Bismarck vs native tools",
        )

    def row_for(self, dataset: str, task: str) -> ComparisonRow:
        for row in self.rows:
            if row.dataset == dataset and row.task == task:
                return row
        raise KeyError(f"no comparison row for ({dataset}, {task})")


def _bismarck_config(max_epochs: int, step_size) -> IGDConfig:
    return IGDConfig(
        step_size=step_size,
        max_epochs=max_epochs,
        ordering="shuffle_once",
        seed=0,
    )


def run_benchmark_comparison(
    scale: ExperimentScale | str | None = None,
    *,
    tolerance: float = 0.25,
) -> BenchmarkComparisonResult:
    """Regenerate Figure 7(A): LR (dense), SVM (dense), LR/SVM (sparse), LMF.

    Both Bismarck and the baselines run against the same engine: every tuple a
    baseline touches is charged the engine's per-tuple scan cost through the
    executor's cost model, because the native tools the paper compares against
    are themselves in-RDBMS implementations.  The completion criterion for
    each pair is reaching ``tolerance`` (relative) above the better of the two
    systems' best objective values — the reproduction analogue of the paper's
    "completion = 0.1% tolerance of the optimal objective".  The band is much
    looser than 0.1% because the runs are orders of magnitude shorter than the
    paper's; a system that never reaches the band is reported as
    "did not reach" (the analogue of the paper's slowest competitors).
    """
    scale = resolve_scale(scale)
    result = BenchmarkComparisonResult(tolerance=tolerance)
    epochs = max(scale.max_epochs, 20)

    dense = make_dense_classification(scale.dense_examples, scale.dense_dimension, seed=0)
    sparse = make_sparse_classification(
        scale.sparse_examples,
        scale.sparse_dimension,
        nonzeros_per_example=scale.sparse_nonzeros,
        seed=1,
    )
    ratings = make_ratings(scale.rating_rows, scale.rating_cols, scale.num_ratings, rank=5, seed=2)

    step_size = {"kind": "epoch_decay", "alpha0": 0.08, "decay": 0.9}

    # ----------------------------------------------------------- dense LR
    database = Database("postgres", seed=0)
    charge = database.executor._charge_overhead
    load_classification_table(database, "forest_like", dense.examples, sparse=False)
    lr_task = LogisticRegressionTask(dense.dimension)
    bismarck_lr = train(
        lr_task, database, "forest_like", config=_bismarck_config(epochs, step_size)
    )
    newton = train_newton_logistic_regression(
        dense.examples, dense.dimension, iterations=12, charge_per_tuple=charge
    )
    result.rows.append(
        _comparison_row("forest_like", "LR", bismarck_lr, newton, tolerance)
    )

    # ----------------------------------------------------------- dense SVM
    svm_task = SVMTask(dense.dimension)
    bismarck_svm = train(
        svm_task, database, "forest_like", config=_bismarck_config(epochs, step_size)
    )
    batch_svm = train_batch_svm(
        SVMTask(dense.dimension),
        dense.examples,
        step_size=0.005,
        iterations=epochs * 3,
        charge_per_tuple=charge,
    )
    result.rows.append(
        _comparison_row("forest_like", "SVM", bismarck_svm, batch_svm, tolerance)
    )

    # ----------------------------------------------------------- sparse LR / SVM
    # The paper's MADlib LR does not support the sparse DBLife workload (N/A in
    # Figure 7A); the sparse LR baseline here is the generic full-batch
    # gradient tool (the implementation style of the commercial engines'
    # native LR), not IRLS, whose dense d x d Hessian would be pathological at
    # this dimensionality.
    sparse_db = Database("postgres", seed=0)
    sparse_charge = sparse_db.executor._charge_overhead
    load_classification_table(sparse_db, "dblife_like", sparse.examples, sparse=True)
    sparse_lr_task = LogisticRegressionTask(sparse.dimension)
    bismarck_sparse_lr = train(
        sparse_lr_task, sparse_db, "dblife_like", config=_bismarck_config(epochs, step_size)
    )
    sparse_batch_lr = train_batch_gradient_descent(
        LogisticRegressionTask(sparse.dimension),
        sparse.examples,
        step_size=0.01,
        iterations=epochs * 3,
        charge_per_tuple=sparse_charge,
    )
    result.rows.append(
        _comparison_row("dblife_like", "LR", bismarck_sparse_lr, sparse_batch_lr, tolerance)
    )

    sparse_svm_task = SVMTask(sparse.dimension)
    bismarck_sparse_svm = train(
        sparse_svm_task, sparse_db, "dblife_like", config=_bismarck_config(epochs, step_size)
    )
    sparse_batch_svm = train_batch_svm(
        SVMTask(sparse.dimension),
        sparse.examples,
        step_size=0.01,
        iterations=epochs * 3,
        charge_per_tuple=sparse_charge,
    )
    result.rows.append(
        _comparison_row("dblife_like", "SVM", bismarck_sparse_svm, sparse_batch_svm, tolerance)
    )

    # ----------------------------------------------------------- LMF
    mf_db = Database("postgres", seed=0)
    mf_charge = mf_db.executor._charge_overhead
    load_ratings_table(mf_db, "movielens_like", ratings.examples)
    mf_task = LowRankMatrixFactorizationTask(
        ratings.num_rows, ratings.num_cols, rank=5, mu=0.01
    )
    bismarck_mf = train(
        mf_task,
        mf_db,
        "movielens_like",
        config=_bismarck_config(max(epochs, 20), 0.05),
    )
    batch_mf = train_batch_matrix_factorization(
        LowRankMatrixFactorizationTask(ratings.num_rows, ratings.num_cols, rank=5, mu=0.01),
        ratings.examples,
        step_size=0.002,
        iterations=max(epochs, 20) * 2,
        charge_per_tuple=mf_charge,
    )
    result.rows.append(
        _comparison_row("movielens_like", "LMF", bismarck_mf, batch_mf, tolerance)
    )

    return result


def _comparison_row(dataset: str, task: str, bismarck_result, baseline_result, tolerance: float) -> ComparisonRow:
    """Build one row: time each side needs to reach the tolerance band around
    the best objective value either system attains."""
    best = min(
        min(bismarck_result.objective_trace()),
        min(baseline_result.objective_trace()),
    )
    target = tolerance_target(best, tolerance)
    return ComparisonRow(
        dataset=dataset,
        task=task,
        bismarck_seconds=bismarck_result.time_to_reach(target),
        baseline_name=baseline_result.name,
        baseline_seconds=baseline_result.time_to_reach(target),
        bismarck_final_objective=bismarck_result.final_objective,
        baseline_final_objective=baseline_result.final_objective,
    )


# ---------------------------------------------------------------------------
# Figure 7(B): CRF convergence curves
# ---------------------------------------------------------------------------
@dataclass
class CRFComparisonResult:
    """Figure 7(B): objective-vs-time traces for Bismarck and the batch CRF."""

    bismarck_times: list[float] = field(default_factory=list)
    bismarck_objectives: list[float] = field(default_factory=list)
    baseline_times: list[float] = field(default_factory=list)
    baseline_objectives: list[float] = field(default_factory=list)
    bismarck_final_accuracy: float = 0.0

    def render(self) -> str:
        return "\n".join(
            [
                "Figure 7B (reproduction): CRF objective vs time",
                render_series("bismarck", self.bismarck_times, self.bismarck_objectives),
                render_series("batch_crf", self.baseline_times, self.baseline_objectives),
                f"Bismarck final token accuracy: {self.bismarck_final_accuracy:.3f}",
            ]
        )

    def bismarck_objective_at(self, fraction_of_baseline_time: float) -> float:
        """Bismarck's objective once it has spent the given fraction of the
        baseline's total time (used to verify Bismarck converges no slower)."""
        if not self.baseline_times or not self.bismarck_times:
            return float("nan")
        budget = fraction_of_baseline_time * self.baseline_times[-1]
        value = self.bismarck_objectives[0]
        for t, objective in zip(self.bismarck_times, self.bismarck_objectives):
            if t <= budget:
                value = objective
        return value


def run_crf_comparison(
    scale: ExperimentScale | str | None = None,
    *,
    max_epochs: int | None = None,
) -> CRFComparisonResult:
    """Regenerate Figure 7(B): Bismarck CRF vs the batch (CRF++/Mallet-style) trainer."""
    scale = resolve_scale(scale)
    epochs = max_epochs or scale.max_epochs
    corpus = make_sequences(scale.num_sequences, num_labels=scale.sequence_labels, seed=3)

    database = Database("postgres", seed=0)
    load_sequences_table(database, "conll_like", corpus.examples)
    task = ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels)
    bismarck = train(
        task,
        database,
        "conll_like",
        config=IGDConfig(
            step_size={"kind": "epoch_decay", "alpha0": 0.2, "decay": 0.9},
            max_epochs=epochs,
            ordering="shuffle_once",
            seed=0,
        ),
    )
    baseline = train_batch_crf(
        ConditionalRandomFieldTask(corpus.num_features, corpus.num_labels),
        corpus.examples,
        step_size=0.5,
        iterations=epochs * 2,
    )
    return CRFComparisonResult(
        bismarck_times=bismarck.time_trace(),
        bismarck_objectives=bismarck.objective_trace(),
        baseline_times=baseline.time_trace(),
        baseline_objectives=baseline.objective_trace(),
        bismarck_final_accuracy=task.token_accuracy(bismarck.model, corpus.examples),
    )
