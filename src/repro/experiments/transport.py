"""Payload transport: zero-copy chunk pages vs pickled bytes to process workers.

The process backend ships each worker its cached chunk payloads exactly once
(then residency + append deltas keep them warm), but *how* those bytes travel
matters: pickling a dense feature matrix copies every float through the
parent's pickler, the pipe, and the worker's unpickler.  The page transport
instead publishes the payload's arrays into a named ``/dev/shm`` chunk page
(:class:`~repro.db.shared_memory.ChunkPageSet`) and ships only a compact
descriptor plus the non-array skeleton — workers attach by OS name and
rebuild zero-copy numpy views.

This experiment trains the identical model twice through the process backend
— once with ``payload_transport="pickle"``, once with ``"pages"`` — and
reports bytes shipped through the message pipe, publish seconds, and
bit-for-bit parity of the resulting models (the transport must be invisible
to the arithmetic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.driver import BismarckRunner, IGDConfig
from ..core.parallel import PureUDAParallelism
from ..data import load_classification_table, make_dense_classification
from ..db.parallel import SegmentedDatabase
from ..tasks.logistic_regression import LogisticRegressionTask
from .harness import ExperimentScale, resolve_scale
from .reporting import render_table


@dataclass
class PayloadTransportResult:
    """Bytes shipped and publish cost, pickled transport vs chunk pages."""

    rows: int
    dimension: int
    workers: int
    epochs: int
    #: ``pool.transport_stats`` snapshots, keyed by transport name.
    stats: dict[str, dict] = field(default_factory=dict)
    #: Final models bit-for-bit equal across the two transports.
    models_match: bool = False
    final_objectives: dict[str, float] = field(default_factory=dict)

    def bytes_shipped(self, transport: str) -> int:
        """Total payload bytes written to worker pipes under ``transport``."""
        stats = self.stats[transport]
        return int(stats["pages_bytes_shipped"]) + int(stats["pickle_bytes_shipped"])

    @property
    def bytes_ratio(self) -> float:
        """Pickled bytes over page-transport bytes (higher = pages win)."""
        paged = self.bytes_shipped("pages")
        return self.bytes_shipped("pickle") / paged if paged else float("inf")

    def render(self) -> str:
        rows = [
            (
                transport,
                str(self.bytes_shipped(transport)),
                str(stats["page_payloads"]),
                str(stats["pickle_payloads"]),
                str(stats["page_fallbacks"]),
                f"{stats['publish_seconds']:.4f}s",
            )
            for transport, stats in self.stats.items()
        ]
        return render_table(
            ["Transport", "Bytes shipped", "Paged", "Pickled", "Fallbacks", "Publish"],
            rows,
            title=(
                f"Payload transport ({self.rows}x{self.dimension} dense, "
                f"{self.workers} workers, {self.epochs} epochs; "
                f"pages ship {self.bytes_ratio:.1f}x fewer bytes, "
                f"models {'match bit-for-bit' if self.models_match else 'DIVERGE'})"
            ),
        )

    def bench_payload(self) -> dict:
        return {
            "rows": self.rows,
            "dimension": self.dimension,
            "workers": self.workers,
            "epochs": self.epochs,
            "pickle_bytes_shipped": self.bytes_shipped("pickle"),
            "pages_bytes_shipped": self.bytes_shipped("pages"),
            "bytes_ratio": round(self.bytes_ratio, 2),
            "pickle_publish_seconds": round(self.stats["pickle"]["publish_seconds"], 4),
            "pages_publish_seconds": round(self.stats["pages"]["publish_seconds"], 4),
            "page_payloads": self.stats["pages"]["page_payloads"],
            "page_fallbacks": self.stats["pages"]["page_fallbacks"],
            "page_bytes": self.stats["pages"]["page_bytes"],
            "models_match": self.models_match,
            "final_objectives": {
                transport: round(value, 6)
                for transport, value in self.final_objectives.items()
            },
        }


def run_payload_transport_experiment(
    scale: ExperimentScale | str | None = None,
    *,
    workers: int = 2,
    epochs: int = 2,
    seed: int = 0,
) -> PayloadTransportResult:
    """Train the same model under both transports and compare shipped bytes.

    Both runs are seeded identically and execute the same process-backend
    plan (pure-UDA merged epochs — deterministic, unlike the racing
    shared-model schemes — plus a chunk-partitioned parallel loss pass), so
    the only difference is the wire encoding of the worker payloads — which
    is why bit-for-bit model parity is part of the result, not a separate
    test.
    """
    scale = resolve_scale(scale)
    # Size the dense matrix so payload bytes dominate the per-example object
    # skeleton (which ships either way): the page win is descriptor-vs-array
    # floats, and the paper's workloads carry 54-41k features per row.
    rows = max(scale.dense_examples * 2, 600)
    dimension = min(max(scale.dense_dimension, 48), 64)
    data = make_dense_classification(rows, dimension, seed=31)

    result = PayloadTransportResult(
        rows=rows, dimension=dimension, workers=workers, epochs=epochs
    )
    models: dict[str, np.ndarray] = {}
    for transport in ("pickle", "pages"):
        database = SegmentedDatabase(
            workers, "postgres", seed=seed, payload_transport=transport
        )
        try:
            load_classification_table(database, "transport", data.examples)
            task = LogisticRegressionTask(dimension, mu=0.01)
            config = IGDConfig(
                max_epochs=epochs,
                ordering="shuffle_once",
                seed=seed,
                parallelism=PureUDAParallelism(backend="process"),
                parallel_evaluation=True,
            )
            run = BismarckRunner(database, task, config).train("transport")
            pool = database.master.process_pool(workers)
            result.stats[transport] = dict(pool.transport_stats)
            result.final_objectives[transport] = run.final_objective
            models[transport] = run.model.as_flat_vector().copy()
        finally:
            database.close()
    result.models_match = bool(np.array_equal(models["pickle"], models["pages"]))
    return result
