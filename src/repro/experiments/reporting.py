"""Plain-text rendering of experiment results (the tables/figures as text)."""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = "") -> str:
    """Render a simple fixed-width text table."""
    columns = [str(h) for h in headers]
    text_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in columns]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(columns))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in text_rows)
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[object], ys: Sequence[object], *, max_points: int = 12) -> str:
    """Render a (down-sampled) x/y series as text, for figure-style outputs."""
    pairs = list(zip(xs, ys))
    if len(pairs) > max_points:
        stride = max(1, len(pairs) // max_points)
        pairs = pairs[::stride] + [pairs[-1]]
    body = ", ".join(f"({_format_cell(x)}, {_format_cell(y)})" for x, y in pairs)
    return f"{name}: {body}"


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3e}"
        return f"{value:.4g}"
    if value is None:
        return "-"
    return str(value)
