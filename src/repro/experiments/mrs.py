"""Experiments E11/E12 — Figure 10: multiplexed reservoir sampling.

Figure 10(A): objective vs. epochs for Subsampling, Clustered (no shuffle) and
MRS on the sparse LR workload, with a buffer sized at ~10% of the dataset.

Figure 10(B): for several buffer sizes, the time (and number of epochs) each
sampling scheme needs to reach 2x the optimal objective value.  Expected
shape: MRS reaches the target faster than Subsampling at every buffer size,
and both schemes improve as the buffer grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.proximal import L2Proximal
from ..core.sampling import (
    run_clustered_no_shuffle,
    run_multiplexed_reservoir_sampling,
    run_subsampling,
)
from ..data import load_classification_table, make_sparse_classification
from ..db.engine import Database
from ..tasks.logistic_regression import LogisticRegressionTask
from .harness import ExperimentScale, resolve_scale
from .reporting import render_series, render_table


@dataclass
class MRSConvergenceResult:
    """Figure 10(A): objective traces of the three schemes."""

    traces: dict[str, list[float]] = field(default_factory=dict)
    buffer_size: int = 0
    dataset_size: int = 0

    def render(self) -> str:
        lines = [
            "Figure 10A (reproduction): MRS vs Subsampling vs Clustered "
            f"(buffer {self.buffer_size} of {self.dataset_size} tuples)"
        ]
        for scheme, trace in self.traces.items():
            lines.append(render_series(scheme, list(range(1, len(trace) + 1)), trace))
        return "\n".join(lines)

    def final_objective(self, scheme: str) -> float:
        return self.traces[scheme][-1]


def _make_workload(scale: ExperimentScale, seed: int):
    dataset = make_sparse_classification(
        scale.sparse_examples,
        scale.sparse_dimension,
        nonzeros_per_example=scale.sparse_nonzeros,
        seed=seed,
    ).clustered_by_label()
    # L2-regularised LR: the regulariser keeps the optimum at a quality a
    # model trained on a without-replacement subsample can also approach,
    # mirroring the regularised objectives of Figure 1B.
    task = LogisticRegressionTask(dataset.dimension, proximal=L2Proximal(0.005))
    return dataset, task


def _load_workload_table(dataset):
    """The clustered workload as a heap table plus a shared example cache.

    The sampling runners index reservoirs into a stable table version, so one
    decode (and one chunk-plane gather per buffer) serves every run of a
    sweep — the Figure 10B buffer sweep stops re-decoding the corpus per
    (scheme, fraction) combination.
    """
    database = Database("postgres", seed=0)
    load_classification_table(database, "mrs_points", dataset.examples, sparse=True)
    return database.table("mrs_points"), database.executor.example_cache


def run_mrs_convergence(
    scale: ExperimentScale | str | None = None,
    *,
    buffer_fraction: float = 0.1,
    epochs: int | None = None,
    seed: int = 0,
) -> MRSConvergenceResult:
    """Regenerate Figure 10(A) on clustered sparse LR data."""
    scale = resolve_scale(scale)
    epochs = epochs or max(scale.max_epochs, 10)
    dataset, task = _make_workload(scale, seed)
    buffer_size = max(2, int(buffer_fraction * len(dataset)))
    step_size = {"kind": "epoch_decay", "alpha0": 0.05, "decay": 0.92}

    table, cache = _load_workload_table(dataset)
    subsampling = run_subsampling(
        table, task, buffer_size=buffer_size, step_size=step_size,
        epochs=epochs, seed=seed, cache=cache,
    )
    clustered = run_clustered_no_shuffle(
        table, task, step_size=step_size, epochs=epochs, seed=seed, cache=cache
    )
    mrs = run_multiplexed_reservoir_sampling(
        table, task, buffer_size=buffer_size, step_size=step_size,
        epochs=epochs, seed=seed, cache=cache,
    )
    return MRSConvergenceResult(
        traces={
            "subsampling": subsampling.objective_trace(),
            "clustered": clustered.objective_trace(),
            "mrs": mrs.objective_trace(),
        },
        buffer_size=buffer_size,
        dataset_size=len(dataset),
    )


# ---------------------------------------------------------------------------
# Figure 10(B): sensitivity to the buffer size
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BufferSizeRow:
    """Time/epochs to reach 2x the optimal objective for one scheme and buffer."""

    buffer_size: int
    scheme: str
    seconds_to_target: float | None
    epochs_to_target: int | None

    def as_row(self) -> tuple:
        return (
            self.buffer_size,
            self.scheme,
            f"{self.seconds_to_target:.3f}s" if self.seconds_to_target is not None else "-",
            self.epochs_to_target if self.epochs_to_target is not None else "-",
        )


@dataclass
class BufferSizeResult:
    """Figure 10(B): rows for every (buffer size, scheme) combination."""

    rows: list[BufferSizeRow] = field(default_factory=list)
    target_objective: float = float("nan")

    def render(self) -> str:
        return render_table(
            ["Buffer", "Scheme", "Time to 2x opt", "Epochs"],
            [row.as_row() for row in self.rows],
            title="Figure 10B (reproduction): runtime to reach 2x optimal objective",
        )

    def row_for(self, buffer_size: int, scheme: str) -> BufferSizeRow:
        for row in self.rows:
            if row.buffer_size == buffer_size and row.scheme == scheme:
                return row
        raise KeyError(f"no row for buffer {buffer_size} scheme {scheme!r}")


def run_buffer_size_experiment(
    scale: ExperimentScale | str | None = None,
    *,
    buffer_fractions: tuple[float, ...] = (0.05, 0.1, 0.2),
    epochs: int | None = None,
    seed: int = 0,
) -> BufferSizeResult:
    """Regenerate Figure 10(B): time to reach 2x the optimal objective vs buffer size."""
    scale = resolve_scale(scale)
    epochs = epochs or max(scale.max_epochs, 12)
    dataset, task = _make_workload(scale, seed)
    step_size = {"kind": "epoch_decay", "alpha0": 0.05, "decay": 0.92}

    # Estimate the optimal objective with a generous shuffled IGD run.
    # Permute *indices*, never np.array(examples, dtype=object): equal-length
    # examples would be reshaped into a 2-D object matrix and the "shuffled
    # reference" would train on row-slices instead of the example objects.
    shuffle = np.random.default_rng(seed).permutation(len(dataset.examples))
    reference = run_clustered_no_shuffle(
        [dataset.examples[i] for i in shuffle],
        task,
        step_size=step_size,
        epochs=epochs * 2,
        seed=seed,
    )
    optimum = min(reference.objective_trace())
    target = 2.0 * optimum

    result = BufferSizeResult(target_objective=target)
    table, cache = _load_workload_table(dataset)
    for fraction in buffer_fractions:
        buffer_size = max(2, int(fraction * len(dataset)))
        subsampling = run_subsampling(
            table, task, buffer_size=buffer_size, step_size=step_size,
            epochs=epochs, seed=seed, cache=cache,
        )
        mrs = run_multiplexed_reservoir_sampling(
            table, task, buffer_size=buffer_size, step_size=step_size,
            epochs=epochs, seed=seed, cache=cache,
        )
        for scheme, run in (("subsampling", subsampling), ("mrs", mrs)):
            seconds = None
            cumulative = 0.0
            for record in run.history:
                cumulative += record.elapsed_seconds
                if record.objective <= target:
                    seconds = cumulative
                    break
            result.rows.append(
                BufferSizeRow(
                    buffer_size=buffer_size,
                    scheme=scheme,
                    seconds_to_target=seconds,
                    epochs_to_target=run.epochs_to_reach(target),
                )
            )
    return result
