"""Experiments E4 and E8 — Figure 5 (CA-TX) and Figure 8 (data ordering).

Figure 5: the 1-D CA-TX least-squares problem run under (1) a random order and
(2) the clustered ascending-index order, tracking ``w`` over gradient steps and
the number of epochs each ordering needs to reach ``w^2 < 0.001``.

Figure 8: sparse logistic regression trained with ShuffleAlways, ShuffleOnce
and Clustered orderings, reporting (A) objective vs. epochs and (B) objective
vs. wall-clock time, plus the epoch/time-to-convergence numbers the paper
quotes in parentheses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.driver import IGDConfig, train
from ..core.ordering import make_ordering
from ..core.stepsize import DiminishingStepSize
from ..db.engine import Database
from ..data import (
    load_classification_table,
    make_catx,
    make_sparse_classification,
)
from ..tasks.least_squares import OneDimensionalLeastSquares
from ..tasks.logistic_regression import LogisticRegressionTask
from .harness import ExperimentScale, resolve_scale
from .reporting import render_series, render_table


# ---------------------------------------------------------------------------
# Figure 5 — the CA-TX example
# ---------------------------------------------------------------------------
@dataclass
class CATXResult:
    """Outcome of the CA-TX ordering comparison (Figure 5)."""

    n: int
    random_trace: list[float] = field(default_factory=list)
    clustered_trace: list[float] = field(default_factory=list)
    random_epochs_to_converge: int | None = None
    clustered_epochs_to_converge: int | None = None
    threshold: float = 1e-3

    def render(self) -> str:
        steps_random = list(range(len(self.random_trace)))
        steps_clustered = list(range(len(self.clustered_trace)))
        lines = [
            "Figure 5 (reproduction): 1-D CA-TX, w vs gradient steps",
            render_series("random", steps_random, self.random_trace),
            render_series("clustered", steps_clustered, self.clustered_trace),
            f"random converges (w^2 < {self.threshold}) in "
            f"{self.random_epochs_to_converge} epochs",
            f"clustered converges in {self.clustered_epochs_to_converge} epochs",
        ]
        return "\n".join(lines)


def _run_catx_order(
    examples: list, *, max_epochs: int, alpha0: float, power: float, threshold: float
) -> tuple[list[float], int | None]:
    """Run IGD over a fixed example order; return the w trace and epochs to converge."""
    task = OneDimensionalLeastSquares()
    model = task.initial_model()
    model["w"][0] = 1.0  # start away from the optimum, as in the paper's plot
    schedule = DiminishingStepSize(alpha0=alpha0, power=power)
    trace = [float(model["w"][0])]
    converged_at: int | None = None
    step = 0
    for epoch in range(max_epochs):
        for example in examples:
            alpha = schedule.step_size(step, epoch)
            task.gradient_step(model, example, alpha)
            step += 1
            trace.append(float(model["w"][0]))
        if converged_at is None and float(model["w"][0]) ** 2 < threshold:
            converged_at = epoch + 1
    return trace, converged_at


def run_catx_experiment(
    n: int = 500,
    *,
    max_epochs: int = 60,
    alpha0: float = 0.3,
    power: float = 0.9,
    threshold: float = 1e-3,
    seed: int = 0,
) -> CATXResult:
    """Regenerate Figure 5: random vs clustered orderings of the CA-TX data.

    The diminishing step-size rule (alpha0, power) defaults to values under
    which, for the paper's n = 500, the random ordering converges within a
    handful of epochs while the clustered ordering needs several times more —
    the same qualitative gap the paper reports (18 vs 48 epochs).
    """
    dataset = make_catx(n)
    random_trace, random_epochs = _run_catx_order(
        dataset.random_order(seed),
        max_epochs=max_epochs,
        alpha0=alpha0,
        power=power,
        threshold=threshold,
    )
    clustered_trace, clustered_epochs = _run_catx_order(
        dataset.clustered(),
        max_epochs=max_epochs,
        alpha0=alpha0,
        power=power,
        threshold=threshold,
    )
    return CATXResult(
        n=n,
        random_trace=random_trace,
        clustered_trace=clustered_trace,
        random_epochs_to_converge=random_epochs,
        clustered_epochs_to_converge=clustered_epochs,
        threshold=threshold,
    )


# ---------------------------------------------------------------------------
# Figure 8 — ShuffleAlways / ShuffleOnce / Clustered on sparse LR
# ---------------------------------------------------------------------------
@dataclass
class OrderingRun:
    """One ordering policy's convergence record."""

    policy: str
    objective_by_epoch: list[float]
    cumulative_seconds: list[float]
    shuffle_seconds: float
    epochs_to_target: int | None
    seconds_to_target: float | None


@dataclass
class DataOrderingResult:
    """Figure 8: the three ordering policies side by side."""

    runs: dict[str, OrderingRun] = field(default_factory=dict)
    target_objective: float = float("nan")

    def render(self) -> str:
        lines = ["Figure 8 (reproduction): impact of data ordering on sparse LR"]
        for name, run in self.runs.items():
            lines.append(
                render_series(
                    f"{name} (objective vs epoch)",
                    list(range(1, len(run.objective_by_epoch) + 1)),
                    run.objective_by_epoch,
                )
            )
        lines.append(
            render_table(
                ["Policy", "Epochs to target", "Seconds to target", "Shuffle seconds"],
                [
                    (
                        name,
                        run.epochs_to_target,
                        run.seconds_to_target,
                        f"{run.shuffle_seconds:.4f}",
                    )
                    for name, run in self.runs.items()
                ],
            )
        )
        return "\n".join(lines)


def run_data_ordering_experiment(
    scale: ExperimentScale | str | None = None,
    *,
    max_epochs: int | None = None,
    target_quantile: float = 0.05,
    seed: int = 0,
    ordering_mode: str = "physical",
) -> DataOrderingResult:
    """Regenerate Figure 8 on the sparse (DBLife-like) LR workload.

    The convergence target is set from the best objective reached by
    ShuffleAlways (plus a small tolerance), mirroring how the paper reports
    "reaches the same objective value as ShuffleAlways".

    ``ordering_mode`` selects how the shuffle policies reorder data.  The
    default is ``"physical"`` — the figure is *about* the wall-clock cost of
    materialising ``ORDER BY RANDOM()``, so the heap is really rewritten and
    ``shuffle_seconds`` reports that cost.  Pass ``"logical"`` to measure the
    engine's permutation-serving mode instead, where shuffles cost only a
    permutation and the example cache survives every re-shuffle.
    """
    scale = resolve_scale(scale)
    epochs = max_epochs or max(scale.max_epochs, 12)
    dataset = make_sparse_classification(
        scale.sparse_examples,
        scale.sparse_dimension,
        nonzeros_per_example=scale.sparse_nonzeros,
        seed=seed,
    ).clustered_by_label()
    task = LogisticRegressionTask(dataset.dimension)
    step_size = {"kind": "epoch_decay", "alpha0": 0.05, "decay": 0.92}

    runs: dict[str, OrderingRun] = {}
    results = {}
    for policy in ("shuffle_always", "shuffle_once", "clustered"):
        database = Database("postgres", seed=seed)
        load_classification_table(database, "dblife_like", dataset.examples, sparse=True)
        # Clustered never shuffles, so the shuffle-mode choice applies only
        # to the two shuffle policies; clustering stays physical either way.
        mode = "physical" if policy == "clustered" else ordering_mode
        ordering = make_ordering(policy, mode=mode)
        result = train(
            task,
            database,
            "dblife_like",
            config=IGDConfig(
                step_size=step_size,
                max_epochs=epochs,
                ordering=ordering,
                seed=seed,
            ),
        )
        results[policy] = result

    best = min(min(result.objective_trace()) for result in results.values())
    target = best * (1.0 + target_quantile)

    output = DataOrderingResult(target_objective=target)
    for policy, result in results.items():
        output.runs[policy] = OrderingRun(
            policy=policy,
            objective_by_epoch=result.objective_trace(),
            cumulative_seconds=result.time_trace(),
            shuffle_seconds=result.shuffle_seconds,
            epochs_to_target=result.epochs_to_reach(target),
            seconds_to_target=result.time_to_reach(target),
        )
    return output
