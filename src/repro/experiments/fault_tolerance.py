"""Fault-recovery overhead: what a killed worker costs a training run.

The supervision layer (:mod:`repro.db.supervisor`) turns worker death from
run-fatal into a recovered event; this experiment measures the price.  It
trains the same pure-UDA process-backed run twice — once clean, once with the
fault-injection harness killing a worker in the middle of a chosen epoch —
and reports the clean-epoch vs killed-epoch wall-clock, the respawn count,
and whether the recovered run's final model is still bit-for-bit the clean
one (the determinism contract: a retried pure-UDA pass re-runs exactly, so
recovery must not change a single bit of the answer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.driver import IGDConfig, train
from ..core.parallel import PureUDAParallelism
from ..data import load_classification_table, make_sparse_classification
from ..db import FaultPlan, SegmentedDatabase
from ..db.process_backend import available_cores
from ..db.supervisor import RecoveryPolicy
from ..tasks.logistic_regression import LogisticRegressionTask
from .harness import ExperimentScale, resolve_scale
from .reporting import render_table


@dataclass
class FaultRecoveryResult:
    """Clean vs killed-worker run of the same process-backed training loop."""

    workers: int
    cores: int
    epochs: int
    fault_epoch: int
    clean_total_seconds: float = 0.0
    faulted_total_seconds: float = 0.0
    #: Wall-clock of the targeted epoch without / with the injected kill —
    #: their difference is the detection + respawn + payload-replay + retry
    #: price of one worker death.
    clean_epoch_seconds: float = 0.0
    killed_epoch_seconds: float = 0.0
    respawn_count: int = 0
    payloads_replayed: int = 0
    #: The acceptance bar: the recovered run's final model must be
    #: bit-for-bit the clean run's (deterministic pure-UDA retry semantics).
    bit_for_bit: bool = False
    event_kinds: list = field(default_factory=list)

    def recovery_overhead_seconds(self) -> float:
        return self.killed_epoch_seconds - self.clean_epoch_seconds

    def render(self) -> str:
        rows = [
            ("clean", f"{self.clean_epoch_seconds:.4f}s", f"{self.clean_total_seconds:.3f}s", "-"),
            (
                "worker killed",
                f"{self.killed_epoch_seconds:.4f}s",
                f"{self.faulted_total_seconds:.3f}s",
                f"{self.respawn_count} respawn(s), {self.payloads_replayed} payload(s) replayed",
            ),
        ]
        return render_table(
            ["Run", f"Epoch {self.fault_epoch}", "Total", "Recovery"],
            rows,
            title=(
                f"Fault recovery (pure-UDA x{self.workers}, {self.cores} cores, "
                f"kill at epoch {self.fault_epoch}; overhead "
                f"{self.recovery_overhead_seconds():.4f}s; bit-for-bit: "
                f"{self.bit_for_bit})"
            ),
        )

    def bench_payload(self) -> dict:
        return {
            "workers": self.workers,
            "cores": self.cores,
            "epochs": self.epochs,
            "fault_epoch": self.fault_epoch,
            "clean_epoch_seconds": round(self.clean_epoch_seconds, 4),
            "killed_epoch_seconds": round(self.killed_epoch_seconds, 4),
            "recovery_overhead_seconds": round(self.recovery_overhead_seconds(), 4),
            "respawn_count": self.respawn_count,
            "payloads_replayed": self.payloads_replayed,
            "bit_for_bit": self.bit_for_bit,
            "event_kinds": list(self.event_kinds),
        }


def run_fault_recovery_experiment(
    scale: ExperimentScale | str | None = None,
    *,
    workers: int | None = None,
    epochs: int = 3,
    fault_epoch: int = 1,
    seed: int = 0,
) -> FaultRecoveryResult:
    """Train clean and with a mid-epoch worker kill; measure the difference.

    The workload is the sparse logistic-regression corpus on the segmented
    pure-UDA process path — deterministic end to end, so the recovered run is
    required to produce the clean run's exact final model.  The kill targets
    a gradient pass (``op=uda_state``) of the chosen epoch on worker
    ``workers - 1``; the supervised pool detects the broken pipe, respawns
    the casualty, replays its payload registry, and the pass retries.
    """
    scale = resolve_scale(scale)
    cores = available_cores()
    workers = workers or min(3, max(2, cores))
    dataset = make_sparse_classification(
        scale.sparse_examples,
        scale.sparse_dimension,
        nonzeros_per_example=scale.sparse_nonzeros,
        seed=11,
    )
    task = LogisticRegressionTask(dataset.dimension)
    policy = RecoveryPolicy(timeout=60.0, max_respawns=3, backoff=0.0)
    config = IGDConfig(
        max_epochs=epochs,
        ordering="shuffle_once",
        seed=seed,
        parallelism=PureUDAParallelism(backend="process"),
    )

    def run(faults: tuple = ()):
        database = SegmentedDatabase(
            workers, "dbms_b", seed=seed, recovery=policy, faults=faults
        )
        load_classification_table(database, "pts", dataset.examples, sparse=True)
        try:
            return train(task, database, "pts", config=config)
        finally:
            database.close_process_pools()

    clean = run()
    faulted = run(
        faults=(FaultPlan("kill", worker=workers - 1, epoch=fault_epoch, op="uda_state"),)
    )

    result = FaultRecoveryResult(
        workers=workers, cores=cores, epochs=epochs, fault_epoch=fault_epoch
    )
    result.clean_total_seconds = clean.total_seconds
    result.faulted_total_seconds = faulted.total_seconds
    result.clean_epoch_seconds = clean.history[fault_epoch].elapsed_seconds
    result.killed_epoch_seconds = faulted.history[fault_epoch].elapsed_seconds
    result.respawn_count = faulted.respawn_count
    result.payloads_replayed = sum(
        getattr(event, "payloads_replayed", 0) for event in faulted.recovery_events
    )
    result.bit_for_bit = bool(
        np.array_equal(
            clean.model.as_flat_vector(), faulted.model.as_flat_vector()
        )
    )
    result.event_kinds = [
        getattr(event, "kind", type(event).__name__)
        for event in faulted.recovery_events
    ]
    return result
