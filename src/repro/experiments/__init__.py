"""Experiment harness: one module per table/figure of the paper's evaluation."""

from .comparison import (
    BenchmarkComparisonResult,
    ComparisonRow,
    CRFComparisonResult,
    run_benchmark_comparison,
    run_crf_comparison,
)
from .datasets_table import DatasetsTableResult, build_benchmark_datasets, run_datasets_table
from .harness import (
    ExperimentScale,
    epochs_to_tolerance,
    evaluate_model,
    overhead_percent,
    resolve_scale,
    time_callable,
    time_to_tolerance,
    tolerance_target,
)
from .mrs import (
    BufferSizeResult,
    MRSConvergenceResult,
    run_buffer_size_experiment,
    run_mrs_convergence,
)
from .ordering import (
    CATXResult,
    DataOrderingResult,
    run_catx_experiment,
    run_data_ordering_experiment,
)
from .crash_recovery import CrashRecoveryResult, run_crash_recovery_experiment
from .fault_tolerance import FaultRecoveryResult, run_fault_recovery_experiment
from .overhead import OverheadRow, OverheadTableResult, run_overhead_table
from .parallelism import (
    ParallelConvergenceResult,
    SpeedupResult,
    WholeLoopResult,
    run_parallel_convergence,
    run_speedup_experiment,
    run_whole_loop_experiment,
)
from .reporting import render_series, render_table
from .scalability import ScalabilityResult, ScalabilityRow, run_scalability_experiment
from .streaming import (
    StreamingIngestResult,
    StreamingRound,
    run_streaming_ingest_experiment,
)
from .transport import PayloadTransportResult, run_payload_transport_experiment

__all__ = [
    "BenchmarkComparisonResult",
    "BufferSizeResult",
    "CATXResult",
    "CRFComparisonResult",
    "ComparisonRow",
    "CrashRecoveryResult",
    "DataOrderingResult",
    "DatasetsTableResult",
    "ExperimentScale",
    "FaultRecoveryResult",
    "MRSConvergenceResult",
    "OverheadRow",
    "OverheadTableResult",
    "ParallelConvergenceResult",
    "PayloadTransportResult",
    "ScalabilityResult",
    "ScalabilityRow",
    "SpeedupResult",
    "StreamingIngestResult",
    "StreamingRound",
    "WholeLoopResult",
    "build_benchmark_datasets",
    "epochs_to_tolerance",
    "evaluate_model",
    "overhead_percent",
    "render_series",
    "render_table",
    "resolve_scale",
    "run_benchmark_comparison",
    "run_buffer_size_experiment",
    "run_catx_experiment",
    "run_crash_recovery_experiment",
    "run_crf_comparison",
    "run_data_ordering_experiment",
    "run_fault_recovery_experiment",
    "run_datasets_table",
    "run_mrs_convergence",
    "run_overhead_table",
    "run_parallel_convergence",
    "run_payload_transport_experiment",
    "run_scalability_experiment",
    "run_speedup_experiment",
    "run_streaming_ingest_experiment",
    "run_whole_loop_experiment",
    "time_callable",
    "time_to_tolerance",
    "tolerance_target",
]
