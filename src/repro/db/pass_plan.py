"""Backend-neutral pass compilation: every per-epoch pass becomes a PassPlan.

Bismarck's thesis is that one aggregate architecture serves every analytics
task; this module is the layer that makes the *execution* side of that claim
real.  Every pass the driver or the experiment harness runs per epoch —

* the **gradient epoch** (IGD as a UDA),
* the **loss/objective** pass behind the stopping rule,
* the **accuracy/metric** evaluation passes, and
* **generic** (non-task) SQL aggregates —

compiles to a small :class:`PassPlan` (pass kind, table + version snapshot,
WHERE / row-order, execution mode, parallel width, merge contract), and a
single :class:`ExecutionBackend` protocol executes the plan on any of the
four backends: serial, in-process shared-memory (the cooperative epoch
simulation), segmented pure-UDA, or the forked
:class:`~repro.db.process_backend.ProcessWorkerPool`.  The driver's old
spec×backend ``if/elif`` ladder collapses into ``compile_pass(...)`` +
``backend.run(plan)``, and — because loss/accuracy/generic passes ride the
same plans — a ``backend="process"`` run parallelises the *whole* training
loop, not just the gradient pass.

Merge contract (what makes plans backend-portable):

* a plan is **mergeable** when its aggregate provides ``merge``; partial
  states always merge **left-to-right in partition order** and only then
  ``terminate`` — every backend implements exactly this order, which is what
  makes a process run bit-for-bit its serial counterpart;
* **chunk-partitioned** plans additionally require the aggregate to declare
  ``chunk_partitionable`` (scalar reductions: loss, accuracy): whole cached
  chunks are dealt round-robin to workers and consumed vectorized;
* order-sensitive aggregates (IGD) partition by **example ordinal** —
  round-robin over the composed WHERE + row-order visit sequence, the same
  layout the segmented engine gives shared-nothing segments;
* aggregates without a decoding task partition by **raw row** and ship the
  picklable argument expression (plus any scalar UDFs it references).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from .errors import ExecutionError, WorkerDiedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.model import Model
    from ..core.proximal import ProximalOperator
    from ..core.stepsize import StepSizeSchedule
    from ..tasks.base import Task
    from .aggregates import UserDefinedAggregate
    from .engine import Database
    from .expressions import Expression
    from .parallel import SegmentedDatabase
    from .table import Table

PASS_KINDS = ("train", "loss", "accuracy", "generic")


@dataclass
class TrainEpochContext:
    """Everything a training-epoch plan carries beyond the aggregate pass.

    The shared-memory backends do not run the UDA protocol at all — they race
    workers on one shared model — so the plan keeps the raw ingredients
    (task, model, schedule, proximal, epoch bookkeeping, parallelism spec)
    alongside the aggregate factory that the UDA backends use.
    """

    task: "Task"
    model: "Model"
    schedule: "StepSizeSchedule"
    proximal: "ProximalOperator"
    epoch: int = 0
    step_offset: int = 0
    spec: Any = None
    batch_size: int = 1
    #: Per-segment visit orders for the segmented (pure-UDA) backend; the
    #: plan-level ``row_order`` covers the single-table backends.
    segment_row_orders: "Sequence[Sequence[int] | None] | None" = None


@dataclass
class PassPlan:
    """One compiled, backend-neutral pass over one table."""

    kind: str
    table: "Table"
    #: Table version snapshotted at compile time.  Backends re-validate the
    #: snapshot before running: append-only deltas (per the table's version
    #: ledger) refresh the plan to the current version, while rewrites —
    #: which invalidate the cached chunk plane — are refused.
    version: int = 0
    #: Row count snapshotted at compile time and refreshed by
    #: :meth:`revalidate` on append-only deltas.
    num_rows: int = 0
    factory: "Callable[[], UserDefinedAggregate] | None" = None
    argument: "Expression | None" = None
    where: "Expression | None" = None
    row_order: "Sequence[int] | None" = None
    execution: str = "auto"
    #: Requested parallel width.  1 compiles to a plain serial pass; the
    #: effective width is never more than the number of partitionable items.
    workers: int = 1
    mergeable: bool = True
    #: True when the aggregate declared ``chunk_partitionable`` (scalar
    #: reduction) — parallel backends deal whole cached chunks to workers.
    chunk_partitionable: bool = False
    #: Compute dtype of the chunk plane for this pass: ``"float64"`` (the
    #: bit-for-bit default) or ``"float32"`` (opt-in, halves chunk bytes).
    #: Backends install it on the executor for the duration of the pass.
    compute_dtype: str = "float64"
    train: TrainEpochContext | None = None

    def revalidate(self) -> "PassPlan":
        """Refresh the plan's version snapshot across append-only deltas.

        A plan compiled at version *v* can keep running at *v+k* when the
        table's ledger shows every intervening mutation appended rows at the
        tail: the cached chunk plane extends rather than invalidates, so the
        plan only needs its version and row-count snapshots re-taken — no
        recompilation.  A rewrite delta (shuffle, cluster, truncate, or a
        range the ledger no longer covers) raises :class:`ExecutionError`
        naming the mutating operation recorded in the ledger.
        """
        delta = self.table.classify_delta(self.version)
        if delta.is_same:
            return self
        if delta.is_append:
            self.version = self.table.version
            self.num_rows = len(self.table)
            return self
        operation = delta.op or "unknown"
        raise ExecutionError(
            f"stale PassPlan: table {self.table.name!r} was rewritten by "
            f"{operation!r} (plan compiled at version {self.version}, table "
            f"now at version {self.table.version}); appends revalidate "
            "automatically but physical rewrites require recompiling the pass"
        )

    def check_version(self) -> None:
        """Backend entry point: revalidate, absorbing append-only deltas."""
        self.revalidate()

    def describe(self) -> str:
        width = f"x{self.workers}" if self.workers > 1 else ""
        return f"{self.kind}({self.table.name}@v{self.version}){width}"


def compile_pass(
    kind: str,
    table: "Table",
    factory: "Callable[[], UserDefinedAggregate] | None",
    *,
    argument: "Expression | None" = None,
    where: "Expression | None" = None,
    row_order: "Sequence[int] | None" = None,
    execution: str = "auto",
    workers: int = 1,
    compute_dtype: str = "float64",
    train: TrainEpochContext | None = None,
) -> PassPlan:
    """Compile one pass to a backend-neutral plan.

    Probes one aggregate instance from ``factory`` for its merge contract
    (``supports_merge``, ``chunk_partitionable``); the probe is cheap — the
    factories build configuration-only objects.
    """
    if kind not in PASS_KINDS:
        raise ExecutionError(f"unknown pass kind {kind!r}; expected one of {PASS_KINDS}")
    if execution not in ("per_tuple", "chunked", "auto"):
        raise ExecutionError(f"unknown execution mode {execution!r}")
    if workers <= 0:
        raise ExecutionError("pass workers must be positive")
    if compute_dtype not in ("float64", "float32"):
        raise ExecutionError(
            f"unknown compute dtype {compute_dtype!r}; expected 'float64' or 'float32'"
        )
    if kind == "train" and train is None:
        raise ExecutionError("train passes require a TrainEpochContext")
    mergeable = True
    chunk_partitionable = False
    if factory is not None:
        probe = factory()
        mergeable = probe.supports_merge
        chunk_partitionable = bool(
            getattr(probe, "chunk_partitionable", False) and probe.supports_chunks
        )
    return PassPlan(
        kind=kind,
        table=table,
        version=table.version,
        num_rows=len(table),
        factory=factory,
        argument=argument,
        where=where,
        row_order=row_order,
        execution=execution,
        workers=workers,
        mergeable=mergeable,
        chunk_partitionable=chunk_partitionable,
        compute_dtype=compute_dtype,
        train=train,
    )


@contextmanager
def _pass_compute_dtype(executor: Any, plan: PassPlan):
    """Install the plan's compute dtype on the executor for one pass.

    The executor attribute is what the chunk-plan resolution (and through it
    the cache and the process backend's payload keys) reads; restoring it on
    exit keeps a float32 pass from leaking its dtype into unrelated passes
    on the same engine.
    """
    previous = getattr(executor, "compute_dtype", "float64")
    executor.compute_dtype = plan.compute_dtype
    try:
        yield executor
    finally:
        executor.compute_dtype = previous


# ---------------------------------------------------------------------------
# The backend protocol and its four implementations
# ---------------------------------------------------------------------------
class ExecutionBackend:
    """Executes compiled pass plans.  ``run`` returns the pass value —
    ``(model, steps)`` for train plans, the aggregate result otherwise."""

    name = "backend"

    def run(self, plan: PassPlan) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _steps_taken(model: "Model", step_offset: int, fallback: int) -> int:
    steps = int(model.metadata.get("gradient_steps", fallback)) - step_offset
    return max(steps, 0)


class SerialBackend(ExecutionBackend):
    """Runs plans in this process on the engine's executor.

    Multi-partition mergeable plans run the *reference partitioned pass* —
    the identical partition layout, per-item operations and left-to-right
    merge the process backend uses — sequentially, which is what gives every
    parallel backend an in-process bit-for-bit counterpart.
    """

    name = "serial"

    def __init__(self, engine: "Database"):
        self.engine = engine

    def run(self, plan: PassPlan) -> Any:
        plan.check_version()
        with _pass_compute_dtype(self.engine.executor, plan) as executor:
            return self._run(executor, plan)

    def _run(self, executor: Any, plan: PassPlan) -> Any:
        if plan.kind == "train":
            context = plan.train
            model = executor.run_aggregate(
                plan.table,
                plan.factory(),
                where=plan.where,
                row_order=plan.row_order,
                execution=plan.execution,
            )
            return model, _steps_taken(model, context.step_offset, len(plan.table))
        if plan.workers > 1 and plan.mergeable and plan.execution != "per_tuple":
            instance = plan.factory()
            wants_chunks = (
                getattr(instance, "chunk_partitionable", False)
                and plan.where is None
                and plan.row_order is None
            )
            if wants_chunks and instance.supports_chunks:
                from .executor import _CHUNKS_UNSUPPORTED

                outcome = executor.run_chunk_partitioned(
                    plan.table, instance, plan.workers
                )
                if outcome is not _CHUNKS_UNSUPPORTED:
                    return outcome
            if plan.execution == "chunked" and (
                wants_chunks or instance.chunk_decoder is None
            ):
                # Same contract as the single-pass executor and the process
                # backend: an explicit "chunked" request errors instead of
                # silently degrading to per-item transitions.
                raise ExecutionError(
                    f"aggregate {type(instance).__name__} cannot run chunked over "
                    f"table {plan.table.name!r} (unsupported aggregate, task or "
                    "column types)"
                )
            return executor.run_row_partitioned(
                plan.table,
                instance,
                plan.workers,
                where=plan.where,
                row_order=plan.row_order,
                argument=plan.argument,
            )
        return executor.run_aggregate(
            plan.table,
            plan.factory(),
            plan.argument,
            where=plan.where,
            row_order=plan.row_order,
            execution=plan.execution,
        )


class SharedMemoryBackend(ExecutionBackend):
    """The cooperative in-process shared-memory epoch (deterministic traces)."""

    name = "shared_memory"

    def __init__(self, engine: "Database"):
        self.engine = engine

    def run(self, plan: PassPlan) -> Any:
        from .shared_memory import run_shared_memory_epoch

        plan.check_version()
        if plan.kind != "train":
            raise ExecutionError(
                "the shared-memory epoch backend only executes train plans; "
                "evaluation passes compile to the serial or process backends"
            )
        context = plan.train
        executor = self.engine.executor
        cache = None if plan.execution == "per_tuple" else executor.example_cache
        return run_shared_memory_epoch(
            plan.table,
            context.task,
            context.model,
            context.schedule,
            spec=context.spec,
            epoch=context.epoch,
            step_offset=context.step_offset,
            proximal=context.proximal,
            arena=self.engine.shared_memory,
            charge_per_tuple=executor._charge_overhead,
            cache=cache,
            row_order=plan.row_order,
        )


class SegmentedBackend(ExecutionBackend):
    """Shared-nothing segments merged by the aggregate's ``merge`` function.

    ``process=True`` runs each segment in its own OS worker (bit-for-bit the
    in-process result — same partitions, same merge order).
    """

    name = "segmented"

    def __init__(self, database: "SegmentedDatabase", *, process: bool = False):
        self.database = database
        self.process = process

    def run(self, plan: PassPlan) -> Any:
        """Run the plan; process-backed segment runs retry and degrade.

        Pure-UDA segment passes are deterministic (shared-nothing partitions,
        left-to-right merge), so after a supervised pool respawns its
        casualties the pass simply re-runs bit-for-bit; once the respawn
        budget is exhausted, the run degrades to the in-process segmented
        engine — the same partitions on one core — with a DegradationEvent.
        """
        if not self.process:
            return self._run(plan, "in_process")
        engine = _engine_of(self.database)
        if getattr(engine, "process_degraded", False):
            return self._degrade(
                plan, reason="process backend degraded earlier in this run"
            )
        while True:
            try:
                return self._run(plan, "process")
            except WorkerDiedError as error:
                if error.recoverable:
                    continue
                engine.mark_process_degraded()
                return self._degrade(plan, reason=str(error))

    def _degrade(self, plan: PassPlan, *, reason: str) -> Any:
        from .supervisor import DegradationEvent

        _engine_of(self.database).record_recovery_event(
            DegradationEvent(
                plan_kind=plan.kind,
                from_backend="segmented_process",
                to_backend="segmented",
                reason=reason,
            )
        )
        return self._run(plan, "in_process")

    def _run(self, plan: PassPlan, backend: str) -> Any:
        plan.check_version()
        if plan.kind == "train":
            context = plan.train
            outcome = self.database.run_parallel_aggregate(
                plan.table.name,
                plan.factory,
                segment_row_orders=context.segment_row_orders,
                execution=plan.execution,
                backend=backend,
            )
            model: "Model" = outcome.value
            return model, _steps_taken(model, context.step_offset, len(plan.table))
        outcome = self.database.run_parallel_aggregate(
            plan.table.name,
            plan.factory,
            plan.argument,
            where=plan.where,
            execution=plan.execution,
            backend=backend,
        )
        return outcome.value


class ProcessBackend(ExecutionBackend):
    """Runs plans on the engine's persistent forked worker pool.

    Train plans with a shared-memory spec race real OS workers on the
    mmap-shared model; every other plan fans out over the pool with the
    partition strategy the plan's merge contract picks (chunks, examples or
    raw rows) and merges partials left-to-right — bit-for-bit the
    :class:`SerialBackend` reference of the same plan.

    Self-healing: the engine's pools are supervised, so worker death or a
    blown reply deadline surfaces as a *recoverable*
    :class:`~repro.db.errors.WorkerDiedError` after the pool respawned the
    casualties — this backend then retries the pass.  Retry semantics follow
    the plan's determinism contract: mergeable aggregate passes re-run
    bit-for-bit (nothing was mutated — the aborted partials were discarded),
    while racy shared-memory train epochs restore the model from a snapshot
    taken at epoch start, so a retried epoch never trains on the half-written
    model the failed attempt raced on.  When the respawn budget is exhausted
    (``recoverable=False``) the pass walks the degradation ladder — train
    plans fall back to the cooperative shared-memory backend, then serial;
    evaluation plans fall straight to serial — emitting a structured
    :class:`~repro.db.supervisor.DegradationEvent` instead of raising, and
    the engine's sticky ``process_degraded`` flag routes every later plan of
    the run down the ladder immediately rather than rebuilding (and
    re-losing) a pool each epoch.
    """

    name = "process"

    def __init__(self, engine: "Database"):
        self.engine = engine

    def run(self, plan: PassPlan) -> Any:
        plan.check_version()
        if plan.execution == "per_tuple":
            raise ExecutionError(
                "the process backend serves passes from the cached chunk "
                "plane and cannot replay the per-tuple engine protocol"
            )
        if getattr(self.engine, "process_degraded", False):
            return self._degrade(
                plan, reason="process backend degraded earlier in this run"
            )
        snapshot = None
        if plan.kind == "train":
            # Racy shared-memory epochs mutate the mmap'd model in place; a
            # retried epoch must start from the epoch-start model, not from
            # whatever the aborted attempt half-wrote.
            snapshot = plan.train.model.as_flat_vector()
        while True:
            try:
                return self._execute(plan)
            except WorkerDiedError as error:
                # The aborted epoch's scratch segment is freed by the runner's
                # finally, but sweep defensively: a retry re-allocates under
                # the same logical name and must find it free.
                self.engine.shared_memory.sweep_orphans()
                if snapshot is not None:
                    plan.train.model.load_flat_vector(snapshot)
                if error.recoverable:
                    continue  # the pool healed itself; re-run the pass
                self.engine.mark_process_degraded()
                return self._degrade(plan, reason=str(error))

    def _execute(self, plan: PassPlan) -> Any:
        with _pass_compute_dtype(self.engine.executor, plan) as executor:
            return self._execute_with(executor, plan)

    def _execute_with(self, executor: Any, plan: PassPlan) -> Any:
        if plan.kind == "train":
            from .process_backend import run_process_shared_memory_epoch
            from .shared_memory import SharedMemoryParallelism

            context = plan.train
            if not isinstance(context.spec, SharedMemoryParallelism):
                raise ExecutionError(
                    "process train plans require a SharedMemoryParallelism "
                    "spec; pure-UDA process epochs run on the segmented "
                    "backend with process=True"
                )
            return run_process_shared_memory_epoch(
                plan.table,
                context.task,
                context.model,
                context.schedule,
                spec=context.spec,
                pool=self.engine.process_pool(context.spec.workers),
                arena=self.engine.shared_memory,
                cache=executor.example_cache,
                epoch=context.epoch,
                step_offset=context.step_offset,
                proximal=context.proximal,
                row_order=plan.row_order,
                charge_per_worker=executor._charge_overhead,
            )
        from .process_backend import run_process_aggregate

        return run_process_aggregate(
            executor,
            plan.table,
            plan.factory(),
            pool=self.engine.process_pool(plan.workers),
            where=plan.where,
            row_order=plan.row_order,
            workers=plan.workers,
            argument=plan.argument,
            execution=plan.execution,
        )

    def _degrade(self, plan: PassPlan, *, reason: str) -> Any:
        """Walk the ladder: train → shared_memory → serial; else → serial."""
        from .supervisor import DegradationEvent

        engine = self.engine
        if plan.kind == "train":
            engine.record_recovery_event(
                DegradationEvent(
                    plan_kind=plan.kind,
                    from_backend="process",
                    to_backend="shared_memory",
                    reason=reason,
                )
            )
            try:
                return SharedMemoryBackend(engine).run(plan)
            except ExecutionError as error:
                engine.record_recovery_event(
                    DegradationEvent(
                        plan_kind=plan.kind,
                        from_backend="shared_memory",
                        to_backend="serial",
                        reason=str(error),
                    )
                )
                return SerialBackend(engine).run(plan)
        engine.record_recovery_event(
            DegradationEvent(
                plan_kind=plan.kind,
                from_backend="process",
                to_backend="serial",
                reason=reason,
            )
        )
        return SerialBackend(engine).run(plan)


# ---------------------------------------------------------------------------
# Backend resolution (the driver's former if/elif ladder, as data)
# ---------------------------------------------------------------------------
def _engine_of(database: "Database | SegmentedDatabase") -> "Database":
    from .parallel import SegmentedDatabase

    return database.master if isinstance(database, SegmentedDatabase) else database


def epoch_backend(database: "Database | SegmentedDatabase", spec: Any) -> ExecutionBackend:
    """The backend that executes a training-epoch plan under ``spec``."""
    from ..core.parallel import PureUDAParallelism
    from .parallel import SegmentedDatabase
    from .shared_memory import SharedMemoryParallelism

    if isinstance(spec, SharedMemoryParallelism):
        engine = _engine_of(database)
        if spec.backend == "process":
            return ProcessBackend(engine)
        return SharedMemoryBackend(engine)
    if isinstance(spec, PureUDAParallelism):
        if not isinstance(database, SegmentedDatabase):
            raise TypeError(
                "pure-UDA parallelism requires a SegmentedDatabase "
                "(shared-nothing segments)"
            )
        return SegmentedBackend(database, process=spec.backend == "process")
    return SerialBackend(_engine_of(database))


def evaluation_backend(
    database: "Database | SegmentedDatabase", spec: Any
) -> tuple[ExecutionBackend, int]:
    """(backend, workers) for the loss/accuracy passes of a run under ``spec``.

    Process-backed training runs evaluate on the same worker pool (the whole
    loop parallelises); in-process runs keep the serial vectorized evaluation
    — on one core the chunked kernels already win, and the deterministic
    figures pin their exact values.
    """
    from ..core.parallel import PureUDAParallelism
    from .parallel import SegmentedDatabase
    from .shared_memory import SharedMemoryParallelism

    engine = _engine_of(database)
    if isinstance(spec, SharedMemoryParallelism) and spec.backend == "process":
        return ProcessBackend(engine), spec.workers
    if isinstance(spec, PureUDAParallelism) and spec.backend == "process":
        workers = (
            database.num_segments if isinstance(database, SegmentedDatabase) else 1
        )
        return ProcessBackend(engine), max(workers, 1)
    return SerialBackend(engine), 1
