"""In-memory RDBMS substrate for the Bismarck reproduction.

The package provides the database features the paper relies on:

* heap tables with clustering/shuffling (:mod:`repro.db.table`),
* a mini-SQL layer (:mod:`repro.db.parser`, :mod:`repro.db.executor`),
* user-defined aggregates with the standard ``initialize / transition /
  terminate`` (+ ``merge``) contract (:mod:`repro.db.aggregates`),
* a simulated shared-memory facility (:mod:`repro.db.shared_memory`),
* a single-node engine with per-engine cost personalities
  (:mod:`repro.db.engine`) and a segmented parallel engine
  (:mod:`repro.db.parallel`).
"""

from .aggregates import (
    AggregateRegistry,
    FunctionalAggregate,
    NullAggregate,
    UserDefinedAggregate,
)
from .engine import (
    DBMS_A,
    DBMS_B,
    PERSONALITIES,
    POSTGRES,
    Database,
    EnginePersonality,
    connect,
)
from .checkpoint import (
    CheckpointManager,
    RecoveryReport,
    TrainingState,
    recover_database,
)
from .errors import (
    CatalogError,
    DatabaseError,
    DuplicateTableError,
    EnvSpecError,
    ExecutionError,
    ParseError,
    SchemaError,
    SharedMemoryError,
    TypeMismatchError,
    UnknownColumnError,
    UnknownFunctionError,
    UnknownTableError,
    WorkerDiedError,
)
from .fault import (
    COMPUTE_OPS,
    CRASH_OPS,
    CrashInjector,
    CrashPlan,
    FaultInjected,
    FaultPlan,
    crashes_from_env,
    faults_from_env,
    parse_crash_spec,
    parse_fault_spec,
)
from .wal import DurabilityPolicy, WriteAheadLog, iter_wal_records, repair_wal_directory
from .chunk_plan import ChunkPlan, partition_round_robin, resolve_ordinals, split_round_robin
from .executor import QueryResult
from .parallel import ParallelAggregateResult, SegmentedDatabase
from .pass_plan import (
    PASS_KINDS,
    ExecutionBackend,
    PassPlan,
    ProcessBackend,
    SegmentedBackend,
    SerialBackend,
    SharedMemoryBackend,
    TrainEpochContext,
    compile_pass,
    epoch_backend,
    evaluation_backend,
)
from .process_backend import (
    ProcessWorkerPool,
    available_cores,
    default_process_workers,
    run_process_shared_memory_epoch,
)
from .supervisor import (
    DegradationEvent,
    RecoveryEvent,
    RecoveryPolicy,
    SupervisedWorkerPool,
)
from .shared_memory import (
    SHARED_MEMORY_SCHEMES,
    SharedMemoryArena,
    SharedMemoryParallelism,
    SharedSegment,
    run_shared_memory_epoch,
)
from .table import Table
from .types import Column, ColumnType, Row, Schema

__all__ = [
    "AggregateRegistry",
    "CatalogError",
    "ChunkPlan",
    "ExecutionBackend",
    "PASS_KINDS",
    "PassPlan",
    "ProcessBackend",
    "SegmentedBackend",
    "SerialBackend",
    "SharedMemoryBackend",
    "TrainEpochContext",
    "compile_pass",
    "epoch_backend",
    "evaluation_backend",
    "resolve_ordinals",
    "split_round_robin",
    "COMPUTE_OPS",
    "CRASH_OPS",
    "CheckpointManager",
    "Column",
    "CrashInjector",
    "CrashPlan",
    "ColumnType",
    "DBMS_A",
    "DegradationEvent",
    "DBMS_B",
    "Database",
    "DatabaseError",
    "DuplicateTableError",
    "DurabilityPolicy",
    "EnginePersonality",
    "EnvSpecError",
    "ExecutionError",
    "FaultInjected",
    "FaultPlan",
    "FunctionalAggregate",
    "NullAggregate",
    "PERSONALITIES",
    "POSTGRES",
    "ParallelAggregateResult",
    "ParseError",
    "ProcessWorkerPool",
    "QueryResult",
    "RecoveryEvent",
    "RecoveryPolicy",
    "RecoveryReport",
    "Row",
    "SHARED_MEMORY_SCHEMES",
    "Schema",
    "SchemaError",
    "SegmentedDatabase",
    "SharedMemoryArena",
    "SharedMemoryError",
    "SharedMemoryParallelism",
    "SharedSegment",
    "SupervisedWorkerPool",
    "Table",
    "TrainingState",
    "TypeMismatchError",
    "UnknownColumnError",
    "UnknownFunctionError",
    "UnknownTableError",
    "WorkerDiedError",
    "WriteAheadLog",
    "available_cores",
    "connect",
    "crashes_from_env",
    "default_process_workers",
    "faults_from_env",
    "iter_wal_records",
    "parse_crash_spec",
    "parse_fault_spec",
    "partition_round_robin",
    "recover_database",
    "repair_wal_directory",
    "run_process_shared_memory_epoch",
    "run_shared_memory_epoch",
]
