"""Real multi-process execution over the cached chunk plane.

This is the backend that turns the repo's parallelism story from *modelled*
to *measured*: OS worker processes race on a single mmap-shared model
(:mod:`repro.db.shared_memory` arena segments) or train shared-nothing
partitions that are merged by the pure-UDA ``merge`` function — the two
parallelisation mechanisms of Section 3.3, executed by real processes rather
than a cooperative in-process simulation.

Architecture:

* :class:`ProcessWorkerPool` — a persistent pool of **forked** worker
  processes connected by pipes.  Workers are long-lived so per-epoch cost is
  one small message per worker, not a process spawn; the publication lock is
  created *before* the fork so every worker inherits the same OS semaphore.
* **Pickled-once chunk payloads** — the decoded example list for a (table,
  version) is resolved through the shared
  :class:`~repro.tasks.base.ExampleCache` (the chunk plane's decode-once
  contract), pickled once, and shipped to each worker, which caches it by
  key.  Subsequent epochs send only ordinal arrays — a logical shuffle never
  re-ships a single example.
* **Round-robin range assignment** —
  :func:`~repro.db.chunk_plan.partition_round_robin` is the partitioning
  contract shared with the in-process backends, which is what makes the
  pure-UDA process path *bit-for-bit identical* to the in-process segmented
  engine: same partitions, same per-example float operations, same
  left-to-right merge.
* **Shared-memory epochs** — each worker attaches to the model segment's OS
  name and publishes per-staleness-batch deltas: racy in-place adds
  (``nolock`` — true Hogwild on the mmap'd pages), a brief critical section
  per published delta (``aig`` — modelling batched per-component atomics),
  or the whole read-compute-write cycle under the lock (``lock``, which is
  why the Lock scheme measures ~1x in Figure 9B).

Determinism contract: pure-UDA runs are deterministic and bit-for-bit equal
to the in-process backends for a fixed seed and worker count; the
shared-memory schemes are genuinely racy (that is the point) and are pinned
by statistical objective-band assertions instead.
"""

from __future__ import annotations

import atexit
import io
import os
import pickle
import time
import traceback
import weakref
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from .aggregates import merge_partial_states
from .chunk_plan import resolve_ordinals, split_round_robin
from .errors import EnvSpecError, ExecutionError, WorkerDiedError
from .fault import FaultInjector, FaultPlan
from .shared_memory import (
    ChunkPageSet,
    SharedMemoryArena,
    SharedMemoryParallelism,
    attach_chunk_pages,
    attach_shared_array,
    fork_context,
)
from .table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.model import Model
    from ..tasks.base import ExampleCache
    from .aggregates import UserDefinedAggregate
    from .executor import Executor


def available_cores() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def default_process_workers() -> int:
    """Default pool size for the process backend: one worker per core."""
    return max(1, available_cores())


# ---------------------------------------------------------------------------
# Payload transport: zero-copy chunk pages vs pickled bytes
# ---------------------------------------------------------------------------
#: Transport modes.  ``auto`` (the default) publishes any payload containing
#: dense numeric arrays as shared-memory chunk pages and pickles the rest;
#: ``pages`` is the same policy spelled as an explicit request (useful to CI);
#: ``pickle`` forces the PR-4 pickled-bytes transport everywhere.
PAYLOAD_TRANSPORTS = ("auto", "pages", "pickle")


def resolve_payload_transport(environ: "Mapping[str, str] | None" = None) -> str:
    """Payload transport from ``REPRO_PAYLOAD_TRANSPORT`` (default ``auto``)."""
    environ = os.environ if environ is None else environ
    raw = environ.get("REPRO_PAYLOAD_TRANSPORT")
    if raw is None or not raw.strip():
        return "auto"
    value = raw.strip().lower()
    if value not in PAYLOAD_TRANSPORTS:
        raise EnvSpecError(
            f"REPRO_PAYLOAD_TRANSPORT={raw!r} is not a known transport; "
            f"expected one of {PAYLOAD_TRANSPORTS}"
        )
    return value


class _PagingPickler(pickle.Pickler):
    """Pickles a payload skeleton, lifting dense arrays out into a page list.

    Every non-object-dtype ndarray in the object graph is replaced by a
    persistent-id stub (its index in :attr:`arrays`); everything else — CRF
    metadata, task objects, Python lists, labels wrapped in examples —
    pickles as usual.  Walking the graph through the pickler itself means
    any payload shape (``ExampleBatch`` chunk lists, ``(examples, task)``
    tuples, raw ``Row`` blocks) pages its arrays with no per-type code.
    """

    def __init__(self, buffer: io.BytesIO):
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self.arrays: list[np.ndarray] = []
        self._seen: dict[int, int] = {}

    def persistent_id(self, obj: Any) -> "int | None":
        if type(obj) is np.ndarray and not obj.dtype.hasobject:
            ref = self._seen.get(id(obj))
            if ref is None:
                ref = len(self.arrays)
                self.arrays.append(obj)
                self._seen[id(obj)] = ref
            return ref
        return None


class _PageViewUnpickler(pickle.Unpickler):
    """Rebuilds a paged skeleton, resolving array stubs to zero-copy views."""

    def __init__(self, skeleton: bytes, views: "Sequence[np.ndarray]"):
        super().__init__(io.BytesIO(skeleton))
        self._views = views

    def persistent_load(self, pid: int) -> np.ndarray:
        return self._views[pid]


class _PagedPayload:
    """Page-transport wire form: a page descriptor plus the pickled skeleton.

    This is what ``pickle.loads`` on the worker side yields for a paged
    shipment — a few hundred bytes no matter how large the payload arrays
    are.  :meth:`attach` maps the pages and rebuilds the original object
    with every dense array replaced by a zero-copy view.
    """

    __slots__ = ("descriptor", "skeleton")

    def __init__(self, descriptor: Any, skeleton: bytes):
        self.descriptor = descriptor
        self.skeleton = skeleton

    def __getstate__(self) -> tuple:
        return (self.descriptor, self.skeleton)

    def __setstate__(self, state: tuple) -> None:
        self.descriptor, self.skeleton = state

    def attach(self) -> "tuple[Any, Any]":
        shm, views = attach_chunk_pages(self.descriptor)
        payload = _PageViewUnpickler(self.skeleton, views).load()
        return payload, shm


#: Worker-side shared-memory handles whose ``close()`` raised BufferError
#: (a dropped payload's views were still exported).  Held so their __del__
#: cannot re-raise at GC time; the mapping dies with the worker process.
_WORKER_DEFERRED_HANDLES: list = []


def _release_page_handles(handles: "list | None") -> None:
    """Close a dropped payload's page mappings (worker side).  Idempotent."""
    if not handles:
        return
    for shm in handles:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - view still referenced
            _WORKER_DEFERRED_HANDLES.append(shm)
    handles.clear()


def _decode_payload(data: bytes, handles: list) -> Any:
    """Unpickle a shipped payload; paged shipments attach zero-copy views.

    ``handles`` collects the shared-memory mappings the decoded payload's
    views depend on; the caller owns releasing them when the payload is
    replaced or dropped.
    """
    obj = pickle.loads(data)
    if isinstance(obj, _PagedPayload):
        payload, shm = obj.attach()
        handles.append(shm)
        return payload
    return obj


# ---------------------------------------------------------------------------
# Worker entrypoint
# ---------------------------------------------------------------------------
def _flat_view_model(template: "Model") -> "tuple[Model, np.ndarray]":
    """A model whose components are views into one flat buffer.

    ``flat`` and the model alias the same memory, laid out exactly like
    :meth:`Model.as_flat_vector` (sorted component names, ravelled), so
    reading a snapshot is one ``copyto`` and publishing a delta is one
    subtraction — no per-batch concatenate/reload round-trips in the hot
    worker loop.
    """
    from ..core.model import Model

    flat = np.zeros(template.num_parameters)
    components = {}
    offset = 0
    for name in sorted(template.component_names()):
        array = template[name]
        components[name] = flat[offset:offset + array.size].reshape(array.shape)
        offset += array.size
    return Model(components), flat


def _run_shmem_epoch(payloads: dict, lock, params: Mapping[str, Any]) -> int:
    """One worker's share of a shared-memory epoch against the mmap'd model."""
    from ..core.proximal import IdentityProximal

    examples, task = payloads[params["key"]]
    schedule = params["schedule"]
    proximal = params["proximal"]
    apply_proximal = not isinstance(proximal, IdentityProximal)
    epoch = params["epoch"]
    step_offset = params["step_offset"]
    staleness = params["staleness"]
    scheme = params["scheme"]
    global_ordinals = params["global_ordinals"]
    example_ordinals = params["example_ordinals"]
    model, flat = _flat_view_model(params["model_template"])

    shm, shared = attach_shared_array(params["os_name"], params["shape"])
    steps = 0
    try:
        for start in range(0, global_ordinals.shape[0], staleness):
            batch_g = global_ordinals[start:start + staleness]
            batch_e = example_ordinals[start:start + staleness]
            if scheme == "lock":
                # The Lock scheme serialises the whole read-compute-write
                # cycle on the model lock: gradient work cannot overlap,
                # which is exactly why it measures ~1x.
                with lock:
                    np.copyto(flat, shared)
                    for g, e in zip(batch_g, batch_e):
                        alpha = schedule.step_size(step_offset + int(g), epoch)
                        task.gradient_step(model, examples[int(e)], alpha)
                        if apply_proximal:
                            proximal.apply(model, alpha)
                    np.copyto(shared, flat)
            else:
                snapshot = shared.copy()
                np.copyto(flat, snapshot)
                for g, e in zip(batch_g, batch_e):
                    alpha = schedule.step_size(step_offset + int(g), epoch)
                    task.gradient_step(model, examples[int(e)], alpha)
                    if apply_proximal:
                        proximal.apply(model, alpha)
                delta = flat - snapshot
                nonzero = np.nonzero(delta)[0]
                if scheme == "aig":
                    # Batched per-component atomics: the publication — and
                    # only the publication — runs in a brief critical
                    # section, so gradient computation still overlaps.
                    with lock:
                        shared[nonzero] += delta[nonzero]
                else:  # nolock — genuinely racy Hogwild read-modify-write
                    shared[nonzero] += delta[nonzero]
            steps += len(batch_g)
    finally:
        del shared
        shm.close()
    return steps


def _run_uda_state(payloads: dict, msg: tuple) -> Any:
    """initialize + transition over this worker's assigned example ordinals."""
    _, key, instance, ordinals = msg
    examples, _task = payloads[key]
    state = instance.initialize()
    transition = instance.transition
    if ordinals is None:
        for example in examples:
            state = transition(state, example)
    else:
        for ordinal in ordinals:
            state = transition(state, examples[int(ordinal)])
    return state


def _run_chunk_uda_state(payloads: dict, msg: tuple) -> Any:
    """initialize + transition_chunk over this worker's assigned chunk ids.

    The payload is the table's cached columnar chunk list (shipped pickled
    once per table version); the message carries only chunk ordinals, so a
    per-epoch loss/accuracy pass costs one small message per worker.
    """
    _, key, instance, chunk_ids = msg
    batches = payloads[key]
    state = instance.initialize()
    for chunk_id in chunk_ids:
        state = instance.transition_chunk(state, batches[int(chunk_id)])
    return state


def _run_generic_uda_state(payloads: dict, msg: tuple) -> Any:
    """initialize + transition over raw rows for a generic (non-task) aggregate.

    The payload is the table's raw row block; the message ships the pickled
    aggregate instance, the argument expression and any scalar UDFs it
    references, so built-in SQL aggregates (SUM/AVG/STDDEV/...) parallelise
    without a decoding task.
    """
    _, key, instance, argument, ordinals, functions = msg
    rows = payloads[key]
    state = instance.initialize()
    transition = instance.transition
    wants_row = instance.wants_row or argument is None
    for ordinal in ordinals:
        row = rows[int(ordinal)]
        value = row if wants_row else argument.evaluate(row, functions)
        state = transition(state, value)
    return state


def _apply_extend(payloads: dict, key: tuple, mode: str, delta: Any) -> None:
    """Extend a resident payload in place with a shipped delta.

    Every mode carries the *start* position the delta applies at, so a replay
    (after a retried shipment) truncates back to the base before re-extending
    — applying a chain of deltas in ascending version order is idempotent.

    * ``examples_extend`` — payload is ``(examples, task)``; new decoded
      examples append to the examples list.
    * ``list_extend`` — payload is a plain list (raw row blocks); new items
      append.
    * ``batches_tail`` — payload is a columnar chunk list; the tail from
      ``start`` (the first chunk the append touched) is replaced with the
      re-chunked tail.
    """
    start, items = delta
    resident = payloads[key]
    if mode == "examples_extend":
        target = resident[0]
        del target[start:]
        target.extend(items)
    elif mode == "list_extend":
        del resident[start:]
        resident.extend(items)
    elif mode == "batches_tail":
        resident[start:] = items
    else:
        raise ExecutionError(f"unknown payload extend mode {mode!r}")


def _worker_main(
    conn, lock, worker_index: int = 0, faults: "tuple[FaultPlan, ...]" = ()
) -> None:
    """Long-lived worker loop: cache payloads, run epochs, return states."""
    payloads: dict = {}
    #: Per-key shared-memory mappings backing paged payloads' views; released
    #: when the payload is replaced or dropped so the pages' physical memory
    #: is returned as soon as the last attachment goes away.
    page_handles: dict = {}
    injector = FaultInjector(plans=faults, worker=worker_index) if faults else None
    # Workers forked after us inherit our command pipe's parent end, so a
    # SIGKILLed engine does not reliably EOF every pipe (siblings keep each
    # other's ends alive).  Orphaning is therefore detected by re-parenting:
    # when idle, a worker whose parent changed exits on its own — this is
    # what keeps a whole-process crash from leaving stray workers behind.
    supervisor_pid = os.getppid()
    while True:
        try:
            if not conn.poll(1.0):
                if os.getppid() != supervisor_pid:  # pragma: no cover - crash path
                    break
                continue
            msg = conn.recv()
        except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown
            break
        op = msg[0]
        try:
            if injector is not None:
                injector.before(op)
            if op == "stop":
                conn.send(("ok", None))
                break
            if op == "ping":
                conn.send(("ok", os.getpid()))
            elif op == "load":
                old_handles = page_handles.pop(msg[1], None)
                payloads.pop(msg[1], None)
                handles: list = []
                payloads[msg[1]] = _decode_payload(msg[2], handles)
                if handles:
                    page_handles[msg[1]] = handles
                _release_page_handles(old_handles)
                conn.send(("ok", None))
            elif op == "extend":
                # Delta pages attach *beside* the base's mappings: the
                # resident payload keeps views into both until replaced.
                handles = page_handles.setdefault(msg[1], [])
                _apply_extend(payloads, msg[1], msg[2], _decode_payload(msg[3], handles))
                if not handles:
                    page_handles.pop(msg[1], None)
                conn.send(("ok", None))
            elif op == "drop":
                payloads.pop(msg[1], None)
                _release_page_handles(page_handles.pop(msg[1], None))
                conn.send(("ok", None))
            elif op == "uda_state":
                conn.send(("ok", _run_uda_state(payloads, msg)))
            elif op == "chunk_uda":
                conn.send(("ok", _run_chunk_uda_state(payloads, msg)))
            elif op == "generic_uda":
                conn.send(("ok", _run_generic_uda_state(payloads, msg)))
            elif op == "shmem_epoch":
                conn.send(("ok", _run_shmem_epoch(payloads, lock, msg[1])))
            else:
                conn.send(("err", f"unknown worker command {op!r}"))
        except Exception:  # noqa: BLE001 - forwarded to the parent verbatim
            conn.send(("err", traceback.format_exc()))


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------
_LIVE_POOLS: "weakref.WeakSet[ProcessWorkerPool]" = weakref.WeakSet()


class _PayloadRecord:
    """Pickled payload bytes for one key: a base plus an append-delta chain.

    ``base_bytes`` is the full payload pickled at ``base_version``;
    ``deltas`` is an ordered chain of ``(to_version, mode, delta_bytes)``
    entries, each advancing the payload from the previous entry's version.
    A respawned worker is replayed the base and then the chain in order —
    exactly the bytes the original shipments used.  ``base_version`` is
    ``None`` for unversioned payloads (no delta shipping, no chain).

    Under page transport the shipped bytes are only descriptors: ``pages``
    pins the parent-side :class:`~repro.db.shared_memory.ChunkPageSet`
    handles (base plus deltas) alive so those descriptors stay resolvable —
    a respawn replay re-attaches the same pages.  ``base_kind`` /
    ``delta_kinds`` record which transport each shipment used, for the
    pool's byte accounting.
    """

    __slots__ = ("base_version", "base_bytes", "deltas", "pages", "base_kind", "delta_kinds")

    def __init__(
        self,
        base_version: "int | None",
        base_bytes: bytes,
        *,
        pages: "ChunkPageSet | None" = None,
        kind: str = "pickle",
    ):
        self.base_version = base_version
        self.base_bytes = base_bytes
        self.deltas: list[tuple[int, str, bytes]] = []
        self.pages: list = [pages] if pages is not None else []
        self.base_kind = kind
        self.delta_kinds: list[str] = []

    def free_pages(self) -> None:
        """Unlink every page set this record pinned.  Idempotent."""
        for pages in self.pages:
            pages.free()
        self.pages.clear()

    @property
    def version(self) -> "int | None":
        """The version the base + full chain reconstructs."""
        return self.deltas[-1][0] if self.deltas else self.base_version

    def chain_versions(self) -> list:
        """Every version a worker may legitimately be resident at."""
        return [self.base_version] + [to_version for to_version, _, _ in self.deltas]


@atexit.register
def _close_pools_at_exit() -> None:  # pragma: no cover - exercised at interpreter exit
    for pool in list(_LIVE_POOLS):
        pool.close()


class ProcessWorkerPool:
    """A persistent pool of forked worker processes over pipes.

    Workers inherit the publication :attr:`lock` (created before the fork)
    and cache example payloads by key, so an epoch costs one small message
    per worker.  The pool is a context manager and is also swept at
    interpreter exit; :meth:`close` is idempotent.
    """

    #: Per-worker deadline for the close() drain: a hung worker gets this
    #: long to acknowledge "stop" before being abandoned to terminate().
    drain_timeout = 2.0

    #: Delta-chain length at which a payload record is compacted back to a
    #: single full base (re-built and re-pickled once).  Bounds both the
    #: parent-side byte registry and the worst-case respawn replay under
    #: long streaming runs.
    max_delta_chain = 64

    def __init__(
        self,
        workers: int,
        *,
        faults: "tuple[FaultPlan, ...]" = (),
        transport: "str | None" = None,
    ):
        if workers <= 0:
            raise ExecutionError("process pool needs at least one worker")
        self.workers = workers
        self._ctx = fork_context()
        self._faults = tuple(faults)
        #: Payload transport: ``auto``/``pages`` page dense arrays through
        #: ``/dev/shm``, ``pickle`` ships full pickled bytes (the PR-4 wire
        #: format).  ``None`` reads ``REPRO_PAYLOAD_TRANSPORT``.
        self.transport = resolve_payload_transport() if transport is None else transport
        if self.transport not in PAYLOAD_TRANSPORTS:
            raise ExecutionError(
                f"unknown payload transport {self.transport!r}; "
                f"expected one of {PAYLOAD_TRANSPORTS}"
            )
        #: Transport accounting: bytes that crossed pipes per transport kind,
        #: bytes resident in published pages, publication (encode+copy)
        #: seconds, payload counts and ``/dev/shm``-exhaustion fallbacks.
        self.transport_stats: dict[str, Any] = {
            "transport": self.transport,
            "page_payloads": 0,
            "pickle_payloads": 0,
            "page_fallbacks": 0,
            "page_bytes": 0,
            "pages_bytes_shipped": 0,
            "pickle_bytes_shipped": 0,
            "publish_seconds": 0.0,
        }
        #: Publication lock shared by every worker (inherited through fork).
        self.lock = self._ctx.Lock()
        self._conns = []
        self._procs = []
        self._closed = False
        #: Resident payload version per (worker, key) — ``None`` for
        #: unversioned payloads, the table version the worker's copy
        #: reconstructs for versioned ones.
        self._loaded: dict[tuple[int, tuple], "int | None"] = {}
        #: Pins id()-keyed payload keys' objects for the pool's lifetime.
        self._pins: dict[tuple, Any] = {}
        #: Pickled payload records by key (base bytes + append-delta chain),
        #: kept so a respawned worker can be replayed its payloads without
        #: re-building or re-pickling anything.
        self._payload_bytes: dict[tuple, _PayloadRecord] = {}
        #: Op currently awaiting a reply, per worker (empty when quiescent).
        self._inflight: dict[int, str] = {}
        # Start the shared-memory resource tracker *before* forking: workers
        # then inherit it, so their attachments register with the parent's
        # tracker (a set-level no-op) instead of each spawning a private
        # tracker that would warn about "leaked" segments at exit.
        try:  # pragma: no cover - tracker internals
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        for index in range(workers):
            parent_conn, process = self._spawn_worker(index)
            self._conns.append(parent_conn)
            self._procs.append(process)
        _LIVE_POOLS.add(self)

    def _spawn_worker(self, index: int, *, faults: "tuple[FaultPlan, ...] | None" = None):
        """Fork one worker inheriting the current lock; returns (conn, proc).

        ``faults`` defaults to the pool's configured plans; a supervisor
        respawning a dead worker passes ``()`` so an injected fault cannot
        starve its own recovery.
        """
        faults = self._faults if faults is None else faults
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.lock, index, faults),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return parent_conn, process

    # ------------------------------------------------------------- messaging
    def _gather(self, workers: Sequence[int]) -> dict[int, Any]:
        """Drain one reply from every listed worker, then raise on failures.

        Draining *before* raising is what keeps this persistent pool usable
        after a worker-side exception: a worker that reported an error has
        already produced its reply, so every later command still pairs one
        send with one recv.  A worker that died mid-command breaks that
        invariant permanently, so the pool closes itself instead of serving
        stale buffered replies to the next caller.
        """
        replies: dict[int, Any] = {}
        failures: list[str] = []
        dead: list[int] = []
        for worker in workers:
            try:
                status, value = self._conns[worker].recv()
            except (EOFError, OSError):
                dead.append(worker)
                failures.append(
                    f"worker {worker} died (exit code {self._procs[worker].exitcode})"
                )
                continue
            finally:
                self._inflight.pop(worker, None)
            if status != "ok":
                failures.append(f"worker {worker} failed:\n{value}")
                continue
            replies[worker] = value
        if dead:
            self.close()
            raise WorkerDiedError(
                "process-backend " + "; ".join(failures),
                recoverable=False,
                workers=tuple(dead),
            )
        if failures:
            raise ExecutionError("process-backend " + "; ".join(failures))
        return replies

    def run(self, messages: Mapping[int, tuple]) -> dict[int, Any]:
        """Scatter one message per worker, gather every reply.

        All messages are sent before any reply is read, so workers execute
        concurrently; replies are collected in worker order, which is what
        keeps merge order deterministic.  Messages are pickled *before* the
        first send: an unpicklable aggregate or expression fails cleanly
        instead of desyncing the pipe protocol halfway through a scatter.
        """
        if self._closed:
            raise ExecutionError("process pool is closed")
        encoded: dict[int, bytes] = {}
        for worker, message in messages.items():
            try:
                encoded[worker] = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as error:
                raise ExecutionError(
                    f"process-backend message for worker {worker} is not picklable "
                    f"({error}); aggregates, expressions and UDFs shipped to the "
                    "pool must be module-level (no lambdas or closures)"
                ) from error
        for worker, payload in encoded.items():
            self._inflight[worker] = messages[worker][0]
            self._conns[worker].send_bytes(payload)
        return self._gather(list(messages))

    # ------------------------------------------------------------- transport
    def _encode_payload(self, payload: Any) -> "tuple[bytes, ChunkPageSet | None, str]":
        """Encode one payload for shipment: ``(wire_bytes, pages, kind)``.

        Under ``auto``/``pages`` the payload's dense arrays are published
        once into a shared-memory page block and the wire bytes carry only
        the descriptor plus the pickled skeleton; payloads with no dense
        arrays — and every payload when ``/dev/shm`` allocation fails —
        degrade to plain pickled bytes (``kind == "pickle"``).
        """
        stats = self.transport_stats
        start = time.perf_counter()
        if self.transport != "pickle":
            buffer = io.BytesIO()
            pickler = _PagingPickler(buffer)
            pickler.dump(payload)
            if pickler.arrays:
                try:
                    pages = ChunkPageSet.publish(pickler.arrays)
                except OSError:
                    # /dev/shm exhausted or unavailable: fall back to pickled
                    # transport for this payload (first rung of the ladder).
                    stats["page_fallbacks"] += 1
                else:
                    data = pickle.dumps(
                        _PagedPayload(pages.descriptor, buffer.getvalue()),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    stats["page_payloads"] += 1
                    stats["page_bytes"] += pages.nbytes
                    stats["publish_seconds"] += time.perf_counter() - start
                    return data, pages, "pages"
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        stats["pickle_payloads"] += 1
        stats["publish_seconds"] += time.perf_counter() - start
        return data, None, "pickle"

    def _store_record(self, key: tuple, version: "int | None", payload: Any) -> _PayloadRecord:
        """Encode a fresh base record for ``key``, freeing the one it replaces.

        Freeing the replaced record's pages only unlinks the ``/dev/shm``
        names — workers still resident on the old payload keep their
        mappings alive until the new shipment lands.
        """
        data, pages, kind = self._encode_payload(payload)
        record = _PayloadRecord(version, data, pages=pages, kind=kind)
        old = self._payload_bytes.get(key)
        if old is not None:
            old.free_pages()
        self._payload_bytes[key] = record
        return record

    def _count_shipped(self, kind: str, nbytes: int, workers: int) -> None:
        field = "pages_bytes_shipped" if kind == "pages" else "pickle_bytes_shipped"
        self.transport_stats[field] += nbytes * workers

    def ensure_loaded(
        self,
        worker_ids: Iterable[int],
        key: tuple,
        build: Callable[[], Any],
        *,
        pin: Any = None,
        version: "int | None" = None,
        extend: "Callable[[int], tuple[str, Any] | None] | None" = None,
    ) -> None:
        """Ship a payload to the given workers unless they already hold it.

        The payload is built and pickled **once** per key, then sent to every
        missing worker — this is the "pickled-once chunk payload" contract:
        a table decode crosses the process boundary exactly once, and later
        epochs address it by key.  ``pin`` keeps any id()-keyed object in the
        key alive for the pool's lifetime.

        With ``version`` (the table version the payload reflects) and
        ``extend``, the payload becomes **delta-shippable**: a worker already
        resident at an older version of the key receives only the delta that
        advances it.  ``extend(from_version)`` returns ``(mode, delta)`` — a
        worker-side :func:`_apply_extend` mode plus its payload — or ``None``
        when the range is not append-only, which falls back to a full
        reshipment under the same key (also what bounds worker memory under
        rewrites: the resident payload is *replaced*, not accumulated
        beside).
        """
        if self._closed:
            raise ExecutionError("process pool is closed")
        worker_ids = list(worker_ids)
        if pin is not None:
            self._pins[key] = pin
        record = self._payload_bytes.get(key)
        if version is None:
            # Unversioned payload: key identity fully determines content.
            missing = [w for w in worker_ids if (w, key) not in self._loaded]
            if not missing:
                return
            if record is None:
                record = self._store_record(key, None, build())
            self._ship(missing, key, ("load", key, record.base_bytes), "load", None)
            self._count_shipped(record.base_kind, len(record.base_bytes), len(missing))
            return
        pending = [w for w in worker_ids if self._loaded.get((w, key), -1) != version]
        if not pending:
            return
        # Advance the parent-side record to the requested version first.
        if record is not None and record.version != version:
            delta = extend(record.version) if extend is not None else None
            if delta is None:
                record = None  # rewrite (or no delta builder): rebuild below
            else:
                mode, payload = delta
                delta_bytes, delta_pages, delta_kind = self._encode_payload(payload)
                record.deltas.append((version, mode, delta_bytes))
                record.delta_kinds.append(delta_kind)
                if delta_pages is not None:
                    record.pages.append(delta_pages)
                if len(record.deltas) > self.max_delta_chain:
                    # Compact: one fresh full pickle replaces the chain.
                    # Workers resident at `version` stay resident — their
                    # incrementally-extended copies are bit-for-bit the full
                    # payload; workers parked at intermediate versions get a
                    # full reshipment on their next use.
                    record = None
        if record is None:
            record = self._store_record(key, version, build())
        # Ship the base to workers holding nothing (or an off-chain copy),
        # then walk the delta chain, advancing every worker behind each step.
        chain = set(record.chain_versions())
        base_targets = [
            w for w in pending if self._loaded.get((w, key), -1) not in chain
        ]
        if base_targets:
            self._ship(
                base_targets, key, ("load", key, record.base_bytes), "load",
                record.base_version,
            )
            self._count_shipped(
                record.base_kind, len(record.base_bytes), len(base_targets)
            )
        for depth, (to_version, mode, delta_bytes) in enumerate(record.deltas):
            targets = [
                w for w in pending if self._loaded[(w, key)] < to_version
            ]
            if targets:
                self._ship(
                    targets, key, ("extend", key, mode, delta_bytes), "extend",
                    to_version,
                )
                self._count_shipped(
                    record.delta_kinds[depth], len(delta_bytes), len(targets)
                )

    def _ship(
        self,
        workers: Sequence[int],
        key: tuple,
        message: tuple,
        op: str,
        version: "int | None",
    ) -> None:
        """Send one payload message to every listed worker and gather.

        Residency is recorded per worker *after* its reply round succeeds, so
        an aborted shipment (worker death mid-round) leaves the casualties
        unrecorded — the retried pass re-ships them from the byte registry.
        """
        for worker in workers:
            self._inflight[worker] = op
            self._conns[worker].send(message)
        self._gather(list(workers))
        for worker in workers:
            self._loaded[(worker, key)] = version

    # -------------------------------------------------------------- lifecycle
    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Stop the workers and reap the processes.  Idempotent.

        State registries are cleared *first*: close() can be triggered from
        inside ``_gather`` (a worker died mid-command), and the raised
        :class:`WorkerDiedError` may be caught by a caller that then inspects
        the pool — it must see the pool as empty, not as still holding
        payloads on workers that no longer exist.  The drain is
        deadline-bounded (:attr:`drain_timeout` per worker): a hung worker
        never acknowledges "stop", and an unbounded ``recv()`` here would turn
        one stuck worker into a stuck parent.
        """
        if self._closed:
            return
        self._closed = True
        self._pins.clear()
        self._loaded.clear()
        # Unlink every page set pinned by payload records: the names vanish
        # from /dev/shm now, worker mappings die with the workers below.
        for record in self._payload_bytes.values():
            record.free_pages()
        self._payload_bytes.clear()
        self._inflight.clear()
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):  # pragma: no cover - worker died
                pass
        for conn in self._conns:
            try:
                if conn.poll(self.drain_timeout):
                    conn.recv()
            except (EOFError, OSError):  # pragma: no cover - worker died
                pass
            conn.close()
        for process in self._procs:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "live"
        return f"ProcessWorkerPool(workers={self.workers}, {state})"


# ---------------------------------------------------------------------------
# Payload keys (worker-side caches, shipped pickled-once per key)
# ---------------------------------------------------------------------------
# Keys are deliberately version-*less*: a key addresses "this table decoded
# this way", and the pool's residency registry tracks which version each
# worker's copy reflects.  Appends advance resident payloads with deltas;
# rewrites *replace* them under the same key — so worker memory is bounded by
# the number of live (table, decoder) pairs, not by mutation count.  The
# table's id() is part of the key (and the table is pinned) so a
# dropped-and-recreated table of the same name can never alias a stale
# resident payload.
def payload_key(table: Table, decoder: Any) -> tuple:
    """Worker-side payload key for one (table, decoding task) pair."""
    return ("examples", table.name, id(table), id(decoder))


def batches_payload_key(
    table: Table, decoder: Any, chunk_size: int, dtype: str = "float64"
) -> tuple:
    """Worker-side payload key for one table's cached columnar chunk list."""
    return ("batches", table.name, id(table), id(decoder), chunk_size, dtype)


def rows_payload_key(table: Table) -> tuple:
    """Worker-side payload key for one table's raw row block."""
    return ("rows", table.name, id(table))


def examples_delta_builder(
    table: Table, decoder: Any, cache: "ExampleCache"
) -> Callable[[int], "tuple[str, Any] | None"]:
    """Delta builder for decoded-example payloads (``examples_extend``).

    Resolves the (already extended) example list through the shared chunk
    plane and ships only the rows past the worker's resident version.
    """

    def extend(from_version: int) -> "tuple[str, Any] | None":
        delta = table.classify_delta(from_version)
        if not delta.is_append:
            return None
        examples = cache.examples_for(table, decoder)
        if len(examples) != delta.base_rows + delta.rows_added:
            return None
        return ("examples_extend", (delta.base_rows, examples[delta.base_rows:]))

    return extend


# ---------------------------------------------------------------------------
# Partitioned mergeable UDA (pure-UDA parallelism / Executor backend)
# ---------------------------------------------------------------------------
def run_partitioned_uda(
    pool: ProcessWorkerPool,
    parts: "Sequence[tuple[Table, UserDefinedAggregate, np.ndarray | None]]",
    cache: "ExampleCache",
) -> list:
    """Run one UDA instance per (table, ordinals) part, one part per worker.

    Returns the raw per-part states in part order (the caller merges).  Each
    part's decoded examples are resolved through the shared example cache and
    shipped pickled-once; the per-part computation is the plain per-tuple
    ``initialize``/``transition`` protocol, which the parity suite pins as
    bit-for-bit identical to the in-process chunked kernels.
    """
    if len(parts) > pool.workers:
        raise ExecutionError(
            f"{len(parts)} partitions need at least as many pool workers "
            f"(pool has {pool.workers})"
        )
    # Group workers by payload key so each payload is built and pickled once
    # per key, no matter how many workers share it (every partition of one
    # table shares one key; segmented runs have one key per segment).
    messages: dict[int, tuple] = {}
    workers_by_key: dict[tuple, list[int]] = {}
    builders: dict[tuple, tuple] = {}
    for worker, (table, instance, ordinals) in enumerate(parts):
        decoder = instance.chunk_decoder
        if decoder is None:
            raise ExecutionError(
                f"aggregate {type(instance).__name__} exposes no decoding task; "
                "the process backend ships task-decoded examples"
            )
        key = payload_key(table, decoder)
        workers_by_key.setdefault(key, []).append(worker)
        builders[key] = (table, decoder)
        messages[worker] = ("uda_state", key, instance, ordinals)
    for key, workers in workers_by_key.items():
        table, decoder = builders[key]
        pool.ensure_loaded(
            workers, key,
            lambda table=table, decoder=decoder: (cache.examples_for(table, decoder), decoder),
            pin=(table, decoder),
            version=table.version,
            extend=examples_delta_builder(table, decoder, cache),
        )
    states = pool.run(messages)
    return [states[worker] for worker in sorted(states)]


def run_process_aggregate(
    executor: "Executor",
    table: Table,
    instance: "UserDefinedAggregate",
    *,
    pool: ProcessWorkerPool,
    where=None,
    row_order: Sequence[int] | None = None,
    workers: int | None = None,
    argument=None,
    execution: str = "auto",
) -> Any:
    """Run one mergeable aggregate over round-robin partitions of a table.

    The partition contract is :func:`partition_round_robin` over the visit
    ordinals — the same layout the segmented engine uses — so the result is
    bit-for-bit identical to a :class:`~repro.db.parallel.SegmentedDatabase`
    run with ``num_segments == pool.workers``.  ``workers`` caps the fan-out
    below the pool size (a compiled :class:`~repro.db.pass_plan.PassPlan`
    carries the requested width).

    Three partition strategies, chosen by the aggregate's contract:

    * **chunk-partitioned** — scalar reductions that declare
      ``chunk_partitionable`` (loss, accuracy) ship the cached columnar chunk
      list once per table version and fan whole chunks out to workers, so the
      per-worker kernel stays vectorized;
    * **example-partitioned** — order-sensitive task-backed aggregates (IGD)
      ship cache-decoded examples and replay per-example transitions;
    * **generic rows** — aggregates without a decoding task (built-in SQL
      aggregates) ship the raw row block plus the picklable argument
      expression and any scalar UDFs it references.
    """
    if not instance.supports_merge:
        raise ExecutionError(
            f"aggregate {type(instance).__name__} does not support merge; "
            "the process backend requires an algebraic (mergeable) aggregate"
        )
    wants_chunks = (
        instance.chunk_partitionable and where is None and row_order is None
    )
    if wants_chunks and instance.supports_chunks:
        outcome = run_process_chunk_aggregate(
            executor, table, instance, pool=pool, workers=workers
        )
        if outcome is not _NO_CHUNK_PLAN:
            return outcome
    if execution == "chunked" and (wants_chunks or instance.chunk_decoder is None):
        # Match the serial contract: an explicit "chunked" request errors
        # instead of silently degrading when the vectorized path is
        # unavailable.  (Filtered/ordered scalar passes and order-sensitive
        # task-backed aggregates are *served by the chunk plane* through
        # cache-decoded examples and resolved ordinals, so they are not a
        # degradation and run under "chunked" as before.)
        raise ExecutionError(
            f"aggregate {type(instance).__name__} cannot run chunked over "
            f"table {table.name!r} (unsupported aggregate, task or column types)"
        )
    if instance.chunk_decoder is None:
        return run_process_generic_aggregate(
            executor, table, instance, pool=pool,
            where=where, row_order=row_order, workers=workers, argument=argument,
        )
    ordinals = resolve_ordinals(table, executor.example_cache, executor.functions, where, row_order)
    if ordinals is None:
        ordinals = np.arange(len(table), dtype=np.intp)
    width = _effective_workers(pool, workers, ordinals.shape[0])
    # One logical scan of the table's data, exactly like the serial paths.
    table.scan_count += 1
    parts = []
    for part in split_round_robin(ordinals, width):
        # partition_round_robin assignment: ordinal position i -> worker i % w.
        executor._charge_overhead(instance.state_passing_units)
        parts.append((table, instance, part))
    states = run_partitioned_uda(pool, parts, executor.example_cache)
    return merge_partial_states(instance, states)


#: Sentinel: the chunk-partitioned path could not resolve a chunk plan.
_NO_CHUNK_PLAN = object()


def _effective_workers(pool: ProcessWorkerPool, workers: int | None, items: int) -> int:
    width = pool.workers if workers is None else min(workers, pool.workers)
    return max(1, min(width, items) if items else 1)


def run_process_chunk_aggregate(
    executor: "Executor",
    table: Table,
    instance: "UserDefinedAggregate",
    *,
    pool: ProcessWorkerPool,
    workers: int | None = None,
) -> Any:
    """Chunk-partitioned scalar pass: whole cached chunks fan out to workers.

    The cached columnar chunk list is shipped pickled-once per table version
    (a separate payload from the decoded example list the gradient pass
    ships); per-epoch messages carry chunk ordinals only.  Worker ``w`` runs
    ``transition_chunk`` over chunks ``w::width`` in ascending order and the
    parent merges the scalar partials left-to-right — bit-for-bit the serial
    reference runner (:meth:`Executor.run_chunk_partitioned`) on the same
    width.
    """
    plan = executor.chunk_plan(table, instance)
    if plan is None:
        return _NO_CHUNK_PLAN
    batches = plan.batches
    width = _effective_workers(pool, workers, len(batches))
    compute_dtype = getattr(executor, "compute_dtype", "float64")
    key = batches_payload_key(
        table, instance.chunk_decoder, executor.chunk_size, compute_dtype
    )
    chunk_size = executor.chunk_size

    def extend_batches(from_version: int) -> "tuple[str, Any] | None":
        delta = table.classify_delta(from_version)
        if not delta.is_append:
            return None
        # The first chunk the append touched: the resident partial tail (if
        # any) plus every chunk after it are replaced with the re-chunked
        # tail of the extended plan.
        start = delta.base_rows // chunk_size
        return ("batches_tail", (start, batches[start:]))

    pool.ensure_loaded(
        range(width), key, lambda: batches,
        pin=(table, instance.chunk_decoder),
        version=table.version, extend=extend_batches,
    )
    table.scan_count += 1
    messages: dict[int, tuple] = {}
    for worker in range(width):
        executor._charge_overhead(instance.state_passing_units)
        messages[worker] = (
            "chunk_uda", key, instance, np.arange(worker, len(batches), width, dtype=np.intp)
        )
    states = pool.run(messages)
    return merge_partial_states(instance, [states[worker] for worker in sorted(states)])


def run_process_generic_aggregate(
    executor: "Executor",
    table: Table,
    instance: "UserDefinedAggregate",
    *,
    pool: ProcessWorkerPool,
    where=None,
    row_order: Sequence[int] | None = None,
    workers: int | None = None,
    argument=None,
) -> Any:
    """Generic (non-task) mergeable aggregate over raw row blocks.

    The table's rows are shipped pickled-once per table version; WHERE is
    resolved parent-side through the cached selection vector, so workers
    receive plain visit-ordinal arrays plus the argument expression and the
    scalar UDFs it references (which must be picklable — module-level
    functions, not lambdas).  Merge is deterministic left-to-right, so for a
    fixed width the result is bit-for-bit the serial reference runner
    (:meth:`Executor.run_row_partitioned`).
    """
    ordinals = resolve_ordinals(table, executor.example_cache, executor.functions, where, row_order)
    if ordinals is None:
        ordinals = np.arange(len(table), dtype=np.intp)
    width = _effective_workers(pool, workers, ordinals.shape[0])
    functions: dict[str, Callable] = {}
    if argument is not None:
        for name in sorted(argument.referenced_functions()):
            if name in executor.functions:
                functions[name] = executor.functions[name]
    key = rows_payload_key(table)

    def extend_rows(from_version: int) -> "tuple[str, Any] | None":
        delta = table.classify_delta(from_version)
        if not delta.is_append:
            return None
        from .types import Row

        schema = table.schema
        new_rows = [Row(schema, values) for values in table.tail_values(delta.base_rows)]
        if len(new_rows) != delta.rows_added:
            return None
        return ("list_extend", (delta.base_rows, new_rows))

    pool.ensure_loaded(
        range(width), key, table.to_rows, pin=table,
        version=table.version, extend=extend_rows,
    )
    table.scan_count += 1
    messages: dict[int, tuple] = {}
    for worker, part in enumerate(split_round_robin(ordinals, width)):
        executor._charge_overhead(instance.state_passing_units)
        messages[worker] = ("generic_uda", key, instance, argument, part, functions)
    states = pool.run(messages)
    return merge_partial_states(instance, [states[worker] for worker in sorted(states)])


# ---------------------------------------------------------------------------
# Shared-memory epoch on real worker processes (the measured Figure 9B path)
# ---------------------------------------------------------------------------
def run_process_shared_memory_epoch(
    table: Table,
    task,
    model: "Model",
    step_size,
    *,
    spec: SharedMemoryParallelism,
    pool: ProcessWorkerPool,
    arena: SharedMemoryArena,
    cache: "ExampleCache",
    epoch: int = 0,
    step_offset: int = 0,
    proximal=None,
    row_order: Sequence[int] | None = None,
    segment_name: str = "bismarck_model",
    charge_per_worker: Callable[[], Any] | None = None,
) -> "tuple[Model, int]":
    """One epoch of shared-memory IGD on real OS worker processes.

    The model lives in an arena segment (an mmap'd ``/dev/shm`` block); each
    worker attaches to it by OS name and races per the scheme: ``nolock``
    publishes genuinely unsynchronised deltas (Hogwild), ``aig`` publishes
    under a brief critical section (batched per-component atomics), ``lock``
    holds the lock across the whole read-compute-write cycle.  Examples come
    from the shared chunk-plane cache, shipped to the pool pickled-once per
    table version; a logical ``row_order`` re-partitions the permuted ordinal
    sequence with the same round-robin contract as the cooperative runner.

    Results are **not** deterministic — real races are the entire point — so
    callers pin convergence with objective-band assertions, never equality.
    """
    from ..core.proximal import IdentityProximal
    from ..core.stepsize import make_schedule

    schedule = make_schedule(step_size)
    proximal = proximal if proximal is not None else task.proximal or IdentityProximal()

    examples = cache.examples_for(table, task)
    table.scan_count += 1
    num_examples = len(examples)
    if num_examples == 0:
        return model, 0

    staleness = spec.effective_staleness()
    order = None
    if row_order is not None:
        order = np.asarray(row_order, dtype=np.intp)
    # The logical sequence is the order list itself (which may visit only a
    # subset of rows — partial_fit's delta epochs do); without one it is the
    # whole table.  Round-robin partitioning runs over logical positions,
    # matching the cooperative in-process runner.
    total_positions = len(order) if order is not None else num_examples
    if total_positions == 0:
        return model, 0
    workers = min(spec.workers, total_positions, pool.workers)

    key = payload_key(table, task)
    pool.ensure_loaded(
        range(workers), key, lambda: (examples, task), pin=(table, task),
        version=table.version, extend=examples_delta_builder(table, task, cache),
    )

    if arena.exists(segment_name):
        arena.free(segment_name)
    segment = arena.allocate_from(segment_name, model.as_flat_vector())
    try:
        messages: dict[int, tuple] = {}
        for worker in range(workers):
            global_ordinals = np.arange(worker, total_positions, workers, dtype=np.intp)
            example_ordinals = order[global_ordinals] if order is not None else global_ordinals
            if charge_per_worker is not None:
                charge_per_worker()
            messages[worker] = (
                "shmem_epoch",
                {
                    "key": key,
                    "os_name": segment.os_name,
                    "shape": segment.shape,
                    "scheme": spec.scheme,
                    "global_ordinals": global_ordinals,
                    "example_ordinals": example_ordinals,
                    "schedule": schedule,
                    "proximal": proximal,
                    "epoch": epoch,
                    "step_offset": step_offset,
                    "staleness": staleness,
                    "model_template": model.zeros_like(),
                },
            )
        results = pool.run(messages)
        steps_taken = int(sum(results.values()))
        model.load_flat_vector(segment.array)
    finally:
        arena.free(segment_name)
    return model, steps_taken
