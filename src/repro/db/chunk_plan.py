"""Backend-neutral chunk planning for the cached columnar execution plane.

Extracted from the serial executor so that every execution backend — the
serial executor (:mod:`repro.db.executor`), the shared-memory epoch
(:mod:`repro.db.shared_memory`) and the segmented pure-UDA engine
(:mod:`repro.db.parallel`) — serves aggregates from the *same* cached decoded
chunks instead of each owning its own row-decode loop.  A
:class:`ChunkPlan` bundles the decisions every backend makes:

* **cache lookup** — batches are resolved through the shared
  :class:`~repro.tasks.base.ExampleCache`, keyed by (table name, table
  version, decoding task, chunk size) and bound to the exact
  :class:`~repro.db.table.Table` object, so any physical mutation invalidates
  the plan on the next resolve;
* **selection** — WHERE predicates are evaluated once per (table, version)
  into a cached boolean selection vector
  (:meth:`~repro.tasks.base.ExampleCache.selection_for`) and applied as a
  batch take/mask over the cached batches;
* **permutation** — explicit ``row_order`` visit orders (logical
  shuffle-once / shuffle-always, the MRS machinery) are served by
  :func:`gather_batches`, a vectorized gather over the cached decoded plane,
  instead of per-tuple ``row_at`` loops;
* **chunk slicing** — the (possibly gathered) batches are the columnar chunk
  sequence a serial or per-segment pass consumes; and
* **per-worker range assignment** — :func:`partition_round_robin` (round-robin
  over example ordinals, mirroring how a shared-nothing engine lays segments
  out) gives parallel backends their zero-copy slices of the same cached
  data: the shared-memory epoch partitions the cache's decoded example list
  with it, and :meth:`ChunkPlan.worker_partitions` exposes the same
  assignment over a resolved plan's batches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..tasks.base import ExampleCache, Task
    from .expressions import Expression
    from .table import Table


def partition_round_robin(num_items: int, workers: int) -> list[list[int]]:
    """Round-robin assignment of item ordinals to workers (segment layout)."""
    partitions: list[list[int]] = [[] for _ in range(workers)]
    for index in range(num_items):
        partitions[index % workers].append(index)
    return partitions


def split_round_robin(ordinals: np.ndarray, workers: int) -> list[np.ndarray]:
    """Round-robin split of a resolved visit-ordinal array across workers.

    Position ``i`` of the visit order goes to worker ``i % workers`` — the
    identical layout :func:`partition_round_robin` gives segments, expressed
    as strided views so no per-item Python loop runs.  This is the partition
    contract every pass backend shares: the serial reference runner and the
    process workers consume exactly these partitions, which is what makes
    their results bit-for-bit comparable.
    """
    return [ordinals[worker::workers] for worker in range(workers)]


def resolve_ordinals(
    table: "Table",
    cache: "ExampleCache",
    functions: Mapping[str, Callable] | None,
    where: "Expression | None",
    row_order: Sequence[int] | None,
) -> np.ndarray | None:
    """Example ordinals for one pass; ``None`` means every row in heap order.

    Mirrors :meth:`ChunkPlan.resolve`: the visit order is walked first and
    rows failing the WHERE predicate are dropped, using the cached
    per-version selection vector.
    """
    if where is None and row_order is None:
        return None
    mask = cache.selection_for(table, where, functions) if where is not None else None
    if mask is not None:
        if row_order is not None:
            order = np.asarray(row_order, dtype=np.intp)
            order = np.where(order < 0, order + mask.shape[0], order)
            return order[mask[order]]
        return np.flatnonzero(mask)
    order = np.asarray(row_order, dtype=np.intp)
    return np.where(order < 0, order + len(table), order)


def gather_batches(
    batches: list, ordinals: np.ndarray, chunk_size: int
) -> list | None:
    """Gather ``ordinals`` of the logically concatenated ``batches`` into new chunks.

    ``batches`` is a cached chunk sequence in which every batch holds exactly
    ``chunk_size`` examples except possibly the last (the
    :meth:`~repro.db.table.Table.iter_chunks` contract), so global ordinal
    ``g`` lives in batch ``g // chunk_size`` at offset ``g % chunk_size``.
    The result re-chunks the gathered examples into ``chunk_size`` blocks.

    Each output block is built from at most two vectorized passes over the
    batch type's gather kernels: one ``take`` per source batch contributing
    to the block (rows extracted in output order within that batch), a
    ``concat``, and — when the block interleaves several source batches — one
    final ``take`` that restores the requested order.  Returns ``None`` when
    the batch type implements no ``take``/``concat`` kernels, signalling the
    caller to fall back to per-tuple execution.
    """
    ordinals = np.asarray(ordinals, dtype=np.intp)
    if not batches:
        return [] if ordinals.size == 0 else None
    first = batches[0]
    if not hasattr(first, "take") or not hasattr(type(first), "concat"):
        return None
    total = sum(len(batch) for batch in batches)
    ordinals = np.where(ordinals < 0, ordinals + total, ordinals)
    if ordinals.size and (int(ordinals.min()) < 0 or int(ordinals.max()) >= total):
        raise IndexError(
            f"row ordinal out of range for {total} rows "
            f"(min {int(ordinals.min())}, max {int(ordinals.max())})"
        )
    gathered = []
    for start in range(0, ordinals.shape[0], chunk_size):
        block = ordinals[start:start + chunk_size]
        batch_ids = block // chunk_size
        offsets = block - batch_ids * chunk_size
        unique = np.unique(batch_ids)
        if unique.shape[0] == 1:
            gathered.append(batches[int(unique[0])].take(offsets))
            continue
        parts = []
        positions = []
        for batch_id in unique:
            mask = batch_ids == batch_id
            parts.append(batches[int(batch_id)].take(offsets[mask]))
            positions.append(np.flatnonzero(mask))
        # Concatenated row j belongs at output position order[j]; invert to
        # get the final take that restores the requested visit order.
        order = np.concatenate(positions)
        inverse = np.empty_like(order)
        inverse[order] = np.arange(order.shape[0], dtype=order.dtype)
        gathered.append(type(first).concat(parts).take(inverse))
    return gathered


class ChunkPlan:
    """A resolved plan for one aggregate pass over cached columnar chunks."""

    __slots__ = ("table", "decoder", "batches", "chunk_size")

    def __init__(self, table: "Table", decoder: "Task", batches: list, chunk_size: int):
        self.table = table
        self.decoder = decoder
        self.batches = batches
        self.chunk_size = chunk_size

    @classmethod
    def resolve(
        cls,
        table: "Table",
        decoder: "Task | None",
        cache: "ExampleCache",
        chunk_size: int,
        *,
        where: "Expression | None" = None,
        row_order: Sequence[int] | None = None,
        functions: Mapping[str, Callable] | None = None,
        dtype: str = "float64",
    ) -> "ChunkPlan | None":
        """Resolve a plan through the cache; None when the pass cannot chunk.

        ``where`` restricts the pass to rows matching the predicate via a
        selection vector cached once per (table, version, predicate);
        ``row_order`` imposes an explicit visit order (a permutation of row
        ordinals) served by gathering from the cached batches.  Both compose:
        the order is walked first and non-matching rows are dropped, exactly
        like the per-tuple loop.  ``None`` means the aggregate exposed no
        decoder, the decoding task does not support batches, the table's
        columns cannot be batched, or the batch type has no gather kernels —
        the caller must fall back to per-tuple execution.
        """
        if decoder is None:
            return None
        batches = cache.batches_for(table, decoder, chunk_size, dtype=dtype)
        if batches is None:
            return None
        if where is None and row_order is None:
            return cls(table, decoder, batches, chunk_size)
        mask = cache.selection_for(table, where, functions) if where is not None else None
        if mask is not None:
            if row_order is not None:
                order = np.asarray(row_order, dtype=np.intp)
                order = np.where(order < 0, order + mask.shape[0], order)
                ordinals = order[mask[order]]
            else:
                ordinals = np.flatnonzero(mask)
        else:
            ordinals = np.asarray(row_order, dtype=np.intp)
        # Gathered chunk lists occupy one cache slot per (decoder, chunk
        # size); the order/selection identity rides along and is checked on
        # hit.  Pass-invariant inputs — a logical shuffle-once permutation, a
        # constant WHERE mask — therefore gather once per table version
        # instead of once per epoch, while fresh per-epoch orders
        # (shuffle-always) *replace* the slot's previous occupant, so at most
        # one dataset-sized gathered copy is retained at a time.  Orders are
        # treated as immutable: mutating a row_order sequence in place
        # between passes is not supported.
        slot_key = ("gathered", id(decoder), chunk_size, dtype)
        identity = (
            None if row_order is None else id(row_order),
            None if mask is None else id(mask),
        )
        pin = (decoder, row_order, mask)
        gathered = cache.gathered_for(
            table, slot_key, identity, pin,
            lambda: gather_batches(batches, ordinals, chunk_size),
        )
        if gathered is None:
            return None
        return cls(table, decoder, gathered, chunk_size)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.batches)

    def __len__(self) -> int:
        return len(self.batches)

    @property
    def num_examples(self) -> int:
        return sum(len(batch) for batch in self.batches)

    def worker_partitions(self, workers: int) -> list[list[int]]:
        """Round-robin example-ordinal partitions over the cached batches."""
        return partition_round_robin(self.num_examples, workers)

    def __repr__(self) -> str:
        return (
            f"ChunkPlan(table={self.table.name!r}, chunks={len(self.batches)}, "
            f"examples={self.num_examples})"
        )
