"""Backend-neutral chunk planning for the cached columnar execution plane.

Extracted from the serial executor so that every execution backend — the
serial executor (:mod:`repro.db.executor`), the shared-memory epoch
(:mod:`repro.db.shared_memory`) and the segmented pure-UDA engine
(:mod:`repro.db.parallel`) — serves aggregates from the *same* cached decoded
chunks instead of each owning its own row-decode loop.  A
:class:`ChunkPlan` bundles the three decisions every backend makes:

* **cache lookup** — batches are resolved through the shared
  :class:`~repro.tasks.base.ExampleCache`, keyed by (table name, table
  version, decoding task, chunk size) and bound to the exact
  :class:`~repro.db.table.Table` object, so any physical mutation invalidates
  the plan on the next resolve;
* **chunk slicing** — the cached batches are the columnar chunk sequence a
  serial or per-segment pass consumes in physical order; and
* **per-worker range assignment** — :func:`partition_round_robin` (round-robin
  over example ordinals, mirroring how a shared-nothing engine lays segments
  out) gives parallel backends their zero-copy slices of the same cached
  data: the shared-memory epoch partitions the cache's decoded example list
  with it, and :meth:`ChunkPlan.worker_partitions` exposes the same
  assignment over a resolved plan's batches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..tasks.base import ExampleCache, Task
    from .table import Table


def partition_round_robin(num_items: int, workers: int) -> list[list[int]]:
    """Round-robin assignment of item ordinals to workers (segment layout)."""
    partitions: list[list[int]] = [[] for _ in range(workers)]
    for index in range(num_items):
        partitions[index % workers].append(index)
    return partitions


class ChunkPlan:
    """A resolved plan for one aggregate pass over cached columnar chunks."""

    __slots__ = ("table", "decoder", "batches", "chunk_size")

    def __init__(self, table: "Table", decoder: "Task", batches: list, chunk_size: int):
        self.table = table
        self.decoder = decoder
        self.batches = batches
        self.chunk_size = chunk_size

    @classmethod
    def resolve(
        cls,
        table: "Table",
        decoder: "Task | None",
        cache: "ExampleCache",
        chunk_size: int,
    ) -> "ChunkPlan | None":
        """Resolve a plan through the cache; None when the pass cannot chunk.

        ``None`` means the aggregate exposed no decoder, the decoding task does
        not support batches, or the table's columns cannot be batched — the
        caller must fall back to per-tuple execution.
        """
        if decoder is None:
            return None
        batches = cache.batches_for(table, decoder, chunk_size)
        if batches is None:
            return None
        return cls(table, decoder, batches, chunk_size)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.batches)

    def __len__(self) -> int:
        return len(self.batches)

    @property
    def num_examples(self) -> int:
        return sum(len(batch) for batch in self.batches)

    def worker_partitions(self, workers: int) -> list[list[int]]:
        """Round-robin example-ordinal partitions over the cached batches."""
        return partition_round_robin(self.num_examples, workers)

    def __repr__(self) -> str:
        return (
            f"ChunkPlan(table={self.table.name!r}, chunks={len(self.batches)}, "
            f"examples={self.num_examples})"
        )
