"""Column types, schemas and row representation for the RDBMS substrate.

The substrate supports the small set of types the Bismarck workloads need:
integers, floats, text, booleans, dense float arrays (feature vectors) and
sparse maps (feature index -> value).  Schemas validate and coerce inserted
values so downstream code can rely on consistent Python/numpy types.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from .errors import SchemaError, TypeMismatchError, UnknownColumnError


class ColumnType(enum.Enum):
    """Logical column types supported by the substrate."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    FLOAT_ARRAY = "float_array"
    SPARSE_VECTOR = "sparse_vector"
    ANY = "any"

    @classmethod
    def from_string(cls, name: str) -> "ColumnType":
        """Resolve a SQL-ish type name (e.g. ``INT``, ``FLOAT8[]``) to a type."""
        normalized = name.strip().lower()
        aliases = {
            "int": cls.INTEGER,
            "integer": cls.INTEGER,
            "bigint": cls.INTEGER,
            "smallint": cls.INTEGER,
            "serial": cls.INTEGER,
            "float": cls.FLOAT,
            "float8": cls.FLOAT,
            "real": cls.FLOAT,
            "double": cls.FLOAT,
            "double precision": cls.FLOAT,
            "numeric": cls.FLOAT,
            "text": cls.TEXT,
            "varchar": cls.TEXT,
            "char": cls.TEXT,
            "string": cls.TEXT,
            "bool": cls.BOOLEAN,
            "boolean": cls.BOOLEAN,
            "float[]": cls.FLOAT_ARRAY,
            "float8[]": cls.FLOAT_ARRAY,
            "real[]": cls.FLOAT_ARRAY,
            "double[]": cls.FLOAT_ARRAY,
            "array": cls.FLOAT_ARRAY,
            "float_array": cls.FLOAT_ARRAY,
            "sparse": cls.SPARSE_VECTOR,
            "sparse_vector": cls.SPARSE_VECTOR,
            "svec": cls.SPARSE_VECTOR,
            "any": cls.ANY,
        }
        if normalized in aliases:
            return aliases[normalized]
        raise SchemaError(f"unknown column type: {name!r}")


def coerce_value(value: Any, column_type: ColumnType, *, nullable: bool = True) -> Any:
    """Coerce ``value`` into the canonical Python representation of a type.

    Raises :class:`TypeMismatchError` if coercion is impossible and
    :class:`SchemaError` if a NULL is inserted into a non-nullable column.
    """
    if value is None:
        if not nullable:
            raise SchemaError("NULL value in non-nullable column")
        return None

    if column_type is ColumnType.ANY:
        return value

    try:
        if column_type is ColumnType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, (int, np.integer)):
                return int(value)
            if isinstance(value, (float, np.floating)) and float(value).is_integer():
                return int(value)
            if isinstance(value, str):
                return int(value)
            raise TypeMismatchError(f"cannot coerce {value!r} to INTEGER")
        if column_type is ColumnType.FLOAT:
            if isinstance(value, (int, float, np.integer, np.floating)):
                return float(value)
            if isinstance(value, str):
                return float(value)
            raise TypeMismatchError(f"cannot coerce {value!r} to FLOAT")
        if column_type is ColumnType.TEXT:
            if isinstance(value, str):
                return value
            return str(value)
        if column_type is ColumnType.BOOLEAN:
            if isinstance(value, (bool, np.bool_)):
                return bool(value)
            if isinstance(value, (int, np.integer)) and value in (0, 1):
                return bool(value)
            if isinstance(value, str) and value.lower() in ("true", "false", "t", "f"):
                return value.lower() in ("true", "t")
            raise TypeMismatchError(f"cannot coerce {value!r} to BOOLEAN")
        if column_type is ColumnType.FLOAT_ARRAY:
            if isinstance(value, np.ndarray):
                return np.asarray(value, dtype=np.float64)
            if isinstance(value, (list, tuple)):
                return np.asarray(value, dtype=np.float64)
            raise TypeMismatchError(f"cannot coerce {value!r} to FLOAT_ARRAY")
        if column_type is ColumnType.SPARSE_VECTOR:
            if isinstance(value, Mapping):
                return {int(k): float(v) for k, v in value.items()}
            if isinstance(value, (list, tuple)) and all(
                isinstance(item, (list, tuple)) and len(item) == 2 for item in value
            ):
                return {int(k): float(v) for k, v in value}
            raise TypeMismatchError(f"cannot coerce {value!r} to SPARSE_VECTOR")
    except (ValueError, TypeError) as exc:
        raise TypeMismatchError(
            f"cannot coerce {value!r} to {column_type.value}: {exc}"
        ) from exc

    raise TypeMismatchError(f"unsupported column type {column_type!r}")


@dataclass(frozen=True)
class Column:
    """A single column definition."""

    name: str
    type: ColumnType
    nullable: bool = True

    def coerce(self, value: Any) -> Any:
        """Coerce a raw value into this column's canonical representation."""
        return coerce_value(value, self.type, nullable=self.nullable)


@dataclass(frozen=True)
class Schema:
    """An ordered collection of columns describing a table."""

    columns: tuple[Column, ...]
    _index: dict = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        object.__setattr__(
            self, "_index", {column.name: i for i, column in enumerate(self.columns)}
        )

    @classmethod
    def of(cls, *specs: tuple[str, ColumnType] | Column) -> "Schema":
        """Build a schema from ``(name, type)`` pairs or :class:`Column` objects."""
        columns = []
        for spec in specs:
            if isinstance(spec, Column):
                columns.append(spec)
            else:
                name, column_type = spec
                if isinstance(column_type, str):
                    column_type = ColumnType.from_string(column_type)
                columns.append(Column(name, column_type))
        return cls(tuple(columns))

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self.columns[self._index[name]]
        except KeyError:
            raise UnknownColumnError(name) from None

    def index_of(self, name: str) -> int:
        """Return the positional index of a column."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownColumnError(name) from None

    def coerce_row(self, values: Sequence[Any] | Mapping[str, Any]) -> tuple:
        """Coerce a row (sequence or mapping) into a canonical value tuple."""
        if isinstance(values, Mapping):
            missing = [c.name for c in self.columns if c.name not in values and not c.nullable]
            if missing:
                raise SchemaError(f"missing values for non-nullable columns: {missing}")
            ordered = [values.get(column.name) for column in self.columns]
        else:
            ordered = list(values)
            if len(ordered) != len(self.columns):
                raise SchemaError(
                    f"row has {len(ordered)} values but schema has {len(self.columns)} columns"
                )
        return tuple(
            column.coerce(value) for column, value in zip(self.columns, ordered)
        )


class Row:
    """A lightweight read-only view of one table row.

    Rows support both positional and by-name access, which keeps the executor
    fast (tuples underneath) while letting UDAs and expressions address columns
    by name.
    """

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema, values: tuple):
        self._schema = schema
        self._values = values

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def values(self) -> tuple:
        return self._values

    def __getitem__(self, key: str | int) -> Any:
        if isinstance(key, int):
            return self._values[key]
        return self._values[self._schema.index_of(key)]

    def get(self, key: str, default: Any = None) -> Any:
        if key in self._schema:
            return self[key]
        return default

    def as_dict(self) -> dict:
        return dict(zip(self._schema.column_names, self._values))

    def __iter__(self) -> Iterable[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._values == other._values
        if isinstance(other, tuple):
            return self._values == other
        return NotImplemented

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{name}={value!r}" for name, value in zip(self._schema.column_names, self._values)
        )
        return f"Row({pairs})"
