"""In-memory heap tables with page-structured storage.

Tables store rows in fixed-size *pages* (lists of value tuples), mimicking the
heap-file organisation of a disk-based RDBMS.  The page structure matters for
the Bismarck reproduction because the paper's data-ordering study is about the
physical order rows are returned by a sequential scan: :meth:`Table.cluster_by`
re-orders the heap like a ``CLUSTER`` command, and :meth:`Table.shuffle` is the
physical analogue of ``CREATE TABLE shuffled AS SELECT * FROM t ORDER BY
RANDOM()``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .errors import SchemaError
from .types import Row, Schema

DEFAULT_PAGE_SIZE = 256


class Table:
    """An append-only in-memory heap table."""

    def __init__(self, name: str, schema: Schema, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size <= 0:
            raise SchemaError("page_size must be positive")
        self.name = name
        self.schema = schema
        self.page_size = page_size
        self._pages: list[list[tuple]] = []
        self._num_rows = 0
        # Statistics mimicking a system catalog: number of scans and the last
        # clustering key, useful for tests and the experiment harness.
        self.scan_count = 0
        self.clustered_on: str | None = None

    # ------------------------------------------------------------------ write
    def insert(self, values: Sequence[Any] | Mapping[str, Any]) -> None:
        """Insert one row, coercing values to the schema's types."""
        row = self.schema.coerce_row(values)
        if not self._pages or len(self._pages[-1]) >= self.page_size:
            self._pages.append([])
        self._pages[-1].append(row)
        self._num_rows += 1
        self.clustered_on = None

    def insert_many(self, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def truncate(self) -> None:
        """Remove all rows."""
        self._pages = []
        self._num_rows = 0
        self.clustered_on = None

    # ------------------------------------------------------------------- read
    def __len__(self) -> int:
        return self._num_rows

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def scan(self) -> Iterator[Row]:
        """Yield rows in physical (heap) order."""
        self.scan_count += 1
        schema = self.schema
        for page in self._pages:
            for values in page:
                yield Row(schema, values)

    def scan_values(self) -> Iterator[tuple]:
        """Yield raw value tuples in physical order (no Row wrapper)."""
        self.scan_count += 1
        for page in self._pages:
            yield from page

    def row_at(self, index: int) -> Row:
        """Random access by row ordinal (0-based, physical order)."""
        if index < 0:
            index += self._num_rows
        if not 0 <= index < self._num_rows:
            raise IndexError(f"row index {index} out of range for {self._num_rows} rows")
        page, offset = divmod(index, self.page_size)
        # Pages are only ever partially filled at the tail, so divmod against
        # the nominal page size is valid except when earlier pages were split;
        # we never split pages, so this holds.
        return Row(self.schema, self._pages[page][offset])

    def column_values(self, column: str) -> list:
        """Materialise a single column in physical order."""
        index = self.schema.index_of(column)
        return [values[index] for page in self._pages for values in page]

    def to_rows(self) -> list[Row]:
        """Materialise all rows (physical order)."""
        schema = self.schema
        return [Row(schema, values) for page in self._pages for values in page]

    # ------------------------------------------------------- physical reorder
    def _replace_all(self, value_tuples: list[tuple]) -> None:
        pages: list[list[tuple]] = []
        for start in range(0, len(value_tuples), self.page_size):
            pages.append(list(value_tuples[start:start + self.page_size]))
        self._pages = pages
        self._num_rows = len(value_tuples)

    def cluster_by(self, column: str, *, descending: bool = False) -> None:
        """Physically re-order the heap by a column (like SQL ``CLUSTER``)."""
        index = self.schema.index_of(column)
        all_rows = [values for page in self._pages for values in page]
        all_rows.sort(key=lambda values: values[index], reverse=descending)
        self._replace_all(all_rows)
        self.clustered_on = column

    def cluster_by_key(self, key: Callable[[Row], Any], *, label: str = "<callable>") -> None:
        """Physically re-order the heap using an arbitrary key function."""
        schema = self.schema
        all_rows = [values for page in self._pages for values in page]
        all_rows.sort(key=lambda values: key(Row(schema, values)))
        self._replace_all(all_rows)
        self.clustered_on = label

    def shuffle(self, rng: np.random.Generator | None = None, seed: int | None = None) -> None:
        """Physically shuffle the heap (``ORDER BY RANDOM()`` materialised).

        This deliberately touches every row: the wall-clock cost of this call
        is exactly the "shuffle overhead" the paper's ShuffleOnce /
        ShuffleAlways comparison is about.
        """
        if rng is None:
            rng = np.random.default_rng(seed)
        all_rows = [values for page in self._pages for values in page]
        permutation = rng.permutation(len(all_rows))
        self._replace_all([all_rows[i] for i in permutation])
        self.clustered_on = None

    def copy(self, name: str | None = None) -> "Table":
        """Deep-enough copy of the table (rows are immutable tuples)."""
        clone = Table(name or self.name, self.schema, page_size=self.page_size)
        clone._pages = [list(page) for page in self._pages]
        clone._num_rows = self._num_rows
        clone.clustered_on = self.clustered_on
        return clone

    # ------------------------------------------------------------ partitioning
    def partition(self, num_segments: int) -> list["Table"]:
        """Round-robin partition into ``num_segments`` segment tables.

        Mirrors how a shared-nothing parallel database (the paper's "DBMS B")
        distributes a heap across segments.
        """
        if num_segments <= 0:
            raise SchemaError("num_segments must be positive")
        segments = [
            Table(f"{self.name}__seg{i}", self.schema, page_size=self.page_size)
            for i in range(num_segments)
        ]
        for ordinal, values in enumerate(
            values for page in self._pages for values in page
        ):
            segment = segments[ordinal % num_segments]
            if not segment._pages or len(segment._pages[-1]) >= segment.page_size:
                segment._pages.append([])
            segment._pages[-1].append(values)
            segment._num_rows += 1
        return segments

    def __repr__(self) -> str:
        return (
            f"Table(name={self.name!r}, rows={self._num_rows}, "
            f"pages={self.num_pages}, columns={list(self.schema.column_names)})"
        )
