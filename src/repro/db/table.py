"""In-memory heap tables with page-structured storage.

Tables store rows in fixed-size *pages* (lists of value tuples), mimicking the
heap-file organisation of a disk-based RDBMS.  The page structure matters for
the Bismarck reproduction because the paper's data-ordering study is about the
physical order rows are returned by a sequential scan: :meth:`Table.cluster_by`
re-orders the heap like a ``CLUSTER`` command, and :meth:`Table.shuffle` is the
physical analogue of ``CREATE TABLE shuffled AS SELECT * FROM t ORDER BY
RANDOM()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .errors import SchemaError
from .types import ColumnType, Row, Schema

DEFAULT_PAGE_SIZE = 256
#: Default number of rows per columnar chunk yielded by :meth:`Table.scan_chunks`.
DEFAULT_CHUNK_SIZE = 4096

#: How many ledger entries a table retains.  Version deltas that reach past
#: the retained window classify as rewrites (the safe answer), so the bound
#: only limits how far back *incremental* consumers can reach, never
#: correctness.  Streaming workloads touch caches every few versions, so a
#: few thousand entries is far more history than any consumer needs.
DEFAULT_LEDGER_CAPACITY = 4096


@dataclass(frozen=True)
class LedgerEntry:
    """One recorded mutation: how the table moved to ``version``."""

    version: int
    #: ``"append"`` (rows added at the tail, existing rows untouched) or
    #: ``"rewrite"`` (contents or physical order changed arbitrarily).
    kind: str
    #: Rows added by this mutation (0 for rewrites).
    rows_added: int
    #: Total rows after this mutation.
    rows_after: int
    #: The mutating operation, e.g. ``"insert_many"`` or ``"shuffle"``.
    op: str


@dataclass(frozen=True)
class VersionDelta:
    """Classification of the mutations between two versions of a table.

    ``kind`` is one of:

    * ``"same"`` — no mutations; the versions are equal.
    * ``"append"`` — every mutation in the range appended rows at the tail;
      rows ``[0, base_rows)`` are bit-identical to the old version and rows
      ``[base_rows, base_rows + rows_added)`` are new.
    * ``"rewrite"`` — at least one mutation rewrote contents or physical
      order (or the ledger no longer covers the range); ``op`` names the
      first rewriting operation when known.
    """

    kind: str
    rows_added: int = 0
    base_rows: int = 0
    op: str | None = None

    @property
    def is_append(self) -> bool:
        return self.kind == "append"

    @property
    def is_same(self) -> bool:
        return self.kind == "same"

#: Logical column types that materialise as typed (non-object) numpy arrays.
_CHUNK_DTYPES = {
    ColumnType.FLOAT: np.float64,
    ColumnType.INTEGER: np.int64,
    ColumnType.BOOLEAN: np.bool_,
}


class TableChunk:
    """A columnar view of a contiguous run of heap rows.

    Chunks are the unit of the batch-at-a-time execution path: instead of one
    :class:`Row` per tuple, consumers get per-column numpy arrays for a block
    of ``len(chunk)`` rows.  Scalar columns (FLOAT / INTEGER / BOOLEAN)
    materialise as typed arrays; everything else (feature vectors, sparse
    maps, text) as object arrays.  Column arrays are built lazily on first
    access so scans that only touch two of five columns never pay for the
    rest.

    ``table_name`` / ``table_version`` identify the exact table state the
    chunk was cut from, which is what example caches key on.
    """

    __slots__ = ("schema", "table_name", "table_version", "start", "_rows", "_columns")

    def __init__(
        self,
        schema: Schema,
        rows: list[tuple],
        *,
        table_name: str = "",
        table_version: int = 0,
        start: int = 0,
    ):
        self.schema = schema
        self.table_name = table_name
        self.table_version = table_version
        #: Ordinal (0-based, physical order) of the chunk's first row.
        self.start = start
        self._rows = rows
        self._columns: dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def column(self, name: str) -> np.ndarray:
        """Materialise one column of the chunk as a numpy array (cached)."""
        try:
            return self._columns[name]
        except KeyError:
            pass
        index = self.schema.index_of(name)
        values = [row[index] for row in self._rows]
        dtype = _CHUNK_DTYPES.get(self.schema.columns[index].type)
        if dtype is not None:
            array = np.array(values, dtype=dtype)
        else:
            array = np.empty(len(values), dtype=object)
            array[:] = values
        self._columns[name] = array
        return array

    def row_values(self) -> list[tuple]:
        """The chunk's raw value tuples (physical order)."""
        return self._rows

    def __repr__(self) -> str:
        return (
            f"TableChunk(table={self.table_name!r}, start={self.start}, "
            f"rows={len(self._rows)})"
        )


class Table:
    """An append-only in-memory heap table."""

    def __init__(self, name: str, schema: Schema, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size <= 0:
            raise SchemaError("page_size must be positive")
        self.name = name
        self.schema = schema
        self.page_size = page_size
        self._pages: list[list[tuple]] = []
        self._num_rows = 0
        # Statistics mimicking a system catalog: number of scans and the last
        # clustering key, useful for tests and the experiment harness.
        self.scan_count = 0
        self.clustered_on: str | None = None
        #: Monotonic mutation counter.  Every operation that changes the
        #: table's contents *or physical order* (insert, truncate, shuffle,
        #: cluster) bumps it, so ``(name, version)`` identifies an exact table
        #: state and downstream example caches can never serve stale data.
        self._version = 0
        #: Append-aware version ledger: one :class:`LedgerEntry` per bump,
        #: newest last, bounded to ``ledger_capacity`` entries.  It records
        #: *how* each version was reached (append vs rewrite) so downstream
        #: layers can distinguish "the world grew" from "the world changed".
        self._ledger: list[LedgerEntry] = []
        self.ledger_capacity = DEFAULT_LEDGER_CAPACITY
        #: Mutation observers: ``callback(table, entry)`` invoked after every
        #: ledger bump.  The durable engine attaches its WAL logger here —
        #: :meth:`_bump` is the single choke-point every mutating operation
        #: goes through, so observing it observes everything.
        self._observers: list[Callable[["Table", LedgerEntry], None]] = []

    @property
    def version(self) -> int:
        return self._version

    def add_observer(self, callback: Callable[["Table", LedgerEntry], None]) -> None:
        """Invoke ``callback(table, entry)`` after every mutation."""
        if callback not in self._observers:
            self._observers.append(callback)

    def remove_observer(self, callback) -> None:
        if callback in self._observers:
            self._observers.remove(callback)

    def _bump(self, kind: str, rows_added: int, op: str) -> None:
        """Advance the version and record how it was reached in the ledger."""
        self._version += 1
        entry = LedgerEntry(
            version=self._version,
            kind=kind,
            rows_added=rows_added,
            rows_after=self._num_rows,
            op=op,
        )
        self._ledger.append(entry)
        if len(self._ledger) > self.ledger_capacity:
            del self._ledger[: len(self._ledger) - self.ledger_capacity]
        for observer in self._observers:
            observer(self, entry)

    def ledger_entries(self, since_version: int = 0) -> list[LedgerEntry]:
        """Retained ledger entries with ``version > since_version``, oldest first."""
        return [entry for entry in self._ledger if entry.version > since_version]

    def classify_delta(self, old_version: int) -> VersionDelta:
        """Classify the mutations between ``old_version`` and the current version.

        Returns an append delta only when the ledger proves every mutation in
        the range appended rows at the tail; a range the retained ledger no
        longer covers (or a nonsensical ``old_version``) classifies as a
        rewrite, which is always safe — consumers fall back to a full rebuild.
        """
        if old_version == self._version:
            return VersionDelta(kind="same", base_rows=self._num_rows)
        if old_version > self._version:
            return VersionDelta(kind="rewrite", op="unknown")
        entries = self.ledger_entries(old_version)
        covered = (
            bool(entries)
            and entries[0].version == old_version + 1
            and entries[-1].version == self._version
        )
        if not covered:
            return VersionDelta(kind="rewrite", op="unknown")
        for entry in entries:
            if entry.kind != "append":
                return VersionDelta(kind="rewrite", op=entry.op)
        rows_added = sum(entry.rows_added for entry in entries)
        return VersionDelta(
            kind="append",
            rows_added=rows_added,
            base_rows=self._num_rows - rows_added,
        )

    # ------------------------------------------------------------------ write
    def insert(self, values: Sequence[Any] | Mapping[str, Any]) -> None:
        """Insert one row, coercing values to the schema's types."""
        row = self.schema.coerce_row(values)
        if not self._pages or len(self._pages[-1]) >= self.page_size:
            self._pages.append([])
        self._pages[-1].append(row)
        self._num_rows += 1
        self.clustered_on = None
        self._bump("append", 1, "insert")

    def insert_many(self, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> int:
        """Insert many rows with batched page appends; returns the number inserted."""
        coerce_row = self.schema.coerce_row
        coerced = [coerce_row(values) for values in rows]
        if not coerced:
            return 0
        remaining = coerced
        if self._pages and len(self._pages[-1]) < self.page_size:
            space = self.page_size - len(self._pages[-1])
            self._pages[-1].extend(remaining[:space])
            remaining = remaining[space:]
        for start in range(0, len(remaining), self.page_size):
            self._pages.append(remaining[start:start + self.page_size])
        self._num_rows += len(coerced)
        self.clustered_on = None
        self._bump("append", len(coerced), "insert_many")
        return len(coerced)

    def truncate(self) -> None:
        """Remove all rows."""
        self._pages = []
        self._num_rows = 0
        self.clustered_on = None
        self._bump("rewrite", 0, "truncate")

    # ------------------------------------------------------------------- read
    def __len__(self) -> int:
        return self._num_rows

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def scan(self) -> Iterator[Row]:
        """Yield rows in physical (heap) order."""
        self.scan_count += 1
        schema = self.schema
        for page in self._pages:
            for values in page:
                yield Row(schema, values)

    def scan_values(self) -> Iterator[tuple]:
        """Yield raw value tuples in physical order (no Row wrapper)."""
        self.scan_count += 1
        for page in self._pages:
            yield from page

    def scan_chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[TableChunk]:
        """Yield columnar :class:`TableChunk` blocks in physical order.

        Counts as exactly one scan regardless of how many chunks are yielded.
        """
        self.scan_count += 1
        yield from self.iter_chunks(chunk_size)

    def iter_chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[TableChunk]:
        """Chunk iteration without touching the scan statistics.

        Used by the executor's chunked path, which counts one logical scan per
        aggregate pass itself (cached passes never re-read the heap, but still
        count as a scan of the table's data).
        """
        if chunk_size <= 0:
            raise SchemaError("chunk_size must be positive")
        buffer: list[tuple] = []
        start = 0
        for page in self._pages:
            buffer.extend(page)
            while len(buffer) >= chunk_size:
                block, buffer = buffer[:chunk_size], buffer[chunk_size:]
                yield TableChunk(
                    self.schema,
                    block,
                    table_name=self.name,
                    table_version=self._version,
                    start=start,
                )
                start += chunk_size
        if buffer:
            yield TableChunk(
                self.schema,
                buffer,
                table_name=self.name,
                table_version=self._version,
                start=start,
            )

    def row_at(self, index: int) -> Row:
        """Random access by row ordinal (0-based, physical order)."""
        if index < 0:
            index += self._num_rows
        if not 0 <= index < self._num_rows:
            raise IndexError(f"row index {index} out of range for {self._num_rows} rows")
        page, offset = divmod(index, self.page_size)
        # Pages are only ever partially filled at the tail, so divmod against
        # the nominal page size is valid except when earlier pages were split;
        # we never split pages, so this holds.
        return Row(self.schema, self._pages[page][offset])

    def tail_values(self, start: int) -> list[tuple]:
        """Raw value tuples of rows ``[start, len)`` in physical order.

        The delta-decode read path: after an append-only version delta,
        incremental consumers fetch exactly the new rows instead of
        re-scanning the heap.  Valid because pages are never split — every
        page except the last is exactly ``page_size`` rows.
        """
        if start <= 0:
            return [values for page in self._pages for values in page]
        if start >= self._num_rows:
            return []
        page_index, offset = divmod(start, self.page_size)
        result = list(self._pages[page_index][offset:])
        for page in self._pages[page_index + 1:]:
            result.extend(page)
        return result

    def column_values(self, column: str) -> list:
        """Materialise a single column in physical order."""
        index = self.schema.index_of(column)
        return [values[index] for page in self._pages for values in page]

    def to_rows(self) -> list[Row]:
        """Materialise all rows (physical order)."""
        schema = self.schema
        return [Row(schema, values) for page in self._pages for values in page]

    # ------------------------------------------------------- physical reorder
    def _replace_all(self, value_tuples: list[tuple], *, op: str = "rewrite") -> None:
        pages: list[list[tuple]] = []
        for start in range(0, len(value_tuples), self.page_size):
            pages.append(list(value_tuples[start:start + self.page_size]))
        self._pages = pages
        self._num_rows = len(value_tuples)
        self._bump("rewrite", 0, op)

    def cluster_by(self, column: str, *, descending: bool = False) -> None:
        """Physically re-order the heap by a column (like SQL ``CLUSTER``)."""
        index = self.schema.index_of(column)
        all_rows = [values for page in self._pages for values in page]
        all_rows.sort(key=lambda values: values[index], reverse=descending)
        self._replace_all(all_rows, op="cluster_by")
        self.clustered_on = column

    def cluster_by_key(self, key: Callable[[Row], Any], *, label: str = "<callable>") -> None:
        """Physically re-order the heap using an arbitrary key function."""
        schema = self.schema
        all_rows = [values for page in self._pages for values in page]
        all_rows.sort(key=lambda values: key(Row(schema, values)))
        self._replace_all(all_rows, op="cluster_by_key")
        self.clustered_on = label

    def shuffle(self, rng: np.random.Generator | None = None, seed: int | None = None) -> None:
        """Physically shuffle the heap (``ORDER BY RANDOM()`` materialised).

        This deliberately touches every row: the wall-clock cost of this call
        is exactly the "shuffle overhead" the paper's ShuffleOnce /
        ShuffleAlways comparison is about.
        """
        if rng is None:
            rng = np.random.default_rng(seed)
        all_rows = [values for page in self._pages for values in page]
        permutation = rng.permutation(len(all_rows))
        self._replace_all([all_rows[i] for i in permutation], op="shuffle")
        self.clustered_on = None

    def copy(self, name: str | None = None) -> "Table":
        """Deep-enough copy of the table (rows are immutable tuples).

        Observers are deliberately not copied: a clone is a new, unlogged
        object until someone attaches to it.
        """
        clone = Table(name or self.name, self.schema, page_size=self.page_size)
        clone._pages = [list(page) for page in self._pages]
        clone._num_rows = self._num_rows
        clone.clustered_on = self.clustered_on
        clone._version = self._version
        clone._ledger = list(self._ledger)
        clone.ledger_capacity = self.ledger_capacity
        return clone

    def __getstate__(self) -> dict:
        # Observers are engine-side callbacks (often bound methods of the
        # owning Database); a pickled table must never drag the engine along.
        state = dict(self.__dict__)
        state["_observers"] = []
        return state

    # ------------------------------------------------------------- durability
    def to_image(self) -> dict:
        """A picklable snapshot of the table's complete durable state.

        Carries the version counter and the full retained ledger, so a table
        restored from an image classifies version deltas exactly like the
        original — ``partial_fit`` watermarks survive a crash.
        """
        return {
            "name": self.name,
            "schema": self.schema,
            "page_size": self.page_size,
            "rows": [values for page in self._pages for values in page],
            "version": self._version,
            "ledger": list(self._ledger),
            "ledger_capacity": self.ledger_capacity,
            "clustered_on": self.clustered_on,
        }

    @classmethod
    def from_image(cls, image: dict) -> "Table":
        """Rebuild a table from :meth:`to_image` output."""
        table = cls(image["name"], image["schema"], page_size=image["page_size"])
        rows = image["rows"]
        for start in range(0, len(rows), table.page_size):
            table._pages.append(list(rows[start:start + table.page_size]))
        table._num_rows = len(rows)
        table._version = image["version"]
        table._ledger = list(image["ledger"])
        table.ledger_capacity = image.get("ledger_capacity", DEFAULT_LEDGER_CAPACITY)
        table.clustered_on = image.get("clustered_on")
        return table

    def apply_logged_mutation(
        self, entry: LedgerEntry, rows: list[tuple], clustered_on: str | None
    ) -> None:
        """Re-apply one WAL-logged mutation during recovery.

        Bypasses :meth:`_bump` entirely: the original :class:`LedgerEntry` is
        appended verbatim and the version counter is set to the entry's, so
        the reconstructed ledger is indistinguishable from the pre-crash one
        and observers (not yet attached during recovery anyway) never re-log
        a replayed record.  ``rows`` are the appended tail for ``append``
        entries and the full post-mutation row image for rewrites.
        """
        if entry.kind == "append":
            remaining = list(rows)
            if self._pages and len(self._pages[-1]) < self.page_size:
                space = self.page_size - len(self._pages[-1])
                self._pages[-1].extend(remaining[:space])
                remaining = remaining[space:]
            for start in range(0, len(remaining), self.page_size):
                self._pages.append(list(remaining[start:start + self.page_size]))
        else:
            self._pages = [
                list(rows[start:start + self.page_size])
                for start in range(0, len(rows), self.page_size)
            ]
        self._num_rows = entry.rows_after
        self.clustered_on = clustered_on
        self._version = entry.version
        self._ledger.append(entry)
        if len(self._ledger) > self.ledger_capacity:
            del self._ledger[: len(self._ledger) - self.ledger_capacity]

    # ------------------------------------------------------------ partitioning
    def partition(self, num_segments: int) -> list["Table"]:
        """Round-robin partition into ``num_segments`` segment tables.

        Mirrors how a shared-nothing parallel database (the paper's "DBMS B")
        distributes a heap across segments.
        """
        if num_segments <= 0:
            raise SchemaError("num_segments must be positive")
        segments = [
            Table(f"{self.name}__seg{i}", self.schema, page_size=self.page_size)
            for i in range(num_segments)
        ]
        for ordinal, values in enumerate(
            values for page in self._pages for values in page
        ):
            segment = segments[ordinal % num_segments]
            if not segment._pages or len(segment._pages[-1]) >= segment.page_size:
                segment._pages.append([])
            segment._pages[-1].append(values)
            segment._num_rows += 1
        return segments

    def __repr__(self) -> str:
        return (
            f"Table(name={self.name!r}, rows={self._num_rows}, "
            f"pages={self.num_pages}, columns={list(self.schema.column_names)})"
        )
