"""Simulated shared-memory facility ("LWLock"-style) for UDAs.

Section 3.3 of the paper relies on the fact that all three RDBMSes expose a
way for user code to allocate and manage shared memory, so the model being
learned can live outside the per-aggregate state and be updated concurrently
by several workers.  This module provides that facility for our substrate:

* a named arena of numpy arrays (:class:`SharedMemoryArena`);
* per-segment locks (:meth:`SharedSegment.lock`) for the "Lock" scheme;
* a per-component compare-and-exchange primitive
  (:meth:`SharedSegment.compare_and_exchange`) that the "AIG" scheme uses; and
* raw unsynchronised access for the "NoLock" (Hogwild) scheme.

Because the reproduction simulates workers cooperatively (deterministic
interleaving rather than preemptive threads), the locks never contend in the
OS sense — but every acquisition is *counted*, which is what the speed-up cost
model in :mod:`repro.experiments.parallelism` consumes.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .errors import SharedMemoryError


@dataclass
class SharedSegment:
    """One named shared-memory segment holding a float64 array."""

    name: str
    array: np.ndarray
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    lock_acquisitions: int = 0
    atomic_operations: int = 0
    unsynchronised_writes: int = 0

    @contextmanager
    def lock(self) -> Iterator[np.ndarray]:
        """Acquire the segment lock and yield the array (the "Lock" scheme)."""
        with self._lock:
            self.lock_acquisitions += 1
            yield self.array

    def compare_and_exchange(self, index: int, expected: float, new_value: float) -> bool:
        """Atomically replace ``array[index]`` if it still equals ``expected``.

        Mirrors the CompareAndExchange instruction used by AIG [Niu et al.].
        Returns True on success, False if the value changed underneath us.
        """
        with self._lock:
            self.atomic_operations += 1
            if self.array[index] == expected:
                self.array[index] = new_value
                return True
            return False

    def atomic_add(self, index: int, delta: float, max_retries: int = 64) -> None:
        """Per-component atomic add built on compare-and-exchange (AIG update)."""
        for _ in range(max_retries):
            current = float(self.array[index])
            if self.compare_and_exchange(index, current, current + delta):
                return
        raise SharedMemoryError(
            f"atomic_add on segment {self.name!r} exceeded {max_retries} retries"
        )

    def unsynchronised_add(self, indices: np.ndarray | list[int], deltas: np.ndarray) -> None:
        """Race-prone add with no synchronisation (the NoLock / Hogwild update)."""
        self.unsynchronised_writes += 1
        self.array[indices] += deltas

    def snapshot(self) -> np.ndarray:
        """Copy of the current contents (a worker's possibly-stale read)."""
        return self.array.copy()


class SharedMemoryArena:
    """A named collection of shared segments, one arena per database."""

    def __init__(self) -> None:
        self._segments: dict[str, SharedSegment] = {}

    def allocate(self, name: str, shape: int | tuple[int, ...], *, fill: float = 0.0) -> SharedSegment:
        """Allocate a new named segment; fails if the name is taken."""
        if name in self._segments:
            raise SharedMemoryError(f"shared segment already exists: {name!r}")
        array = np.full(shape, fill, dtype=np.float64)
        segment = SharedSegment(name=name, array=array)
        self._segments[name] = segment
        return segment

    def allocate_from(self, name: str, initial: np.ndarray) -> SharedSegment:
        """Allocate a segment initialised from an existing array (copied)."""
        if name in self._segments:
            raise SharedMemoryError(f"shared segment already exists: {name!r}")
        segment = SharedSegment(name=name, array=np.array(initial, dtype=np.float64, copy=True))
        self._segments[name] = segment
        return segment

    def attach(self, name: str) -> SharedSegment:
        """Attach to an existing segment."""
        try:
            return self._segments[name]
        except KeyError:
            raise SharedMemoryError(f"no shared segment named {name!r}") from None

    def exists(self, name: str) -> bool:
        return name in self._segments

    def free(self, name: str) -> None:
        """Free a segment; freeing a missing segment is an error."""
        if name not in self._segments:
            raise SharedMemoryError(f"no shared segment named {name!r}")
        del self._segments[name]

    def free_all(self) -> None:
        self._segments.clear()

    def names(self) -> list[str]:
        return sorted(self._segments)

    def total_bytes(self) -> int:
        return sum(segment.array.nbytes for segment in self._segments.values())
