"""Shared-memory execution for UDAs: the arena facility plus the epoch runner.

Section 3.3 of the paper relies on the fact that all three RDBMSes expose a
way for user code to allocate and manage shared memory, so the model being
learned can live outside the per-aggregate state and be updated concurrently
by several workers.  This module is the single home for everything
shared-memory (the epoch runner used to live in :mod:`repro.core.parallel`,
which still re-exports it for back-compat):

* a named arena of **real** shared-memory numpy arrays
  (:class:`SharedMemoryArena`) — every segment is backed by a
  ``multiprocessing.shared_memory`` (``/dev/shm`` mmap) block, so worker
  *processes* attach to the same physical pages the parent allocated;
* per-segment process-safe locks (:meth:`SharedSegment.lock`) for the "Lock"
  scheme;
* a per-component compare-and-exchange primitive
  (:meth:`SharedSegment.compare_and_exchange`) that the "AIG" scheme uses;
* raw unsynchronised access for the "NoLock" (Hogwild) scheme — on the
  process backend this is a genuinely racy read-modify-write on the mmap'd
  pages; and
* the cooperative epoch simulation itself (:func:`run_shared_memory_epoch`)
  with its :class:`SharedMemoryParallelism` spec.  The *real* multi-process
  epoch lives in :mod:`repro.db.process_backend` and reuses the same arena.

Lifecycle: interrupted runs must not leak ``/dev/shm`` blocks, so the arena
is a context manager, every arena registers itself for a process-exit sweep
(``atexit``), and :meth:`SharedMemoryArena.free` /
:meth:`SharedSegment.release` are idempotent.
"""

from __future__ import annotations

import atexit
import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing import shared_memory as _mp_shared_memory
from typing import TYPE_CHECKING, Any, Iterator, Sequence

import numpy as np

from .chunk_plan import partition_round_robin
from .errors import SharedMemoryError
from .table import Table
from .types import Row

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.model import Model
    from ..core.proximal import ProximalOperator
    from ..core.stepsize import StepSizeSchedule
    from ..tasks.base import ExampleCache, Task

#: Fork context (lazy): segment locks are OS semaphores that forked worker
#: processes inherit, and fork is how the process backend spawns its workers.
#: Resolved on first use so merely importing this module works on platforms
#: without fork (the process backend itself requires it, serial use doesn't).
_MP_CONTEXT = None


def fork_context():
    """The multiprocessing fork context (default context where fork is absent)."""
    global _MP_CONTEXT
    if _MP_CONTEXT is None:
        try:
            _MP_CONTEXT = get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            _MP_CONTEXT = get_context()
    return _MP_CONTEXT

#: SharedMemory handles whose ``close()`` was deferred because a live numpy
#: view still exported the buffer when the segment was freed.  Holding them
#: here keeps their ``__del__`` from re-raising at garbage-collection time;
#: the OS reclaims the pages when the process exits (the name is already
#: unlinked, so nothing leaks in ``/dev/shm``).
_DEFERRED_CLOSE: list = []


def attach_shared_array(
    os_name: str, shape: int | tuple[int, ...], dtype: Any = np.float64
) -> "tuple[_mp_shared_memory.SharedMemory, np.ndarray]":
    """Attach to an existing OS shared-memory block as a numpy array.

    This is the worker-process entry point: the parent ships the segment's
    :attr:`SharedSegment.os_name`, shape and dtype (float64 by default — the
    model plane is always float64), the worker maps the same pages.
    Workers are *forked*, so they share the parent's resource-tracker process
    and attaching re-registers an already-tracked name (a set-level no-op);
    ownership — unlinking — stays with the allocating arena.  Callers must
    drop every numpy view before ``shm.close()``.
    """
    shm = _mp_shared_memory.SharedMemory(name=os_name)
    return shm, np.ndarray(shape, dtype=dtype, buffer=shm.buf)


# ---------------------------------------------------------------------------
# Chunk pages: one-shot published payload arrays (the page transport)
# ---------------------------------------------------------------------------
#: Byte alignment of each array inside a page block.  64 bytes keeps every
#: array cache-line aligned regardless of the dtypes packed before it.
PAGE_ALIGNMENT = 64


@dataclass(frozen=True)
class ChunkPageDescriptor:
    """Compact picklable description of one published :class:`ChunkPageSet`.

    This is what actually crosses the pipe under page transport: the OS
    segment name plus, per array, ``(dtype_str, shape, offset)``.  A few
    dozen bytes per array instead of the array itself.
    """

    segment: str
    total_bytes: int
    arrays: "tuple[tuple[str, tuple[int, ...], int], ...]"


class ChunkPageSet:
    """Dense payload arrays materialized once into a single ``/dev/shm`` block.

    The parent publishes every dense array of a chunk payload (feature
    matrices, CSR ``data``/``indices``/``indptr``, labels, ordinals) into one
    named shared-memory block with aligned offsets; workers attach by OS name
    (:func:`attach_chunk_pages`) and rebuild zero-copy numpy views.  Freeing
    is idempotent and unlink-first, mirroring :meth:`SharedSegment.release`:
    attached workers keep their mappings alive until they drop them, but the
    ``/dev/shm`` name disappears immediately, so nothing leaks.
    """

    __slots__ = ("descriptor", "_shm", "_freed", "__weakref__")

    def __init__(self, descriptor: ChunkPageDescriptor, shm: Any):
        self.descriptor = descriptor
        self._shm = shm
        self._freed = False

    @classmethod
    def publish(cls, arrays: "Sequence[np.ndarray]") -> "ChunkPageSet":
        """Copy ``arrays`` into one fresh shared-memory block.

        Raises ``OSError`` when ``/dev/shm`` is exhausted or unavailable —
        callers degrade to pickled transport on that signal.
        """
        metas: list[tuple[str, tuple[int, ...], int]] = []
        staged: list[np.ndarray] = []
        total = 0
        for array in arrays:
            array = np.ascontiguousarray(array)
            if array.nbytes == 0:
                metas.append((array.dtype.str, tuple(array.shape), 0))
                staged.append(array)
                continue
            offset = -(-total // PAGE_ALIGNMENT) * PAGE_ALIGNMENT
            metas.append((array.dtype.str, tuple(array.shape), offset))
            staged.append(array)
            total = offset + array.nbytes
        shm = _mp_shared_memory.SharedMemory(create=True, size=max(total, 1))
        for array, (dtype, shape, offset) in zip(staged, metas):
            if array.nbytes == 0:
                continue
            view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)
            view[...] = array
            del view
        descriptor = ChunkPageDescriptor(
            segment=shm.name, total_bytes=max(total, 1), arrays=tuple(metas)
        )
        page_set = cls(descriptor, shm)
        _LIVE_PAGE_SETS.add(page_set)
        return page_set

    @property
    def nbytes(self) -> int:
        """Bytes resident in the page block."""
        return self.descriptor.total_bytes

    def free(self) -> None:
        """Unlink the OS block and drop the parent-side handle.  Idempotent."""
        if self._freed:
            return
        self._freed = True
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # pragma: no cover - view still exported
            _DEFERRED_CLOSE.append(shm)
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - freed concurrently
            pass

    def __repr__(self) -> str:
        state = "freed" if self._freed else f"{self.nbytes} bytes"
        return f"ChunkPageSet(segment={self.descriptor.segment!r}, {state})"


def attach_chunk_pages(
    descriptor: ChunkPageDescriptor,
) -> "tuple[_mp_shared_memory.SharedMemory, list[np.ndarray]]":
    """Worker-side attach: zero-copy read-only views over a published page set.

    Returns the shared-memory handle (the caller owns closing it once the
    payload is dropped) and one view per descriptor entry, in publication
    order.  Views are marked read-only: payload arrays are scan-side inputs,
    and an accidental in-place write from one worker must not corrupt the
    pages every other worker maps.
    """
    shm = _mp_shared_memory.SharedMemory(name=descriptor.segment)
    views: list[np.ndarray] = []
    for dtype, shape, offset in descriptor.arrays:
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)
        view.flags.writeable = False
        views.append(view)
    return shm, views


#: Live page sets swept at interpreter exit, exactly like :data:`_LIVE_ARENAS`:
#: pool teardown frees pages deterministically, and the sweep covers
#: interrupted runs that never reach it.
_LIVE_PAGE_SETS: "weakref.WeakSet[ChunkPageSet]" = weakref.WeakSet()


@atexit.register
def _free_pages_at_exit() -> None:  # pragma: no cover - exercised at interpreter exit
    for pages in list(_LIVE_PAGE_SETS):
        pages.free()


class SharedSegment:
    """One named shared-memory segment holding a float64 array.

    The array is a view over a ``multiprocessing.shared_memory`` block, so a
    worker process that attaches to :attr:`os_name` (via
    :func:`attach_shared_array`) reads and writes the *same* physical memory.
    The lock is a process-shared OS semaphore: it synchronises forked workers
    that inherited it, as well as in-process cooperative workers.
    """

    __slots__ = (
        "name", "array", "_shm", "_lock", "_freed",
        "lock_acquisitions", "atomic_operations", "unsynchronised_writes",
    )

    def __init__(self, name: str, array: np.ndarray, shm: Any = None, lock: Any = None):
        self.name = name
        self.array = array
        self._shm = shm
        self._lock = lock if lock is not None else fork_context().Lock()
        self._freed = False
        #: Scheme cost counters (per-process; the cooperative simulation's
        #: speed-up cost model consumes them).
        self.lock_acquisitions = 0
        self.atomic_operations = 0
        self.unsynchronised_writes = 0

    @property
    def os_name(self) -> str | None:
        """OS-level shared-memory name worker processes attach to."""
        return self._shm.name if self._shm is not None else None

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.array.shape)

    @contextmanager
    def lock(self) -> Iterator[np.ndarray]:
        """Acquire the segment lock and yield the array (the "Lock" scheme)."""
        with self._lock:
            self.lock_acquisitions += 1
            yield self.array

    def compare_and_exchange(self, index: int, expected: float, new_value: float) -> bool:
        """Atomically replace ``array[index]`` if it still equals ``expected``.

        Mirrors the CompareAndExchange instruction used by AIG [Niu et al.].
        Returns True on success, False if the value changed underneath us.
        """
        with self._lock:
            self.atomic_operations += 1
            if self.array[index] == expected:
                self.array[index] = new_value
                return True
            return False

    def atomic_add(self, index: int, delta: float, max_retries: int = 64) -> None:
        """Per-component atomic add built on compare-and-exchange (AIG update)."""
        for _ in range(max_retries):
            current = float(self.array[index])
            if self.compare_and_exchange(index, current, current + delta):
                return
        raise SharedMemoryError(
            f"atomic_add on segment {self.name!r} exceeded {max_retries} retries"
        )

    def unsynchronised_add(self, indices: np.ndarray | list[int], deltas: np.ndarray) -> None:
        """Race-prone add with no synchronisation (the NoLock / Hogwild update)."""
        self.unsynchronised_writes += 1
        self.array[indices] += deltas

    def snapshot(self) -> np.ndarray:
        """Copy of the current contents (a worker's possibly-stale read)."""
        return self.array.copy()

    def release(self) -> None:
        """Unlink the OS block and drop the view.  Idempotent.

        If an outside numpy view still exports the buffer, closing the mmap
        is deferred to process exit — the name is unlinked either way, so a
        double-freed or crashed run never leaves a ``/dev/shm`` entry behind.
        """
        if self._freed:
            return
        self._freed = True
        shm, self._shm = self._shm, None
        self.array = None  # type: ignore[assignment]
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:
            _DEFERRED_CLOSE.append(shm)
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - freed concurrently
            pass

    def __repr__(self) -> str:
        state = "freed" if self._freed else f"shape={self.shape}"
        return f"SharedSegment(name={self.name!r}, {state})"


#: Live arenas swept at interpreter exit so interrupted runs (Ctrl-C mid
#: epoch, a test that never reaches its cleanup) cannot leak OS segments.
_LIVE_ARENAS: "weakref.WeakSet[SharedMemoryArena]" = weakref.WeakSet()


@atexit.register
def _free_arenas_at_exit() -> None:  # pragma: no cover - exercised at interpreter exit
    for arena in list(_LIVE_ARENAS):
        arena.free_all()


class SharedMemoryArena:
    """A named collection of shared segments, one arena per database.

    Usable as a context manager (``with SharedMemoryArena() as arena: ...``)
    — segments are freed on exit; every arena is additionally registered for
    an ``atexit`` sweep, and freeing is idempotent, so no code path (including
    interrupted runs) leaks ``/dev/shm`` blocks.
    """

    def __init__(self) -> None:
        self._segments: dict[str, SharedSegment] = {}
        _LIVE_ARENAS.add(self)

    def __enter__(self) -> "SharedMemoryArena":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.free_all()

    def _allocate_segment(self, name: str, initial: np.ndarray) -> SharedSegment:
        if name in self._segments:
            raise SharedMemoryError(f"shared segment already exists: {name!r}")
        initial = np.asarray(initial, dtype=np.float64)
        shm = _mp_shared_memory.SharedMemory(create=True, size=max(int(initial.nbytes), 1))
        array = np.ndarray(initial.shape, dtype=np.float64, buffer=shm.buf)
        array[...] = initial
        segment = SharedSegment(name=name, array=array, shm=shm)
        self._segments[name] = segment
        return segment

    def allocate(self, name: str, shape: int | tuple[int, ...], *, fill: float = 0.0) -> SharedSegment:
        """Allocate a new named segment; fails if the name is taken."""
        return self._allocate_segment(name, np.full(shape, fill, dtype=np.float64))

    def allocate_from(self, name: str, initial: np.ndarray) -> SharedSegment:
        """Allocate a segment initialised from an existing array (copied)."""
        return self._allocate_segment(name, initial)

    def attach(self, name: str) -> SharedSegment:
        """Attach to an existing segment."""
        try:
            return self._segments[name]
        except KeyError:
            raise SharedMemoryError(f"no shared segment named {name!r}") from None

    def exists(self, name: str) -> bool:
        return name in self._segments

    def free(self, name: str) -> None:
        """Free a segment; freeing a missing or already-freed name is a no-op.

        Idempotency matters for crash paths: cleanup handlers (context exits,
        ``atexit``, test teardowns) may all race to free the same segment and
        must never turn an interrupted run into a second error.
        """
        segment = self._segments.pop(name, None)
        if segment is not None:
            segment.release()

    def free_all(self) -> None:
        for name in list(self._segments):
            self.free(name)

    def sweep_orphans(self, prefix: str = "bismarck_model") -> list[str]:
        """Free every registered segment whose name starts with ``prefix``.

        Epoch-scratch segments (the ``"bismarck_model"`` family) live for
        exactly one pass: each runner allocates in a ``try`` and frees in its
        ``finally``.  Any such segment still registered when a *recovery*
        path runs is therefore an orphan of an aborted epoch — freeing it
        unlinks the ``/dev/shm`` block before the retry re-allocates under
        the same logical name (which would otherwise fail the
        already-exists check).  Returns the freed names, for the recovery
        log.
        """
        orphans = [name for name in self._segments if name.startswith(prefix)]
        for name in orphans:
            self.free(name)
        return orphans

    def names(self) -> list[str]:
        return sorted(self._segments)

    def total_bytes(self) -> int:
        return sum(segment.array.nbytes for segment in self._segments.values())


# ---------------------------------------------------------------------------
# Shared-memory epoch simulation (Section 3.3)
# ---------------------------------------------------------------------------
SHARED_MEMORY_SCHEMES = ("lock", "aig", "nolock")
SHARED_MEMORY_BACKENDS = ("simulated", "process")


@dataclass(frozen=True)
class SharedMemoryParallelism:
    """Request shared-memory parallelism with a concurrency scheme."""

    scheme: str = "nolock"
    workers: int = 8
    #: How many examples a worker processes against one stale snapshot before
    #: publishing its delta.  None picks the scheme default (1 for lock/aig,
    #: ``workers`` for nolock, approximating Hogwild staleness).
    staleness: int | None = None
    #: ``"simulated"`` (default) interleaves the workers cooperatively in one
    #: process — deterministic, used by the convergence experiments.
    #: ``"process"`` runs real OS worker processes racing on an mmap-shared
    #: model (:mod:`repro.db.process_backend`) — the measured Figure 9B path.
    backend: str = "simulated"
    name: str = "shared_memory"

    def __post_init__(self) -> None:
        if self.scheme not in SHARED_MEMORY_SCHEMES:
            raise ValueError(
                f"unknown shared-memory scheme {self.scheme!r}; "
                f"expected one of {SHARED_MEMORY_SCHEMES}"
            )
        if self.backend not in SHARED_MEMORY_BACKENDS:
            raise ValueError(
                f"unknown shared-memory backend {self.backend!r}; "
                f"expected one of {SHARED_MEMORY_BACKENDS}"
            )
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.staleness is not None and self.staleness <= 0:
            raise ValueError("staleness must be positive")

    def effective_staleness(self) -> int:
        if self.staleness is not None:
            return self.staleness
        if self.scheme == "nolock":
            return max(1, self.workers)
        return 1


def run_shared_memory_epoch(
    examples: "Sequence[Any] | Table",
    task: "Task",
    model: "Model",
    step_size: "StepSizeSchedule | float | dict",
    *,
    spec: SharedMemoryParallelism,
    epoch: int = 0,
    step_offset: int = 0,
    proximal: "ProximalOperator | None" = None,
    arena: SharedMemoryArena | None = None,
    segment_name: str = "bismarck_model",
    charge_per_tuple=None,
    cache: "ExampleCache | None" = None,
    row_order: "Sequence[int] | None" = None,
) -> "tuple[Model, int]":
    """Run one epoch of shared-memory parallel IGD (cooperative simulation).

    ``examples`` is either a Table (rows are converted through the task) or a
    sequence of already-converted examples.  Returns the updated model and the
    number of gradient steps taken.

    ``row_order`` optionally imposes a logical visit order (a permutation of
    example ordinals): workers then partition the *permuted* ordinal sequence.
    On the cached path this is a zero-copy gather of the cached decoded
    example list, so logical shuffle-once / shuffle-always re-orders epochs
    without invalidating the cache or re-decoding a single tuple.

    ``cache`` optionally points at an :class:`~repro.tasks.base.ExampleCache`
    (normally the engine executor's): the table is then decoded once per table
    version and every worker slices the *same* cached example list zero-copy,
    instead of re-decoding every tuple every epoch.  The update schedule —
    round-robin worker interleaving, per-worker staleness batches, snapshot +
    delta publication — is byte-identical either way, so cached and uncached
    epochs produce the same model.

    ``charge_per_tuple`` is an optional zero-argument callable modelling the
    engine's scan cost.  On the uncached path it is invoked once per tuple as
    rows are read (the paper's protocol: workers scan tuples through the
    engine; only the model-passing cost is avoided because the model lives in
    shared memory).  On the cached path the per-tuple boundary disappears —
    workers read decoded examples from the shared plane — so the charge is
    applied once per published worker batch instead, mirroring how the serial
    chunked path charges per chunk.

    This runner interleaves the workers cooperatively in one process, which
    is what makes the lock/AIG/NoLock convergence traces deterministic
    (Figure 9A).  The *measured* wall-clock path — real worker processes
    attached to the same mmap'd model — is
    :func:`repro.db.process_backend.run_process_shared_memory_epoch`.
    """
    from ..core.proximal import IdentityProximal
    from ..core.stepsize import make_schedule

    schedule = make_schedule(step_size)
    proximal = proximal if proximal is not None else task.proximal or IdentityProximal()
    charge_per_batch = False
    if isinstance(examples, Table):
        if cache is not None:
            materialized = cache.examples_for(examples, task)
            # One logical scan of the table's data per epoch, cached or not.
            examples.scan_count += 1
            charge_per_batch = True
        else:
            materialized = []
            for row in examples.scan():
                if charge_per_tuple is not None:
                    charge_per_tuple()
                materialized.append(task.example_from_row(row))
    else:
        materialized = []
        for item in examples:
            if charge_per_tuple is not None:
                charge_per_tuple()
            materialized.append(task.example_from_row(item) if isinstance(item, Row) else item)
    if row_order is not None:
        # Zero-copy gather: the permuted list shares the decoded examples, so
        # a cached epoch under a fresh logical shuffle re-decodes nothing.
        materialized = [materialized[int(i)] for i in row_order]
    num_examples = len(materialized)
    if num_examples == 0:
        return model, 0

    workers = min(spec.workers, num_examples)
    staleness = spec.effective_staleness()
    partitions = partition_round_robin(num_examples, workers)

    # The shared model lives in the arena as a flat vector, as it would in a
    # real shared-memory segment.
    arena = arena or SharedMemoryArena()
    if arena.exists(segment_name):
        arena.free(segment_name)
    segment = arena.allocate_from(segment_name, model.as_flat_vector())

    cursors = [0] * workers
    steps_taken = 0
    total_steps_planned = num_examples
    # Scratch model reused for snapshot-based local computation.
    scratch = model.copy()

    while steps_taken < total_steps_planned:
        progressed = False
        for worker in range(workers):
            partition = partitions[worker]
            cursor = cursors[worker]
            if cursor >= len(partition):
                continue
            batch = partition[cursor:cursor + staleness]
            cursors[worker] = cursor + len(batch)
            progressed = True
            if charge_per_batch and charge_per_tuple is not None:
                charge_per_tuple()

            snapshot = segment.snapshot()
            scratch.load_flat_vector(snapshot)
            for offset, example_index in enumerate(batch):
                step_index = step_offset + steps_taken + offset
                alpha = schedule.step_size(step_index, epoch)
                task.gradient_step(scratch, materialized[example_index], alpha)
                proximal.apply(scratch, alpha)
            delta = scratch.as_flat_vector() - snapshot
            steps_taken += len(batch)

            if spec.scheme == "lock":
                with segment.lock() as shared:
                    shared += delta
            elif spec.scheme == "aig":
                nonzero = np.nonzero(delta)[0]
                for index in nonzero:
                    segment.atomic_add(int(index), float(delta[index]))
            else:  # nolock
                nonzero = np.nonzero(delta)[0]
                segment.unsynchronised_add(nonzero, delta[nonzero])
        if not progressed:
            break

    model.load_flat_vector(segment.array)
    arena.free(segment_name)
    return model, steps_taken
