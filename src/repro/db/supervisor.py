"""Supervision for the process backend: deadline-bounded pipes and respawn.

:class:`ProcessWorkerPool` treats worker death as fatal: ``_gather`` closes
the pool and raises, and a hung worker blocks ``recv()`` forever.  That is
the right contract for the *pool* — a broken pipe invariant cannot be papered
over locally — but the wrong contract for a long-running training loop, where
a single segfault or livelock anywhere in the fleet would kill the whole run.

:class:`SupervisedWorkerPool` wraps the base pool's pipe reads with a
deadline (``Connection.poll`` under a :class:`RecoveryPolicy`), detects dead
*and* hung workers, terminates and respawns them, and replays the pickled
payload registry so a rebuilt worker re-receives its chunk payloads by key
without re-decoding or re-pickling anything.  The pass that was in flight is
still lost — recovery restores the *pool*, not the partial states — so the
supervisor raises :class:`~repro.db.errors.WorkerDiedError` with
``recoverable=True`` and the caller (the :class:`~repro.db.pass_plan`
backends, the :class:`~repro.db.executor.Executor` process branch) re-runs
the pass against the healed pool.  Retry semantics are the caller's job:
deterministic passes re-run bit-for-bit; racy shared-memory epochs snapshot
the model first (see ``ProcessBackend``).

Lock poisoning: a worker killed inside ``shmem_epoch`` may die *holding* the
publication lock (an OS semaphore inherited through fork), which would
deadlock every surviving worker's next critical section.  When the in-flight
op of a lost worker was ``shmem_epoch``, recovery therefore rebuilds the
**entire pool under a fresh lock** instead of respawning just the casualty.

The respawn budget (``max_respawns``) counts recovery *rounds* — incidents —
not individual worker forks, precisely because one shmem incident can respawn
the whole fleet.  When the budget is exhausted the pool closes itself and
raises ``recoverable=False``; the degradation ladder takes over from there.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .errors import EnvSpecError, ExecutionError, WorkerDiedError
from .fault import FaultPlan, faults_from_env
from .process_backend import ProcessWorkerPool


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs for worker supervision.

    ``timeout`` is the per-pipe-read deadline in seconds: a worker that has
    not replied within it is declared hung and terminated.  It bounds *one
    worker command*, not a whole pass, so it only needs to cover the slowest
    single epoch-share — the default is generous because a false positive
    (terminating a slow-but-healthy worker) costs a respawn round.
    ``max_respawns`` is the recovery-round budget for the pool's lifetime;
    ``backoff`` is slept before each respawn round, scaled by the round
    number, so a crash-looping payload does not respawn in a tight loop.

    Environment overrides (read by :meth:`from_env`, used by the CI chaos
    job): ``REPRO_RECOVERY_TIMEOUT``, ``REPRO_RECOVERY_MAX_RESPAWNS``,
    ``REPRO_RECOVERY_BACKOFF``.
    """

    timeout: float = 30.0
    max_respawns: int = 3
    backoff: float = 0.05

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ExecutionError("recovery timeout must be positive")
        if self.max_respawns < 0:
            raise ExecutionError("recovery max_respawns must be >= 0")
        if self.backoff < 0:
            raise ExecutionError("recovery backoff must be >= 0")

    @classmethod
    def from_env(cls, environ=None) -> "RecoveryPolicy":
        """Policy overridden by ``REPRO_RECOVERY_*`` variables.

        Unset / empty variables keep their defaults; malformed values raise
        :class:`~repro.db.errors.EnvSpecError` (a ``ValueError``) naming the
        variable, as do out-of-range values (e.g. a negative timeout) — a
        typo'd CI override must never silently fall back to the defaults.
        """
        environ = os.environ if environ is None else environ
        kwargs: dict[str, Any] = {}
        fields = (
            ("REPRO_RECOVERY_TIMEOUT", "timeout", float, "number of seconds"),
            ("REPRO_RECOVERY_MAX_RESPAWNS", "max_respawns", int, "integer"),
            ("REPRO_RECOVERY_BACKOFF", "backoff", float, "number of seconds"),
        )
        for variable, key, convert, expected in fields:
            raw = environ.get(variable)
            if raw is None or not raw.strip():
                continue
            try:
                kwargs[key] = convert(raw)
            except ValueError:
                raise EnvSpecError(
                    f"{variable}={raw!r} is not a valid {expected}"
                ) from None
        try:
            return cls(**kwargs)
        except ExecutionError as error:
            raise EnvSpecError(
                f"invalid REPRO_RECOVERY_* configuration: {error}"
            ) from None


@dataclass(frozen=True)
class RecoveryEvent:
    """One supervision incident: what was lost, and what was done about it.

    ``kind`` is ``"death"`` (pipe broke mid-command), ``"hang"`` (deadline
    missed; may accompany deaths in one round) or ``"budget_exhausted"``
    (nothing respawned; the pool closed itself).  ``pool_rebuilt`` marks a
    full-fleet respawn under a fresh lock (shmem lock-poisoning protection).
    """

    kind: str
    workers: tuple[int, ...]
    ops: tuple[str, ...] = ()
    respawned: bool = False
    pool_rebuilt: bool = False
    payloads_replayed: int = 0
    round: int = 0
    detail: str = ""


@dataclass(frozen=True)
class DegradationEvent:
    """A pass was re-routed down the backend ladder instead of failing.

    Emitted by the plan backends and the executor when the process backend is
    unavailable (respawn budget exhausted): ``from_backend`` → ``to_backend``
    with the triggering error in ``reason``.  Structured rather than raised:
    degradation is an *observable* outcome of a completed run, not a failure.
    """

    plan_kind: str
    from_backend: str
    to_backend: str
    reason: str = ""


class SupervisedWorkerPool(ProcessWorkerPool):
    """A :class:`ProcessWorkerPool` whose pipe reads are deadline-bounded.

    Drop-in for the base pool everywhere (all module helpers — partitioned
    UDAs, chunk/generic aggregates, shared-memory epochs — take "a pool"):
    only ``_gather`` changes, wrapping every reply read in
    ``Connection.poll(policy.timeout)`` and routing casualties through
    :meth:`_recover` instead of straight to ``close()``.

    ``faults`` defaults to the ``REPRO_FAULT`` environment spec — the base
    pool deliberately does *not* read the environment, so direct-pool tests
    stay deterministic under the CI chaos job while every engine-created
    (supervised) pool picks the injection up automatically.  Respawned
    workers are always forked without fault plans, so an injected fault
    cannot starve its own recovery.
    """

    def __init__(
        self,
        workers: int,
        *,
        policy: RecoveryPolicy | None = None,
        faults: "Sequence[FaultPlan] | None" = None,
        on_event: Callable[[RecoveryEvent], None] | None = None,
        transport: "str | None" = None,
    ):
        self.policy = policy if policy is not None else RecoveryPolicy.from_env()
        self.on_event = on_event
        #: Recovery incidents, in order.  Inspect after a run to see what the
        #: supervisor absorbed; the driver folds these into ``IGDResult``.
        self.events: list[RecoveryEvent] = []
        #: Recovery rounds consumed so far (compared against max_respawns).
        self.respawns_used = 0
        plans = faults_from_env() if faults is None else tuple(faults)
        super().__init__(workers, faults=plans, transport=transport)

    # ------------------------------------------------------------- messaging
    def _gather(self, workers: Sequence[int]) -> dict[int, Any]:
        """Deadline-bounded drain: poll before every recv, recover casualties.

        Every listed worker is polled/drained before any recovery decision,
        so healthy workers' replies for the aborted pass are consumed and the
        one-send/one-recv invariant holds for the retry.  A reply that never
        arrives within the deadline marks the worker hung; a broken pipe
        marks it dead (``poll`` reports a closed pipe as readable, so death
        is always distinguished from hang).
        """
        replies: dict[int, Any] = {}
        failures: list[str] = []
        dead: list[int] = []
        hung: list[int] = []
        lost_ops: dict[int, str | None] = {}
        for worker in workers:
            conn = self._conns[worker]
            try:
                ready = conn.poll(self.policy.timeout)
            except (EOFError, OSError):  # pragma: no cover - torn-down conn
                ready = True
            if not ready:
                hung.append(worker)
                lost_ops[worker] = self._inflight.pop(worker, None)
                failures.append(
                    f"worker {worker} missed the {self.policy.timeout:g}s reply deadline"
                )
                continue
            try:
                status, value = conn.recv()
            except (EOFError, OSError):
                dead.append(worker)
                lost_ops[worker] = self._inflight.pop(worker, None)
                failures.append(
                    f"worker {worker} died (exit code {self._procs[worker].exitcode})"
                )
                continue
            self._inflight.pop(worker, None)
            if status != "ok":
                failures.append(f"worker {worker} failed:\n{value}")
                continue
            replies[worker] = value
        if dead or hung:
            self._recover(
                dead=dead, hung=hung, lost_ops=lost_ops, detail="; ".join(failures)
            )
        if failures:
            raise ExecutionError("process-backend " + "; ".join(failures))
        return replies

    # -------------------------------------------------------------- recovery
    def _recover(
        self,
        *,
        dead: list[int],
        hung: list[int],
        lost_ops: dict[int, str | None],
        detail: str,
    ) -> None:
        """Terminate and respawn casualties, replay payloads, raise for retry.

        Always raises: :class:`WorkerDiedError` with ``recoverable=True``
        after a successful respawn (the caller re-runs the pass), or
        ``recoverable=False`` after closing the pool on budget exhaustion.
        """
        lost = sorted(set(dead) | set(hung))
        ops = tuple(sorted({op for op in lost_ops.values() if op is not None}))
        kind = "hang" if hung else "death"
        message = f"process-backend {detail}"
        self.respawns_used += 1
        if self.respawns_used > self.policy.max_respawns:
            self._record(
                RecoveryEvent(
                    kind="budget_exhausted",
                    workers=tuple(lost),
                    ops=ops,
                    respawned=False,
                    round=self.respawns_used,
                    detail=detail,
                )
            )
            self.close()
            raise WorkerDiedError(
                f"{message} (respawn budget of {self.policy.max_respawns} exhausted)",
                recoverable=False,
                workers=tuple(lost),
            )
        if self.policy.backoff > 0:
            time.sleep(self.policy.backoff * self.respawns_used)
        # A worker lost inside shmem_epoch may have died holding the
        # publication lock, which would deadlock every survivor's next
        # critical section — rebuild the whole fleet under a fresh lock.
        rebuild_all = "shmem_epoch" in ops
        targets = list(range(self.workers)) if rebuild_all else lost
        if rebuild_all:
            self.lock = self._ctx.Lock()
        for worker in targets:
            process = self._procs[worker]
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
                if process.is_alive():  # pragma: no cover - unkillable worker
                    process.kill()
                    process.join(timeout=1.0)
            try:
                self._conns[worker].close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self._inflight.pop(worker, None)
            conn, proc = self._spawn_worker(worker, faults=())
            self._conns[worker] = conn
            self._procs[worker] = proc
        replayed = self._replay_payloads(targets)
        self._record(
            RecoveryEvent(
                kind=kind,
                workers=tuple(lost),
                ops=ops,
                respawned=True,
                pool_rebuilt=rebuild_all,
                payloads_replayed=replayed,
                round=self.respawns_used,
                detail=detail,
            )
        )
        raise WorkerDiedError(
            f"{message} (workers respawned; pass must be retried)",
            recoverable=True,
            workers=tuple(lost),
        )

    def _replay_payloads(self, targets: Sequence[int]) -> int:
        """Re-ship every payload the respawned workers held, by key.

        Uses the pickled-bytes registry — nothing is re-built or re-pickled;
        a rebuilt worker re-receives exactly the bytes the original got: the
        full base payload first, then the append-delta chain *in version
        order*, so a worker that was killed mid-shipment reconstructs the
        same resident payload the originals hold.  A failure *during replay*
        recurses into ``_gather``/recovery, burning further budget until it
        either heals or exhausts.
        """
        replay: list[tuple[int, tuple]] = []
        for worker in targets:
            keys = sorted(
                (key for (w, key) in self._loaded if w == worker), key=repr
            )
            for key in keys:
                self._loaded.pop((worker, key), None)
                if key in self._payload_bytes:
                    replay.append((worker, key))
        # Base round: every (worker, key) re-receives the full base bytes.
        # Under page transport those bytes are descriptors whose page sets
        # the record pins alive — the rebuilt worker re-attaches the same
        # /dev/shm pages the originals map.
        for worker, key in replay:
            record = self._payload_bytes[key]
            self._inflight[worker] = "load"
            self._conns[worker].send(("load", key, record.base_bytes))
            self._count_shipped(record.base_kind, len(record.base_bytes), 1)
        if not replay:
            return 0
        # One reply is drained per *message*: workers holding several keys
        # appear once per key, deliberately.
        self._gather([worker for worker, _ in replay])
        for worker, key in replay:
            self._loaded[(worker, key)] = self._payload_bytes[key].base_version
        # Delta rounds: walk each record's chain in order, one round per
        # chain depth, so every extend lands on the payload state it was
        # pickled against.
        depth = 0
        while True:
            round_targets: list[tuple[int, tuple]] = []
            for worker, key in replay:
                record = self._payload_bytes[key]
                if depth < len(record.deltas):
                    to_version, mode, delta_bytes = record.deltas[depth]
                    self._inflight[worker] = "extend"
                    self._conns[worker].send(("extend", key, mode, delta_bytes))
                    self._count_shipped(
                        record.delta_kinds[depth], len(delta_bytes), 1
                    )
                    round_targets.append((worker, key))
            if not round_targets:
                break
            self._gather([worker for worker, _ in round_targets])
            for worker, key in round_targets:
                self._loaded[(worker, key)] = self._payload_bytes[key].deltas[depth][0]
            depth += 1
        return len(replay)

    def _record(self, event: RecoveryEvent) -> None:
        self.events.append(event)
        if self.on_event is not None:
            self.on_event(event)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "live"
        return (
            f"SupervisedWorkerPool(workers={self.workers}, {state}, "
            f"respawns={self.respawns_used}/{self.policy.max_respawns})"
        )
