"""Deterministic fault injection for the process backend.

A long-running multi-process deployment sees workers segfault, hang on a bad
page, or raise out of user code — and a supervision layer is only as good as
the failures it has actually been exercised against.  This module provides a
small, fully deterministic harness: a :class:`FaultPlan` names *which worker*
misbehaves, *how*, and *on which compute command*, and the worker-side
:class:`FaultInjector` fires each plan exactly once.

Activation:

* programmatically — pass ``FaultPlan`` objects to
  :class:`~repro.db.supervisor.SupervisedWorkerPool` (or
  ``Database(faults=...)``), or
* via the environment — ``REPRO_FAULT=<spec>`` is parsed by supervised pools
  at construction, which is how the CI chaos job injects failures under the
  whole backend suite without touching a line of test code.

Spec grammar (one or more clauses joined by ``;``)::

    spec    := clause (";" clause)*
    clause  := action (":" key "=" value)*
    action  := "kill" | "hang" | "poison"
    key     := "worker" | "epoch" | "op" | "seconds"

``worker`` is the target worker index (default 0).  ``epoch`` is the 0-based
ordinal of the matching compute command seen by that worker — *not* wall
clock — which is what makes injection deterministic and replayable.  ``op``
optionally restricts matching to one worker op (``shmem_epoch``,
``uda_state``, ``chunk_uda``, ``generic_uda``); without it any compute
command counts.  ``seconds`` bounds a ``hang`` (default one hour — far past
any sane :class:`~repro.db.supervisor.RecoveryPolicy` deadline).

Examples::

    REPRO_FAULT="kill:worker=1:epoch=0"
    REPRO_FAULT="hang:worker=0:epoch=1:seconds=3600"
    REPRO_FAULT="kill:worker=1:epoch=0:op=shmem_epoch;poison:worker=0:epoch=2"

Actions:

* ``kill`` — the worker calls ``os._exit`` before running the command: the
  parent sees the pipe close mid-command (exactly like a segfault).
* ``hang`` — the worker sleeps without replying: the parent's deadline-bounded
  ``poll`` expires and the supervisor terminates it (exactly like a livelock).
* ``poison`` — the worker raises :class:`FaultInjected` out of the command:
  the error travels back over a *healthy* pipe, so it exercises the user-code
  failure path (plain ``ExecutionError``, no respawn) rather than recovery.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from .errors import ExecutionError

FAULT_ACTIONS = ("kill", "hang", "poison")

#: Worker ops that count as compute commands for fault matching.  Control
#: traffic ("ping", "drop", "stop") never triggers a fault by default: faults
#: target the *pass* being executed, not the payload plumbing around it.
COMPUTE_OPS = ("uda_state", "chunk_uda", "generic_uda", "shmem_epoch")

#: Payload-shipping ops that may be targeted *explicitly* with ``op=``.
#: They never match an op-less plan (default matching stays compute-only),
#: but ``op=load`` / ``op=extend`` lets the chaos suite kill a worker in the
#: middle of base or delta payload shipping, exercising the supervisor's
#: base+delta replay.
PAYLOAD_OPS = ("load", "extend")

#: Environment variable carrying a fault spec for supervised pools.
FAULT_ENV_VAR = "REPRO_FAULT"

#: Exit code used by injected kills, so a post-mortem can tell an injected
#: death from a real crash in the worker logs.
KILL_EXIT_CODE = 170


class FaultInjected(RuntimeError):
    """Raised inside a worker by a ``poison`` fault plan."""


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault: *this worker*, *this action*, *this command*.

    ``epoch`` counts matching compute commands seen by the target worker
    (0-based); with ``op`` set only commands of that op count.  Each plan
    fires at most once.
    """

    action: str
    worker: int = 0
    epoch: int = 0
    op: str | None = None
    seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ExecutionError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )
        if self.worker < 0:
            raise ExecutionError("fault worker index must be >= 0")
        if self.epoch < 0:
            raise ExecutionError("fault epoch must be >= 0")
        if self.op is not None and self.op not in COMPUTE_OPS + PAYLOAD_OPS:
            raise ExecutionError(
                f"unknown fault op {self.op!r}; expected one of "
                f"{COMPUTE_OPS + PAYLOAD_OPS}"
            )
        if self.seconds <= 0:
            raise ExecutionError("fault seconds must be positive")

    def spec(self) -> str:
        """Render this plan back into the ``REPRO_FAULT`` grammar."""
        parts = [self.action, f"worker={self.worker}", f"epoch={self.epoch}"]
        if self.op is not None:
            parts.append(f"op={self.op}")
        if self.action == "hang" and self.seconds != 3600.0:
            parts.append(f"seconds={self.seconds:g}")
        return ":".join(parts)


def parse_fault_spec(text: str) -> tuple[FaultPlan, ...]:
    """Parse a ``REPRO_FAULT`` spec string into fault plans.

    See the module docstring for the grammar.  An empty/whitespace spec parses
    to no plans; malformed clauses raise :class:`ExecutionError` with the
    offending clause named, so a typo'd CI spec fails loudly instead of
    silently injecting nothing.
    """
    plans: list[FaultPlan] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        action, _, rest = clause.partition(":")
        action = action.strip().lower()
        kwargs: dict = {}
        if rest:
            for pair in rest.split(":"):
                key, sep, value = pair.partition("=")
                key = key.strip().lower()
                if not sep or not value.strip():
                    raise ExecutionError(
                        f"malformed fault clause {clause!r}: expected key=value, got {pair!r}"
                    )
                value = value.strip()
                if key in ("worker", "epoch"):
                    kwargs[key] = int(value)
                elif key == "seconds":
                    kwargs[key] = float(value)
                elif key == "op":
                    kwargs[key] = value
                else:
                    raise ExecutionError(
                        f"malformed fault clause {clause!r}: unknown key {key!r}"
                    )
        try:
            plans.append(FaultPlan(action=action, **kwargs))
        except (TypeError, ValueError) as error:
            raise ExecutionError(f"malformed fault clause {clause!r}: {error}") from error
    return tuple(plans)


def faults_from_env(environ=None) -> tuple[FaultPlan, ...]:
    """Fault plans requested through ``REPRO_FAULT`` (empty when unset)."""
    environ = os.environ if environ is None else environ
    spec = environ.get(FAULT_ENV_VAR, "")
    if not spec.strip():
        return ()
    return parse_fault_spec(spec)


@dataclass
class FaultInjector:
    """Worker-side fault trigger: counts compute commands, fires plans once.

    Lives inside the worker loop; ``before(op)`` is called with every compute
    command *before* it runs.  The per-op and total counters make matching
    deterministic regardless of how the parent interleaves passes, and each
    plan is removed once fired, so a respawned worker (which starts with a
    fresh injector holding the original plans) re-arms only if the parent
    ships the plans again — which the supervised pool deliberately does not,
    preventing an injected fault from starving its own recovery.
    """

    plans: tuple[FaultPlan, ...] = ()
    worker: int = 0
    _pending: list = field(default_factory=list)
    _seen_total: int = 0
    _seen_by_op: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._pending = [plan for plan in self.plans if plan.worker == self.worker]

    def before(self, op: str) -> None:
        """Maybe fire a fault for this command.  May not return.

        Op-less plans match any compute command; plans with ``op=`` match
        that op only — including the payload ops (``load``/``extend``), so
        the chaos suite can kill a worker mid-shipment.
        """
        if not self._pending:
            self._bump(op)
            return
        fired = None
        for plan in self._pending:
            if plan.op is not None:
                if plan.op != op:
                    continue
                count = self._seen_by_op.get(plan.op, 0)
            else:
                if op not in COMPUTE_OPS:
                    continue
                count = self._seen_total
            if count == plan.epoch:
                fired = plan
                break
        self._bump(op)
        if fired is None:
            return
        self._pending.remove(fired)
        if fired.action == "kill":
            os._exit(KILL_EXIT_CODE)  # the pipe closes mid-command, like a segfault
        elif fired.action == "hang":
            time.sleep(fired.seconds)  # the parent's poll deadline expires
        else:  # poison — travels back over a healthy pipe as a user-code error
            raise FaultInjected(
                f"injected poison fault on worker {self.worker} ({fired.spec()})"
            )

    def _bump(self, op: str) -> None:
        if op in COMPUTE_OPS:
            self._seen_total += 1
        if op in COMPUTE_OPS or op in PAYLOAD_OPS:
            self._seen_by_op[op] = self._seen_by_op.get(op, 0) + 1
