"""Deterministic fault injection for the process backend.

A long-running multi-process deployment sees workers segfault, hang on a bad
page, or raise out of user code — and a supervision layer is only as good as
the failures it has actually been exercised against.  This module provides a
small, fully deterministic harness: a :class:`FaultPlan` names *which worker*
misbehaves, *how*, and *on which compute command*, and the worker-side
:class:`FaultInjector` fires each plan exactly once.

Activation:

* programmatically — pass ``FaultPlan`` objects to
  :class:`~repro.db.supervisor.SupervisedWorkerPool` (or
  ``Database(faults=...)``), or
* via the environment — ``REPRO_FAULT=<spec>`` is parsed by supervised pools
  at construction, which is how the CI chaos job injects failures under the
  whole backend suite without touching a line of test code.

Spec grammar (one or more clauses joined by ``;``)::

    spec    := clause (";" clause)*
    clause  := action (":" key "=" value)*
    action  := "kill" | "hang" | "poison"
    key     := "worker" | "epoch" | "op" | "seconds"

``worker`` is the target worker index (default 0).  ``epoch`` is the 0-based
ordinal of the matching compute command seen by that worker — *not* wall
clock — which is what makes injection deterministic and replayable.  ``op``
optionally restricts matching to one worker op (``shmem_epoch``,
``uda_state``, ``chunk_uda``, ``generic_uda``); without it any compute
command counts.  ``seconds`` bounds a ``hang`` (default one hour — far past
any sane :class:`~repro.db.supervisor.RecoveryPolicy` deadline).

Examples::

    REPRO_FAULT="kill:worker=1:epoch=0"
    REPRO_FAULT="hang:worker=0:epoch=1:seconds=3600"
    REPRO_FAULT="kill:worker=1:epoch=0:op=shmem_epoch;poison:worker=0:epoch=2"

Actions:

* ``kill`` — the worker calls ``os._exit`` before running the command: the
  parent sees the pipe close mid-command (exactly like a segfault).
* ``hang`` — the worker sleeps without replying: the parent's deadline-bounded
  ``poll`` expires and the supervisor terminates it (exactly like a livelock).
* ``poison`` — the worker raises :class:`FaultInjected` out of the command:
  the error travels back over a *healthy* pipe, so it exercises the user-code
  failure path (plain ``ExecutionError``, no respawn) rather than recovery.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

from .errors import EnvSpecError, ExecutionError

FAULT_ACTIONS = ("kill", "hang", "poison")

#: Worker ops that count as compute commands for fault matching.  Control
#: traffic ("ping", "drop", "stop") never triggers a fault by default: faults
#: target the *pass* being executed, not the payload plumbing around it.
COMPUTE_OPS = ("uda_state", "chunk_uda", "generic_uda", "shmem_epoch")

#: Payload-shipping ops that may be targeted *explicitly* with ``op=``.
#: They never match an op-less plan (default matching stays compute-only),
#: but ``op=load`` / ``op=extend`` lets the chaos suite kill a worker in the
#: middle of base or delta payload shipping, exercising the supervisor's
#: base+delta replay.
PAYLOAD_OPS = ("load", "extend")

#: Environment variable carrying a fault spec for supervised pools.
FAULT_ENV_VAR = "REPRO_FAULT"

#: Exit code used by injected kills, so a post-mortem can tell an injected
#: death from a real crash in the worker logs.
KILL_EXIT_CODE = 170


class FaultInjected(RuntimeError):
    """Raised inside a worker by a ``poison`` fault plan."""


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault: *this worker*, *this action*, *this command*.

    ``epoch`` counts matching compute commands seen by the target worker
    (0-based); with ``op`` set only commands of that op count.  Each plan
    fires at most once.
    """

    action: str
    worker: int = 0
    epoch: int = 0
    op: str | None = None
    seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ExecutionError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )
        if self.worker < 0:
            raise ExecutionError("fault worker index must be >= 0")
        if self.epoch < 0:
            raise ExecutionError("fault epoch must be >= 0")
        if self.op is not None and self.op not in COMPUTE_OPS + PAYLOAD_OPS:
            raise ExecutionError(
                f"unknown fault op {self.op!r}; expected one of "
                f"{COMPUTE_OPS + PAYLOAD_OPS}"
            )
        if self.seconds <= 0:
            raise ExecutionError("fault seconds must be positive")

    def spec(self) -> str:
        """Render this plan back into the ``REPRO_FAULT`` grammar."""
        parts = [self.action, f"worker={self.worker}", f"epoch={self.epoch}"]
        if self.op is not None:
            parts.append(f"op={self.op}")
        if self.action == "hang" and self.seconds != 3600.0:
            parts.append(f"seconds={self.seconds:g}")
        return ":".join(parts)


def _int_field(clause: str, key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise EnvSpecError(
            f"malformed fault clause {clause!r}: {key}={value!r} is not a valid integer"
        ) from None


def _float_field(clause: str, key: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise EnvSpecError(
            f"malformed fault clause {clause!r}: {key}={value!r} is not a valid number"
        ) from None


def parse_fault_spec(text: str) -> tuple[FaultPlan, ...]:
    """Parse a ``REPRO_FAULT`` spec string into fault plans.

    See the module docstring for the grammar.  An empty/whitespace spec parses
    to no plans; malformed clauses raise :class:`EnvSpecError` (a
    ``ValueError`` subclass) naming the offending clause and field, so a
    typo'd CI spec fails loudly instead of silently injecting nothing.
    """
    plans: list[FaultPlan] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        action, _, rest = clause.partition(":")
        action = action.strip().lower()
        kwargs: dict = {}
        if rest:
            for pair in rest.split(":"):
                key, sep, value = pair.partition("=")
                key = key.strip().lower()
                if not sep or not value.strip():
                    raise EnvSpecError(
                        f"malformed fault clause {clause!r}: expected key=value, got {pair!r}"
                    )
                value = value.strip()
                if key in ("worker", "epoch"):
                    kwargs[key] = _int_field(clause, key, value)
                elif key == "seconds":
                    kwargs[key] = _float_field(clause, key, value)
                elif key == "op":
                    kwargs[key] = value
                else:
                    raise EnvSpecError(
                        f"malformed fault clause {clause!r}: unknown key {key!r}"
                    )
        try:
            plans.append(FaultPlan(action=action, **kwargs))
        except (TypeError, ValueError, ExecutionError) as error:
            raise EnvSpecError(f"malformed fault clause {clause!r}: {error}") from None
    return tuple(plans)


def faults_from_env(environ=None) -> tuple[FaultPlan, ...]:
    """Fault plans requested through ``REPRO_FAULT`` (empty when unset)."""
    environ = os.environ if environ is None else environ
    spec = environ.get(FAULT_ENV_VAR, "")
    if not spec.strip():
        return ()
    return parse_fault_spec(spec)


@dataclass
class FaultInjector:
    """Worker-side fault trigger: counts compute commands, fires plans once.

    Lives inside the worker loop; ``before(op)`` is called with every compute
    command *before* it runs.  The per-op and total counters make matching
    deterministic regardless of how the parent interleaves passes, and each
    plan is removed once fired, so a respawned worker (which starts with a
    fresh injector holding the original plans) re-arms only if the parent
    ships the plans again — which the supervised pool deliberately does not,
    preventing an injected fault from starving its own recovery.
    """

    plans: tuple[FaultPlan, ...] = ()
    worker: int = 0
    _pending: list = field(default_factory=list)
    _seen_total: int = 0
    _seen_by_op: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._pending = [plan for plan in self.plans if plan.worker == self.worker]

    def before(self, op: str) -> None:
        """Maybe fire a fault for this command.  May not return.

        Op-less plans match any compute command; plans with ``op=`` match
        that op only — including the payload ops (``load``/``extend``), so
        the chaos suite can kill a worker mid-shipment.
        """
        if not self._pending:
            self._bump(op)
            return
        fired = None
        for plan in self._pending:
            if plan.op is not None:
                if plan.op != op:
                    continue
                count = self._seen_by_op.get(plan.op, 0)
            else:
                if op not in COMPUTE_OPS:
                    continue
                count = self._seen_total
            if count == plan.epoch:
                fired = plan
                break
        self._bump(op)
        if fired is None:
            return
        self._pending.remove(fired)
        if fired.action == "kill":
            os._exit(KILL_EXIT_CODE)  # the pipe closes mid-command, like a segfault
        elif fired.action == "hang":
            time.sleep(fired.seconds)  # the parent's poll deadline expires
        else:  # poison — travels back over a healthy pipe as a user-code error
            raise FaultInjected(
                f"injected poison fault on worker {self.worker} ({fired.spec()})"
            )

    def _bump(self, op: str) -> None:
        if op in COMPUTE_OPS:
            self._seen_total += 1
        if op in COMPUTE_OPS or op in PAYLOAD_OPS:
            self._seen_by_op[op] = self._seen_by_op.get(op, 0) + 1


# --------------------------------------------------------------------- crashes
#
# Fault plans above model *worker* failure: a child process dies and the
# supervisor heals the pool.  Crash plans model failure of the *engine
# process itself* — the whole database, training loop and all, SIGKILLed with
# no chance to flush or unwind.  They exist to exercise the durability layer
# (:mod:`repro.db.wal` / :mod:`repro.db.checkpoint`): the test harness runs a
# victim engine in a child process with ``REPRO_CRASH`` set, watches it die
# with SIGKILL, then reopens the database directory and asserts recovery.

#: Environment variable carrying a crash spec (read by ``Database`` at
#: construction).  Never export this into a process you want to keep.
CRASH_ENV_VAR = "REPRO_CRASH"

#: Engine-side operations a crash plan may target.  ``epoch`` fires after the
#: gradient pass of the matching training epoch (mid-epoch: the model moved,
#: nothing was checkpointed); ``checkpoint`` fires after the temp snapshot is
#: written but *before* the atomic rename; ``wal_append`` fires after half a
#: WAL record reached the OS — a real torn write.
CRASH_OPS = ("epoch", "checkpoint", "wal_append")


@dataclass(frozen=True)
class CrashPlan:
    """One whole-process crash: SIGKILL the engine at the ``at``-th ``op``.

    ``at`` counts occurrences of the target op seen by the process (0-based),
    so ``CrashPlan("epoch", at=3)`` kills the engine at its fourth training
    epoch and ``CrashPlan("wal_append", at=5)`` mid-way through the sixth WAL
    record.
    """

    op: str = "epoch"
    at: int = 0

    def __post_init__(self) -> None:
        if self.op not in CRASH_OPS:
            raise EnvSpecError(
                f"unknown crash op {self.op!r}; expected one of {CRASH_OPS}"
            )
        if self.at < 0:
            raise EnvSpecError("crash 'at' ordinal must be >= 0")

    def spec(self) -> str:
        """Render this plan back into the ``REPRO_CRASH`` grammar."""
        return f"kill:op={self.op}:at={self.at}"


def parse_crash_spec(text: str) -> tuple[CrashPlan, ...]:
    """Parse a ``REPRO_CRASH`` spec string into crash plans.

    Grammar (clauses joined by ``;``)::

        clause := "kill" (":" key "=" value)*
        key    := "epoch" | "op" | "at"

    ``epoch=N`` is shorthand for ``op=epoch:at=N``.  Malformed clauses raise
    :class:`EnvSpecError` naming the bad field.
    """
    plans: list[CrashPlan] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        action, _, rest = clause.partition(":")
        action = action.strip().lower()
        if action != "kill":
            raise EnvSpecError(
                f"malformed crash clause {clause!r}: unknown action {action!r} "
                "(only 'kill' is supported)"
            )
        kwargs: dict = {}
        if rest:
            for pair in rest.split(":"):
                key, sep, value = pair.partition("=")
                key = key.strip().lower()
                if not sep or not value.strip():
                    raise EnvSpecError(
                        f"malformed crash clause {clause!r}: expected key=value, got {pair!r}"
                    )
                value = value.strip()
                if key == "epoch":
                    kwargs["op"] = "epoch"
                    kwargs["at"] = _ordinal_field(clause, key, value)
                elif key == "at":
                    kwargs["at"] = _ordinal_field(clause, key, value)
                elif key == "op":
                    kwargs["op"] = value.lower()
                else:
                    raise EnvSpecError(
                        f"malformed crash clause {clause!r}: unknown key {key!r}"
                    )
        plans.append(CrashPlan(**kwargs))
    return tuple(plans)


def _ordinal_field(clause: str, key: str, value: str) -> int:
    number = _int_field(clause, key, value)
    if number < 0:
        raise EnvSpecError(
            f"malformed crash clause {clause!r}: {key}={value!r} must be >= 0"
        )
    return number


def crashes_from_env(environ=None) -> tuple[CrashPlan, ...]:
    """Crash plans requested through ``REPRO_CRASH`` (empty when unset)."""
    environ = os.environ if environ is None else environ
    spec = environ.get(CRASH_ENV_VAR, "")
    if not spec.strip():
        return ()
    try:
        return parse_crash_spec(spec)
    except EnvSpecError as error:
        raise EnvSpecError(f"{CRASH_ENV_VAR}: {error}") from None


class CrashInjector:
    """Engine-side crash trigger: counts ops, SIGKILLs the process on a match.

    The engine, the WAL and the checkpoint writer call
    :meth:`crash_point` at their respective hazard points; when a pending
    plan matches, the process receives ``SIGKILL`` — no atexit handlers, no
    ``finally`` blocks, no buffered flushes.  Exactly what a power cut or an
    OOM kill looks like to the durability layer.
    """

    def __init__(self, plans: "tuple[CrashPlan, ...] | list | None" = None):
        self._pending: list[CrashPlan] = list(plans or ())
        self._seen: dict[str, int] = {}

    @property
    def armed(self) -> bool:
        return bool(self._pending)

    def should_fire(self, op: str) -> bool:
        """Count one occurrence of ``op``; True when a pending plan matches."""
        count = self._seen.get(op, 0)
        self._seen[op] = count + 1
        for plan in self._pending:
            if plan.op == op and plan.at == count:
                self._pending.remove(plan)
                return True
        return False

    def fire(self) -> None:
        """SIGKILL the current process.  Does not return."""
        os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(60)  # the signal is fatal; never reached

    def crash_point(self, op: str) -> None:
        """Maybe crash here.  May not return."""
        if self.should_fire(op):
            self.fire()
