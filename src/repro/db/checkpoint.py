"""Atomic checkpoints of tables + training state, and crash recovery.

A checkpoint is one self-contained snapshot of a database: every catalog
table (rows, schema, version counter **and version ledger** — so
``partial_fit`` watermarks keep classifying correctly across a crash), the
engine's saved :class:`TrainingState` objects, and the WAL position the
snapshot covers through.

Atomicity is rename-based: the snapshot is fully written and fsync'd to a
``*.tmp`` file, then ``os.replace``'d into its generation-numbered final
name.  A crash before the rename leaves only a stale temp file (ignored and
swept on the next open); a crash after it leaves a complete new generation.
There is no state in which a half-written checkpoint can be mistaken for a
whole one — the payload is CRC-framed, and recovery scans generations newest
to oldest, falling back past any snapshot that does not validate.

Recovery (:func:`recover_database`, run by ``Database.open``):

1. truncate the WAL's torn tail (:func:`~repro.db.wal.repair_wal_directory`);
2. load the newest *valid* checkpoint; restore tables and training states;
3. replay WAL records past the checkpoint's ``(segment, offset)`` — table
   mutations re-apply with their original :class:`~repro.db.table.LedgerEntry`
   (exact version numbers, ledger reconstructed, no re-logging), DDL records
   re-create/drop tables;
4. the engine then reopens the WAL for append and re-attaches its mutation
   observers.

A resumed deterministic training run continues from the restored
:class:`TrainingState` — model, epoch counter, step offset, history, the
``numpy`` RNG *and the ordering policy's drawn permutations* — and must
match the uninterrupted run bit-for-bit.
"""

from __future__ import annotations

import os
import pickle
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .table import Table
from .wal import RECORD_HEADER, iter_wal_records, repair_wal_directory

#: Checkpoint file framing: magic + format version, then ``<II`` (length,
#: CRC-32) and the pickled payload.
CHECKPOINT_MAGIC = b"BCKP1"
CHECKPOINT_FORMAT = 1


@dataclass
class TrainingState:
    """Everything a ``BismarckRunner`` needs to continue a run bit-for-bit.

    Captured at epoch granularity (end of epoch ``next_epoch - 1``): the
    model, the convergence history, the RNG mid-stream, and a deep copy of
    the ordering policy — shuffle policies draw permutations lazily and cache
    them, so the *policy object* (not just its name) is part of the resumable
    state.  ``table_version`` is the frontend's ``table@version`` watermark:
    after recovery, ``partial_fit`` continues over exactly the rows the WAL
    replayed past it.
    """

    name: str
    task: str
    table_name: str
    table_version: int
    model: Any
    next_epoch: int
    step_offset: int
    history: list = field(default_factory=list)
    rng: Any = None
    ordering: Any = None


class CheckpointManager:
    """Generation-numbered atomic snapshots in a database directory."""

    KEEP_GENERATIONS = 2

    def __init__(self, directory: Path, *, crash: "object | None" = None):
        self.directory = Path(directory)
        self._crash = crash
        # Stale temp files are crashes' litter; they are never loadable state.
        for leftover in self.directory.glob("checkpoint-*.tmp"):
            leftover.unlink(missing_ok=True)

    def _path(self, generation: int) -> Path:
        return self.directory / f"checkpoint-{generation:06d}.ckpt"

    def generations(self) -> list[int]:
        found = []
        for path in self.directory.glob("checkpoint-*.ckpt"):
            try:
                found.append(int(path.stem.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return sorted(found)

    def write(self, payload: dict) -> Path:
        """Atomically persist one snapshot; returns the final path."""
        existing = self.generations()
        generation = existing[-1] + 1 if existing else 0
        payload = {**payload, "format": CHECKPOINT_FORMAT, "generation": generation}
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        blob = CHECKPOINT_MAGIC + RECORD_HEADER.pack(len(data), zlib.crc32(data)) + data
        final = self._path(generation)
        tmp = final.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        if self._crash is not None:
            # The mid-checkpoint hazard point: the snapshot exists only as a
            # temp file.  Dying here must cost nothing but the temp file.
            self._crash.crash_point("checkpoint")
        os.replace(tmp, final)
        self._fsync_directory()
        for old in existing[: max(0, len(existing) - (self.KEEP_GENERATIONS - 1))]:
            self._path(old).unlink(missing_ok=True)
        return final

    def load(self, generation: int) -> "dict | None":
        """One generation's payload, or None when missing/corrupt."""
        path = self._path(generation)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        prefix = len(CHECKPOINT_MAGIC)
        if not blob.startswith(CHECKPOINT_MAGIC) or len(blob) < prefix + RECORD_HEADER.size:
            return None
        length, checksum = RECORD_HEADER.unpack_from(blob, prefix)
        data = blob[prefix + RECORD_HEADER.size:]
        if len(data) != length or zlib.crc32(data) != checksum:
            return None
        return pickle.loads(data)

    def load_latest(self) -> "tuple[dict, int] | None":
        """Newest checkpoint that validates, scanning newest → oldest."""
        for generation in reversed(self.generations()):
            payload = self.load(generation)
            if payload is not None:
                return payload, generation
        return None

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


@dataclass
class RecoveryReport:
    """What one ``Database.open`` recovery pass did."""

    checkpoint_generation: "int | None" = None
    tables_restored: int = 0
    records_replayed: int = 0
    torn_bytes_discarded: int = 0
    training_states: tuple = ()

    @property
    def recovered_anything(self) -> bool:
        return self.checkpoint_generation is not None or self.records_replayed > 0


def recover_database(database, directory: Path) -> RecoveryReport:
    """Restore ``database``'s catalog and training states from disk.

    Called by the engine before the WAL is reopened for append and before
    mutation observers are attached, so nothing replayed here is re-logged.
    """
    directory = Path(directory)
    report = RecoveryReport()
    report.torn_bytes_discarded = repair_wal_directory(directory)

    loaded = database.checkpoints.load_latest()
    position = None
    if loaded is not None:
        payload, generation = loaded
        report.checkpoint_generation = generation
        for key, image in payload.get("tables", {}).items():
            database.tables[key] = Table.from_image(image)
            report.tables_restored += 1
        database._training_states.update(payload.get("training", {}))
        position = payload.get("wal_position")
        if position is None:
            # Checkpoint-only durability (mode "off"): the snapshot is the
            # whole truth; any WAL files predate it or belong to another mode.
            report.training_states = tuple(sorted(database._training_states))
            return report

    for record in iter_wal_records(directory, after=position):
        kind = record.get("type")
        if kind == "create":
            table = Table.from_image(record["image"])
            database.tables[table.name.lower()] = table
            report.tables_restored += 1
        elif kind == "drop":
            database.tables.pop(record["name"], None)
        elif kind == "mutation":
            table = database.tables.get(record["table"])
            if table is not None:
                table.apply_logged_mutation(
                    record["entry"], record["rows"], record.get("clustered_on")
                )
        report.records_replayed += 1
    report.training_states = tuple(sorted(database._training_states))
    return report
