"""Query executor: scans, filters, ordering, limits and aggregation.

The executor is deliberately simple — a pipeline of generators over the heap
table — but it implements the two things Bismarck depends on faithfully:

* sequential scans return rows in physical (heap) order, so clustering and
  shuffling of the table are visible to any aggregate run over it; and
* aggregation runs any :class:`~repro.db.aggregates.UserDefinedAggregate`
  through the standard ``initialize / transition / terminate`` protocol, one
  tuple at a time, exactly like the IGD aggregate in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from .aggregates import AggregateRegistry, UserDefinedAggregate, merge_partial_states
from .chunk_plan import ChunkPlan
from .errors import ExecutionError
from .expressions import Expression, FunctionCall, Star
from .parser import OrderBy, SelectItem, SelectStatement
from .table import DEFAULT_CHUNK_SIZE, Table
from .types import Row, Schema

#: Sentinel returned by the chunked fast path when it cannot serve a request
#: (non-batchable aggregate/task/table) and per-tuple execution must run.
_CHUNKS_UNSUPPORTED = object()


@dataclass
class QueryResult:
    """Result of executing a statement."""

    columns: list[str]
    rows: list[tuple]
    #: Wall-clock execution time in seconds (used by the experiment harness).
    elapsed_seconds: float = 0.0
    #: Number of tuples read from base tables during execution.
    tuples_scanned: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def scalar(self) -> Any:
        """Return the single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ExecutionError(
                f"scalar() called on a {len(self.rows)}x"
                f"{len(self.rows[0]) if self.rows else 0} result"
            )
        return self.rows[0][0]

    def column(self, name_or_index: str | int) -> list:
        """Materialise one output column."""
        if isinstance(name_or_index, str):
            try:
                index = self.columns.index(name_or_index)
            except ValueError:
                raise ExecutionError(f"no output column named {name_or_index!r}") from None
        else:
            index = name_or_index
        return [row[index] for row in self.rows]

    def as_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]


class Executor:
    """Executes parsed SELECT statements and programmatic aggregations."""

    def __init__(
        self,
        aggregates: AggregateRegistry,
        functions: dict[str, Callable] | None = None,
        *,
        per_tuple_overhead: float = 0.0,
        model_passing_overhead: float = 0.0,
        rng: np.random.Generator | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        cache_entries: int = 32,
    ):
        self.aggregates = aggregates
        # Keep a reference to the caller's registry (not a copy): functions
        # registered after the executor is built must remain visible.
        self.functions = functions if functions is not None else {}
        #: Rows per columnar chunk on the batch-at-a-time aggregation path.
        self.chunk_size = chunk_size
        #: Bound on retained ExampleCache entries (LRU by last touch).
        self.cache_entries = cache_entries
        #: Compute dtype of the chunk plane's dense feature payloads:
        #: ``"float64"`` (bit-for-bit default) or ``"float32"`` (opt-in —
        #: halves page bytes; the model stays float64).  Set per pass by the
        #: plan backends from :attr:`~repro.db.pass_plan.PassPlan.compute_dtype`.
        self.compute_dtype = "float64"
        self._example_cache = None  # built lazily (avoids a db<->tasks import cycle)
        #: Simulated fixed cost charged per tuple fed to an aggregate; the
        #: engine personalities use this to model per-engine differences
        #: (Tables 2 and 3 in the paper).  Charged as busy-wait-free arithmetic
        #: accumulation (not sleep) so results are deterministic.
        self.per_tuple_overhead = per_tuple_overhead
        #: Extra per-tuple cost charged when the aggregate's state (the model)
        #: must be serialised across the engine's function-call boundary; the
        #: charge is scaled by the aggregate's ``state_passing_units``.
        self.model_passing_overhead = model_passing_overhead
        #: Optional sink for DegradationEvent records emitted when a
        #: process-backed pass falls back in-process (the owning Database
        #: points this at its recovery log).
        self.on_degradation: Callable | None = None
        self.rng = rng or np.random.default_rng()

    # ---------------------------------------------------------------- SELECT
    def execute_select(self, statement: SelectStatement, table: Table | None) -> QueryResult:
        start = time.perf_counter()
        if statement.table is None:
            result = self._execute_tableless(statement)
        elif statement.has_aggregates:
            result = self._execute_aggregate_select(statement, table)
        else:
            result = self._execute_plain_select(statement, table)
        result.elapsed_seconds = time.perf_counter() - start
        return result

    def _execute_tableless(self, statement: SelectStatement) -> QueryResult:
        columns: list[str] = []
        values: list[Any] = []
        for i, item in enumerate(statement.items):
            if isinstance(item.expression, Star):
                raise ExecutionError("'*' requires a FROM clause")
            columns.append(item.alias or _default_name(item, i))
            values.append(item.expression.evaluate(None, self.functions))
        return QueryResult(columns=columns, rows=[tuple(values)])

    def _row_source(self, statement: SelectStatement, table: Table) -> tuple[Iterable[Row], int]:
        rows: Iterable[Row] = table.scan()
        scanned = len(table)
        if statement.where is not None:
            predicate = statement.where
            rows = (
                row for row in rows if bool(predicate.evaluate(row, self.functions))
            )
        return rows, scanned

    def _apply_order_limit(
        self, rows: Iterable[Row], order_by: OrderBy | None, limit: int | None
    ) -> list[Row]:
        if order_by is not None:
            materialized = list(rows)
            if order_by.random:
                permutation = self.rng.permutation(len(materialized))
                materialized = [materialized[i] for i in permutation]
            else:
                materialized.sort(
                    key=lambda row: order_by.expression.evaluate(row, self.functions),
                    reverse=order_by.descending,
                )
            rows = materialized
        if limit is not None:
            limited: list[Row] = []
            for row in rows:
                if len(limited) >= limit:
                    break
                limited.append(row)
            return limited
        return list(rows)

    def _execute_plain_select(self, statement: SelectStatement, table: Table) -> QueryResult:
        if table is None:
            raise ExecutionError("SELECT with FROM requires a table")
        rows, scanned = self._row_source(statement, table)
        ordered = self._apply_order_limit(rows, statement.order_by, statement.limit)

        star_only = len(statement.items) == 1 and isinstance(statement.items[0].expression, Star)
        if star_only:
            columns = list(table.schema.column_names)
            output = [row.values for row in ordered]
            return QueryResult(columns=columns, rows=output, tuples_scanned=scanned)

        columns = [
            item.alias or _default_name(item, i) for i, item in enumerate(statement.items)
        ]
        output = []
        for row in ordered:
            output.append(
                tuple(item.expression.evaluate(row, self.functions) for item in statement.items)
            )
        return QueryResult(columns=columns, rows=output, tuples_scanned=scanned)

    def _execute_aggregate_select(self, statement: SelectStatement, table: Table) -> QueryResult:
        if table is None:
            raise ExecutionError("aggregate query requires a table")
        if any(item.aggregate_name is None for item in statement.items):
            raise ExecutionError(
                "mixing aggregate and non-aggregate select items without GROUP BY "
                "is not supported"
            )
        rows, scanned = self._row_source(statement, table)
        ordered = self._apply_order_limit(rows, statement.order_by, None)

        instances: list[UserDefinedAggregate] = []
        arguments: list[Expression] = []
        for item in statement.items:
            instances.append(self.aggregates.create(item.aggregate_name))
            arguments.append(item.aggregate_argument or Star())

        states = [instance.initialize() for instance in instances]
        passing_units = max(instance.state_passing_units for instance in instances)
        overhead_sink = 0.0
        for row in ordered:
            overhead_sink += self._charge_overhead(passing_units)
            for i, instance in enumerate(instances):
                value = row if instance.wants_row else self._aggregate_input(arguments[i], row)
                states[i] = instance.transition(states[i], value)
        results = tuple(
            instance.terminate(state) for instance, state in zip(instances, states)
        )
        columns = [
            item.alias or _default_name(item, i) for i, item in enumerate(statement.items)
        ]
        result = QueryResult(columns=columns, rows=[results], tuples_scanned=scanned)
        # Keep the accumulated overhead reachable so it cannot be optimised out.
        result.overhead_sink = overhead_sink  # type: ignore[attr-defined]
        return result

    def _aggregate_input(self, argument: Expression, row: Row) -> Any:
        if isinstance(argument, Star):
            return row
        return argument.evaluate(row, self.functions)

    def _charge_overhead(self, state_passing_units: float = 0.0) -> float:
        """Simulate a per-tuple engine cost with a small arithmetic loop.

        Returns the accumulated value so callers can keep it live.  The amount
        of work scales linearly with ``per_tuple_overhead`` plus
        ``model_passing_overhead * state_passing_units`` (abstract cost units;
        1.0 unit ~ a few hundred float multiplies).
        """
        cost = self.per_tuple_overhead + self.model_passing_overhead * state_passing_units
        if cost <= 0:
            return 0.0
        iterations = int(cost * 64)
        sink = 1.0
        for i in range(iterations):
            sink = sink * 1.0000001 + 1e-9 * i
        return sink

    # ------------------------------------------------------- programmatic API
    @property
    def example_cache(self):
        """The executor's per-(table, version, task) decoded-example cache."""
        if self._example_cache is None:
            from ..tasks.base import ExampleCache

            self._example_cache = ExampleCache(self.cache_entries)
        return self._example_cache

    def chunk_plan(
        self,
        table: Table,
        instance: UserDefinedAggregate,
        *,
        where: Expression | None = None,
        row_order: Sequence[int] | None = None,
    ) -> ChunkPlan | None:
        """Resolve the backend-neutral chunk plan for one aggregate pass.

        ``where`` is served by a selection vector cached once per (table,
        version, predicate); ``row_order`` by a vectorized gather over the
        cached batches — neither forces per-tuple execution any more.
        """
        return ChunkPlan.resolve(
            table,
            instance.chunk_decoder,
            self.example_cache,
            self.chunk_size,
            where=where,
            row_order=row_order,
            functions=self.functions,
            dtype=self.compute_dtype,
        )

    def consume_chunk_plan(
        self, table: Table, instance: UserDefinedAggregate, plan: ChunkPlan
    ) -> Any:
        """initialize + transition_chunk over a plan, returning the raw state.

        The single chunk-consumption loop shared by the serial path and the
        segmented backend: per-tuple engine overhead (tuple formation, UDA
        call, model passing) is charged once per chunk — the function-call
        boundary is crossed per batch, which is the entire reason vectorized
        execution wins — and the pass counts as one logical scan even when
        served from the cache.
        """
        table.scan_count += 1
        state = instance.initialize()
        overhead_sink = 0.0
        for batch in plan:
            overhead_sink += self._charge_overhead(instance.state_passing_units)
            state = instance.transition_chunk(state, batch)
        if overhead_sink < 0:  # pragma: no cover - keeps the sink live
            raise ExecutionError("overhead accumulator underflow")
        return state

    def run_chunk_partitioned(
        self,
        table: Table,
        instance: UserDefinedAggregate,
        workers: int,
    ) -> Any:
        """Serial reference for a chunk-partitioned scalar pass.

        Runs the same partition contract as the process backend — worker ``w``
        consumes cached chunks ``w::width`` in ascending order, partial states
        merge left-to-right — sequentially in this process, so a process run
        of the same plan is bit-for-bit this result.  Returns the sentinel
        ``_CHUNKS_UNSUPPORTED`` when no chunk plan resolves.
        """
        plan = self.chunk_plan(table, instance)
        if plan is None:
            return _CHUNKS_UNSUPPORTED
        batches = plan.batches
        width = max(1, min(workers, len(batches)) if batches else 1)
        table.scan_count += 1
        states = []
        for worker in range(width):
            self._charge_overhead(instance.state_passing_units)
            state = instance.initialize()
            for chunk_id in range(worker, len(batches), width):
                state = instance.transition_chunk(state, batches[chunk_id])
            states.append(state)
        return merge_partial_states(instance, states)

    def run_row_partitioned(
        self,
        table: Table,
        instance: UserDefinedAggregate,
        workers: int,
        *,
        where: Expression | None = None,
        row_order: Sequence[int] | None = None,
        argument: Expression | None = None,
    ) -> Any:
        """Serial reference for a row-partitioned mergeable pass.

        The visit ordinals (WHERE + row order composed exactly like the chunk
        plane) split round-robin by position; each partition replays
        per-example transitions over the cache-decoded examples (task-backed
        aggregates) or per-row transitions over the heap (generic aggregates),
        and the partials merge left-to-right.  This is the in-process
        counterpart of the process backend's example/row partitioning: same
        partitions, same float operations, same merge order — bit-for-bit.
        """
        from .chunk_plan import resolve_ordinals, split_round_robin

        decoder = instance.chunk_decoder
        ordinals = resolve_ordinals(table, self.example_cache, self.functions, where, row_order)
        if ordinals is None:
            ordinals = np.arange(len(table), dtype=np.intp)
        width = max(1, min(workers, ordinals.shape[0]) if ordinals.shape[0] else 1)
        if decoder is not None:
            items: Sequence[Any] = self.example_cache.examples_for(table, decoder)
        else:
            items = table.to_rows()
        table.scan_count += 1
        wants_row = instance.wants_row or argument is None
        states = []
        for part in split_round_robin(ordinals, width):
            self._charge_overhead(instance.state_passing_units)
            state = instance.initialize()
            for ordinal in part:
                item = items[int(ordinal)]
                if decoder is None and not wants_row:
                    item = argument.evaluate(item, self.functions)
                state = instance.transition(state, item)
            states.append(state)
        return merge_partial_states(instance, states)

    def _run_aggregate_chunked(
        self,
        table: Table,
        instance: UserDefinedAggregate,
        *,
        where: Expression | None = None,
        row_order: Sequence[int] | None = None,
    ) -> Any:
        """Batch-at-a-time aggregation over cached columnar example batches."""
        plan = self.chunk_plan(table, instance, where=where, row_order=row_order)
        if plan is None:
            return _CHUNKS_UNSUPPORTED
        return instance.terminate(self.consume_chunk_plan(table, instance, plan))

    def run_aggregate(
        self,
        table: Table,
        aggregate: UserDefinedAggregate | str,
        argument: Expression | str | None = None,
        *,
        where: Expression | None = None,
        row_order: Sequence[int] | None = None,
        execution: str = "per_tuple",
        backend: str = "in_process",
        process_pool=None,
        process_workers: int | None = None,
    ) -> Any:
        """Run a single aggregate over a table without going through SQL.

        ``row_order`` optionally specifies the tuple visit order (a permutation
        of row ordinals) — this is how the ordering policies express
        shuffle-once / shuffle-always without physically rewriting the table.

        ``execution`` picks the code path: ``"per_tuple"`` (the default, the
        paper's tuple-at-a-time UDA protocol), ``"chunked"`` (batch-at-a-time
        over cached columnar examples; raises if the aggregate/table cannot
        chunk), or ``"auto"`` (chunked when possible, silent per-tuple
        fallback).  WHERE filters ride the chunk plane through a selection
        vector cached once per (table, version, predicate); explicit row
        orders through a vectorized gather over the cached batches — both
        produce bit-for-bit the per-tuple models.

        ``backend`` selects who performs the pass: ``"in_process"`` (the
        default) runs in this process; ``"process"`` fans a mergeable,
        task-backed aggregate out over a :class:`ProcessWorkerPool` of real
        OS workers (round-robin ordinal partitions, deterministic
        left-to-right merge — bit-for-bit a segmented run with as many
        segments as pool workers).  ``process_pool`` supplies the pool; if
        omitted an ephemeral pool of one worker per core is used for the call.
        """
        if execution not in ("per_tuple", "chunked", "auto"):
            raise ExecutionError(f"unknown execution mode {execution!r}")
        if backend not in ("in_process", "process"):
            raise ExecutionError(f"unknown execution backend {backend!r}")
        instance = (
            self.aggregates.create(aggregate) if isinstance(aggregate, str) else aggregate
        )
        if isinstance(argument, str):
            from .expressions import ColumnRef

            argument = ColumnRef(argument)
        if backend == "process":
            if execution == "per_tuple":
                raise ExecutionError(
                    "the process backend ships cache-decoded examples and "
                    "cannot replay the per-tuple engine protocol; pass "
                    "execution='auto' or 'chunked' with backend='process'"
                )
            from .process_backend import (
                ProcessWorkerPool,
                default_process_workers,
                run_process_aggregate,
            )

            from .errors import WorkerDiedError

            try:
                if process_pool is not None:
                    # Retry recoverable worker deaths: a supervised pool has
                    # already respawned the casualties and replayed payloads,
                    # so re-running the (deterministic, mergeable) pass is
                    # both safe and bit-for-bit.  Non-recoverable errors fall
                    # through to the in-process ladder below.
                    while True:
                        try:
                            return run_process_aggregate(
                                self, table, instance, pool=process_pool,
                                where=where, row_order=row_order,
                                workers=process_workers, argument=argument,
                                execution=execution,
                            )
                        except WorkerDiedError as error:
                            if not error.recoverable:
                                raise
                else:
                    with ProcessWorkerPool(default_process_workers()) as pool:
                        return run_process_aggregate(
                            self, table, instance, pool=pool,
                            where=where, row_order=row_order,
                            workers=process_workers, argument=argument,
                            execution=execution,
                        )
            except WorkerDiedError as error:
                # Degrade to the in-process path rather than failing the
                # query: the pass is mergeable and deterministic, so the
                # serial result is the same value the pool would have
                # produced.  Structured event instead of an exception.
                if self.on_degradation is not None:
                    from .supervisor import DegradationEvent

                    self.on_degradation(
                        DegradationEvent(
                            plan_kind="aggregate",
                            from_backend="process",
                            to_backend="in_process",
                            reason=str(error),
                        )
                    )
                return self.run_aggregate(
                    table, instance, argument, where=where, row_order=row_order,
                    execution=execution, backend="in_process",
                )
        if execution != "per_tuple":
            if instance.supports_chunks:
                outcome = self._run_aggregate_chunked(
                    table, instance, where=where, row_order=row_order
                )
                if outcome is not _CHUNKS_UNSUPPORTED:
                    return outcome
            if execution == "chunked":
                raise ExecutionError(
                    f"aggregate {type(instance).__name__} cannot run chunked over "
                    f"table {table.name!r} (unsupported aggregate, task or column types)"
                )
        argument_expression: Expression | None = argument

        state = instance.initialize()
        overhead_sink = 0.0
        if row_order is None:
            row_iter: Iterable[Row] = table.scan()
        else:
            # One logical scan per ordered pass: row_at random access does not
            # touch the statistics itself, but shuffle-always/MRS-style ordered
            # passes read every tuple and must show up in the scan counts the
            # overhead/scalability experiments report.
            table.scan_count += 1
            row_iter = (table.row_at(i) for i in row_order)
        for row in row_iter:
            if where is not None and not bool(where.evaluate(row, self.functions)):
                continue
            overhead_sink += self._charge_overhead(instance.state_passing_units)
            if instance.wants_row or argument_expression is None:
                value: Any = row
            else:
                value = argument_expression.evaluate(row, self.functions)
            state = instance.transition(state, value)
        result = instance.terminate(state)
        if overhead_sink < 0:  # pragma: no cover - keeps the sink live
            raise ExecutionError("overhead accumulator underflow")
        return result


def _default_name(item: SelectItem, index: int) -> str:
    expression = item.expression
    if item.aggregate_name is not None:
        return item.aggregate_name
    if isinstance(expression, FunctionCall):
        return expression.name.lower()
    from .expressions import ColumnRef

    if isinstance(expression, ColumnRef):
        return expression.name
    return f"column{index}"
