"""User-defined aggregate (UDA) contract and built-in SQL aggregates.

This is the heart of the substrate for the Bismarck reproduction: the paper's
entire architecture is "IGD is a UDA".  A UDA is defined by the three standard
functions the paper describes (Figure 3) plus the optional ``merge`` used for
shared-nothing parallelism:

* ``initialize()``            -> state
* ``transition(state, row)``  -> state
* ``merge(state, state)``     -> state        (optional)
* ``terminate(state)``        -> result

Built-in aggregates (COUNT, SUM, AVG, MIN, MAX, STDDEV, and the paper's
strawman NULL aggregate) are expressed through the same contract so the
executor has a single aggregation code path.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable

from .errors import ExecutionError, UnknownFunctionError
from .types import Row


class UserDefinedAggregate:
    """Base class for aggregates.

    Subclasses override the four functions.  ``transition`` receives the value
    of the aggregate's argument expression for the current row (or the whole
    :class:`Row` when the aggregate was registered with ``wants_row=True``),
    matching how an RDBMS hands a UDA either a column value or a record type.
    """

    #: When True the executor passes the whole Row to ``transition`` instead of
    #: the evaluated argument (used by Bismarck's IGD aggregate, which needs
    #: several columns per tuple).
    wants_row: bool = False

    #: When False the parallel engine refuses to split this aggregate across
    #: segments (no merge function was provided).
    supports_merge: bool = True

    #: Relative size of the aggregation state passed across the engine's
    #: function-call boundary on every transition.  Built-in aggregates carry a
    #: few scalars (0.0 = negligible); Bismarck's IGD aggregate carries the
    #: whole model (1.0), which is what makes the pure-UDA implementation slow
    #: on engines with expensive model passing (the paper's "DBMS A").
    state_passing_units: float = 0.0

    #: Chunked-execution contract.  Aggregates that can consume a whole
    #: decoded :class:`~repro.tasks.base.ExampleBatch` per call set
    #: ``supports_chunks`` (usually a property consulting the task) and expose
    #: the decoding task via ``chunk_decoder`` so the executor can key its
    #: example cache on it; ``transition_chunk`` then replaces a run of
    #: per-tuple ``transition`` calls.  The engine charges its per-tuple /
    #: model-passing overhead once per *chunk* on this path — the
    #: function-call boundary is crossed per batch, which is exactly why
    #: batch-at-a-time execution is fast.
    supports_chunks: bool = False
    chunk_decoder: Any = None

    #: Merge-contract refinement for the parallel pass backends.  A pass over
    #: a mergeable aggregate may always be split into row partitions whose
    #: partial states merge left-to-right (the pure-UDA contract).  Aggregates
    #: that additionally set ``chunk_partitionable`` declare that *whole
    #: cached chunks* can be dealt to workers and consumed through
    #: ``transition_chunk`` — i.e. the state is a reduction whose value does
    #: not depend on which worker saw which chunk, only on the deterministic
    #: left-to-right merge of the partials.  Scalar reductions (loss,
    #: accuracy, counts) qualify; order-sensitive aggregates like IGD — where
    #: ``transition`` at position k depends on the state after position k-1 —
    #: must not, or a partitioned pass would silently compute a different
    #: (still valid, but non-reproducible) result than its serial plan.
    chunk_partitionable: bool = False

    def initialize(self) -> Any:
        raise NotImplementedError

    def transition(self, state: Any, value: Any) -> Any:
        raise NotImplementedError

    def transition_chunk(self, state: Any, batch: Any) -> Any:
        raise ExecutionError(
            f"aggregate {type(self).__name__} does not support transition_chunk()"
        )

    def merge(self, state_a: Any, state_b: Any) -> Any:
        raise ExecutionError(
            f"aggregate {type(self).__name__} does not support merge()"
        )

    def terminate(self, state: Any) -> Any:
        return state

    # Convenience driver used by tests and by code that wants to run an
    # aggregate outside the SQL executor.
    def run(self, values: Iterable[Any]) -> Any:
        state = self.initialize()
        for value in values:
            state = self.transition(state, value)
        return self.terminate(state)


def merge_partial_states(instance: UserDefinedAggregate, states: "list[Any]") -> Any:
    """Merge partition partials left-to-right, then terminate.

    This is *the* merge contract of the parallel pass backends: partials
    combine in partition-index order and only then ``terminate``.  Every
    backend (serial reference runner, segmented engine, process pool) must
    call this one helper so the association order — which fixes the exact
    float result — can never drift between them.
    """
    merged = states[0]
    for state in states[1:]:
        merged = instance.merge(merged, state)
    return instance.terminate(merged)


class FunctionalAggregate(UserDefinedAggregate):
    """Build a UDA from plain callables (handy for tests and quick UDAs)."""

    def __init__(
        self,
        initialize: Callable[[], Any],
        transition: Callable[[Any, Any], Any],
        terminate: Callable[[Any], Any] | None = None,
        merge: Callable[[Any, Any], Any] | None = None,
        *,
        wants_row: bool = False,
    ):
        self._initialize = initialize
        self._transition = transition
        self._terminate = terminate or (lambda state: state)
        self._merge = merge
        self.wants_row = wants_row
        self.supports_merge = merge is not None

    def initialize(self) -> Any:
        return self._initialize()

    def transition(self, state: Any, value: Any) -> Any:
        return self._transition(state, value)

    def merge(self, state_a: Any, state_b: Any) -> Any:
        if self._merge is None:
            return super().merge(state_a, state_b)
        return self._merge(state_a, state_b)

    def terminate(self, state: Any) -> Any:
        return self._terminate(state)


# --------------------------------------------------------------------------
# Built-in aggregates
# --------------------------------------------------------------------------
class CountAggregate(UserDefinedAggregate):
    """``COUNT(expr)`` — number of non-NULL values (``COUNT(*)`` counts rows)."""

    def initialize(self) -> int:
        return 0

    def transition(self, state: int, value: Any) -> int:
        if value is None:
            return state
        return state + 1

    def merge(self, state_a: int, state_b: int) -> int:
        return state_a + state_b

    def terminate(self, state: int) -> int:
        return state


class SumAggregate(UserDefinedAggregate):
    """``SUM(expr)`` over non-NULL values; NULL if no values."""

    def initialize(self):
        return None

    def transition(self, state, value):
        if value is None:
            return state
        if state is None:
            return value
        return state + value

    def merge(self, state_a, state_b):
        if state_a is None:
            return state_b
        if state_b is None:
            return state_a
        return state_a + state_b


class AvgAggregate(UserDefinedAggregate):
    """``AVG(expr)`` — running (sum, count) pair, as in the paper's example."""

    def initialize(self) -> tuple[float, int]:
        return (0.0, 0)

    def transition(self, state: tuple[float, int], value: Any) -> tuple[float, int]:
        if value is None:
            return state
        total, count = state
        return (total + float(value), count + 1)

    def merge(self, state_a, state_b):
        return (state_a[0] + state_b[0], state_a[1] + state_b[1])

    def terminate(self, state: tuple[float, int]):
        total, count = state
        if count == 0:
            return None
        return total / count


class MinAggregate(UserDefinedAggregate):
    """``MIN(expr)``."""

    def initialize(self):
        return None

    def transition(self, state, value):
        if value is None:
            return state
        if state is None or value < state:
            return value
        return state

    def merge(self, state_a, state_b):
        return self.transition(state_a, state_b)


class MaxAggregate(UserDefinedAggregate):
    """``MAX(expr)``."""

    def initialize(self):
        return None

    def transition(self, state, value):
        if value is None:
            return state
        if state is None or value > state:
            return value
        return state

    def merge(self, state_a, state_b):
        return self.transition(state_a, state_b)


class StddevAggregate(UserDefinedAggregate):
    """``STDDEV(expr)`` — population standard deviation via Welford merge."""

    def initialize(self) -> tuple[int, float, float]:
        # (count, mean, M2)
        return (0, 0.0, 0.0)

    def transition(self, state, value):
        if value is None:
            return state
        count, mean, m2 = state
        count += 1
        delta = float(value) - mean
        mean += delta / count
        m2 += delta * (float(value) - mean)
        return (count, mean, m2)

    def merge(self, state_a, state_b):
        count_a, mean_a, m2_a = state_a
        count_b, mean_b, m2_b = state_b
        if count_a == 0:
            return state_b
        if count_b == 0:
            return state_a
        count = count_a + count_b
        delta = mean_b - mean_a
        mean = mean_a + delta * count_b / count
        m2 = m2_a + m2_b + delta * delta * count_a * count_b / count
        return (count, mean, m2)

    def terminate(self, state):
        count, _, m2 = state
        if count == 0:
            return None
        return math.sqrt(m2 / count)


class NullAggregate(UserDefinedAggregate):
    """The paper's strawman aggregate: sees every tuple, computes nothing.

    Used as the overhead baseline in Tables 2 and 3.  It still reads its input
    (touching the tuple) so a scan over it costs what a scan costs, but the
    transition does no useful work.
    """

    wants_row = True

    def initialize(self) -> int:
        return 0

    def transition(self, state: int, row: Row) -> int:
        # Touch the row so the engine cannot elide the read, then discard it.
        _ = row.values
        return state + 1

    def merge(self, state_a: int, state_b: int) -> int:
        return state_a + state_b

    def terminate(self, state: int) -> int:
        return state


BUILTIN_AGGREGATES: dict[str, Callable[[], UserDefinedAggregate]] = {
    "count": CountAggregate,
    "sum": SumAggregate,
    "avg": AvgAggregate,
    "min": MinAggregate,
    "max": MaxAggregate,
    "stddev": StddevAggregate,
    "null_agg": NullAggregate,
}


class AggregateRegistry:
    """Name -> aggregate-factory registry, seeded with the built-ins."""

    def __init__(self) -> None:
        self._factories: dict[str, Callable[[], UserDefinedAggregate]] = dict(
            BUILTIN_AGGREGATES
        )

    def register(self, name: str, factory: Callable[[], UserDefinedAggregate]) -> None:
        """Register a UDA under ``name`` (case-insensitive).

        ``factory`` is called once per aggregation to obtain a fresh instance,
        so UDAs may keep per-run mutable configuration on ``self``.
        """
        self._factories[name.lower()] = factory

    def register_instance(self, name: str, instance: UserDefinedAggregate) -> None:
        """Register a single shared instance (the factory returns it as-is)."""
        self._factories[name.lower()] = lambda: instance

    def unregister(self, name: str) -> None:
        self._factories.pop(name.lower(), None)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._factories

    def names(self) -> list[str]:
        return sorted(self._factories)

    def create(self, name: str) -> UserDefinedAggregate:
        try:
            factory = self._factories[name.lower()]
        except KeyError:
            raise UnknownFunctionError(name) from None
        return factory()
