"""Exception hierarchy for the in-memory RDBMS substrate.

The substrate mimics the error surface of a conventional RDBMS: schema
violations, parse errors, execution errors and catalog lookups each raise a
distinct exception type so callers (and tests) can react precisely.
"""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for all errors raised by :mod:`repro.db`."""


class SchemaError(DatabaseError):
    """A table definition or a row violates the declared schema."""


class ParseError(DatabaseError):
    """The mini-SQL parser could not understand a statement."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class ExecutionError(DatabaseError):
    """A statement parsed correctly but failed during execution."""


class WorkerDiedError(ExecutionError):
    """A process-backend worker died or hung mid-command.

    Distinct from a plain :class:`ExecutionError` (a user-code failure
    forwarded over a healthy pipe): worker death breaks the one-send/one-recv
    pipe invariant, so the pass that was in flight is lost and must be retried
    or degraded.  ``recoverable`` is True when a supervising pool already
    respawned the dead workers (the caller may simply re-run the pass) and
    False when the respawn budget is exhausted and the pool closed itself.
    """

    def __init__(
        self,
        message: str,
        *,
        recoverable: bool = False,
        workers: tuple[int, ...] = (),
    ):
        super().__init__(message)
        self.recoverable = recoverable
        self.workers = tuple(workers)


class EnvSpecError(ExecutionError, ValueError):
    """A malformed environment-variable spec.

    Raised when ``REPRO_FAULT``, ``REPRO_CRASH`` or a ``REPRO_RECOVERY_*``
    variable fails to parse.  Subclasses both :class:`ExecutionError` (so
    existing harness-level handlers keep working) and :class:`ValueError`
    (the natural type for "this string is not a valid value"), and always
    names the offending variable/field so a typo'd CI spec fails loudly at
    engine construction instead of silently injecting nothing.
    """


class CatalogError(DatabaseError):
    """Base class for catalog lookup failures."""


class UnknownTableError(CatalogError):
    """The referenced table does not exist."""

    def __init__(self, name: str):
        super().__init__(f"unknown table: {name!r}")
        self.table_name = name


class DuplicateTableError(CatalogError):
    """A table with the same name already exists."""

    def __init__(self, name: str):
        super().__init__(f"table already exists: {name!r}")
        self.table_name = name


class UnknownColumnError(CatalogError):
    """The referenced column does not exist in the table."""

    def __init__(self, name: str, table: str | None = None):
        where = f" in table {table!r}" if table else ""
        super().__init__(f"unknown column: {name!r}{where}")
        self.column_name = name
        self.table_name = table


class UnknownFunctionError(CatalogError):
    """The referenced function or aggregate is not registered."""

    def __init__(self, name: str):
        super().__init__(f"unknown function or aggregate: {name!r}")
        self.function_name = name


class TypeMismatchError(SchemaError):
    """A value does not match the declared column type."""


class SharedMemoryError(DatabaseError):
    """Misuse of the simulated shared-memory facility."""
