"""A tiny expression AST and evaluator for predicates and projections.

The executor evaluates these nodes against :class:`repro.db.types.Row`
instances.  Only the operators needed by the Bismarck workloads (comparisons,
boolean connectives, arithmetic, literals, column references and scalar
function calls) are implemented.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from .errors import ExecutionError
from .types import Row


class Expression:
    """Base class for expression AST nodes."""

    def evaluate(self, row: Row | None, functions: dict[str, Callable] | None = None) -> Any:
        raise NotImplementedError

    def referenced_columns(self) -> set[str]:
        """Column names referenced anywhere in this expression."""
        return set()

    def referenced_functions(self) -> set[str]:
        """Lower-cased UDF names referenced anywhere in this expression.

        Lets caches that memoise predicate evaluations key on the *current*
        function bindings, so re-registering a UDF invalidates them.
        """
        return set()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Row | None, functions: dict[str, Callable] | None = None) -> Any:
        return self.value


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column of the current row."""

    name: str

    def evaluate(self, row: Row | None, functions: dict[str, Callable] | None = None) -> Any:
        if row is None:
            raise ExecutionError(f"column reference {self.name!r} outside of a row context")
        return row[self.name]

    def referenced_columns(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class Star(Expression):
    """``*`` — the whole row, as a dict."""

    def evaluate(self, row: Row | None, functions: dict[str, Callable] | None = None) -> Any:
        if row is None:
            raise ExecutionError("'*' used outside of a row context")
        return row.as_dict()

    def referenced_columns(self) -> set[str]:
        return set()


_BINARY_OPERATORS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
}


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operator applied to two sub-expressions."""

    op: str
    left: Expression
    right: Expression

    def evaluate(self, row: Row | None, functions: dict[str, Callable] | None = None) -> Any:
        try:
            func = _BINARY_OPERATORS[self.op.lower()]
        except KeyError:
            raise ExecutionError(f"unsupported binary operator {self.op!r}") from None
        left = self.left.evaluate(row, functions)
        right = self.right.evaluate(row, functions)
        try:
            return func(left, right)
        except TypeError as exc:
            raise ExecutionError(
                f"cannot apply {self.op!r} to {left!r} and {right!r}: {exc}"
            ) from exc
        except ZeroDivisionError:
            raise ExecutionError("division by zero") from None


@dataclass(frozen=True)
class UnaryOp(Expression):
    """A unary operator (``-`` or ``NOT``)."""

    op: str
    operand: Expression

    def evaluate(self, row: Row | None, functions: dict[str, Callable] | None = None) -> Any:
        value = self.operand.evaluate(row, functions)
        op = self.op.lower()
        if op == "-":
            return -value
        if op == "not":
            return not bool(value)
        raise ExecutionError(f"unsupported unary operator {self.op!r}")

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def referenced_functions(self) -> set[str]:
        return self.operand.referenced_functions()


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar function call, resolved against the registered UDFs."""

    name: str
    args: tuple[Expression, ...]

    def evaluate(self, row: Row | None, functions: dict[str, Callable] | None = None) -> Any:
        functions = functions or {}
        key = self.name.lower()
        if key not in functions:
            from .errors import UnknownFunctionError

            raise UnknownFunctionError(self.name)
        values = [arg.evaluate(row, functions) for arg in self.args]
        return functions[key](*values)

    def referenced_columns(self) -> set[str]:
        referenced: set[str] = set()
        for arg in self.args:
            referenced |= arg.referenced_columns()
        return referenced

    def referenced_functions(self) -> set[str]:
        referenced = {self.name.lower()}
        for arg in self.args:
            referenced |= arg.referenced_functions()
        return referenced


def _collect_binary_columns(expr: BinaryOp) -> set[str]:
    return expr.left.referenced_columns() | expr.right.referenced_columns()


def _collect_binary_functions(expr: BinaryOp) -> set[str]:
    return expr.left.referenced_functions() | expr.right.referenced_functions()


# dataclasses with frozen=True cannot easily override methods declared on the
# base class through the dataclass machinery alone; attach the column and
# function collection for BinaryOp explicitly.
BinaryOp.referenced_columns = _collect_binary_columns  # type: ignore[method-assign]
BinaryOp.referenced_functions = _collect_binary_functions  # type: ignore[method-assign]


def evaluate_all(
    expressions: Sequence[Expression],
    row: Row | None,
    functions: dict[str, Callable] | None = None,
) -> list[Any]:
    """Evaluate a list of expressions against one row."""
    return [expression.evaluate(row, functions) for expression in expressions]
