"""A mini-SQL parser for the subset of SQL the Bismarck workloads use.

Supported statements::

    CREATE TABLE t (id INT, vec FLOAT8[], label FLOAT)
    DROP TABLE t
    INSERT INTO t VALUES (1, ARRAY[1.0, 2.0], -1), (2, ARRAY[0.5], 1)
    SELECT * FROM t WHERE label > 0 ORDER BY id LIMIT 10
    SELECT count(*), avg(label) FROM t
    SELECT * FROM t ORDER BY RANDOM()
    SELECT SVMTrain('myModel', 'LabeledPapers', 'vec', 'label')

The last form — a scalar function call with no ``FROM`` clause — is how the
MADlib-style front end (``repro.frontend``) is invoked, exactly mirroring the
query shown in Section 2.1 of the paper.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Sequence

from .errors import ParseError
from .expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    Star,
    UnaryOp,
)
from .types import ColumnType

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|<=|>=|!=|==|[=<>+\-*/%(),;\[\]])
    """,
    re.VERBOSE,
)

KEYWORDS = {
    "select", "from", "where", "order", "by", "limit", "insert", "into",
    "values", "create", "drop", "table", "and", "or", "not", "asc", "desc",
    "random", "array", "as", "null", "true", "false", "group",
}


@dataclass(frozen=True)
class Token:
    kind: str  # "number" | "string" | "ident" | "keyword" | "op" | "eof"
    value: str
    position: int


def tokenize(sql: str) -> list[Token]:
    """Split a SQL string into tokens; raises ParseError on garbage."""
    tokens: list[Token] = []
    position = 0
    length = len(sql)
    while position < length:
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise ParseError(f"unexpected character {sql[position]!r}", position)
        position = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup or "op"
        value = match.group()
        if kind == "ident" and value.lower() in KEYWORDS:
            kind = "keyword"
            value = value.lower()
        tokens.append(Token(kind, value, match.start()))
    tokens.append(Token("eof", "", length))
    return tokens


# ---------------------------------------------------------------------------
# Statement AST
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    expression: Expression
    alias: str | None = None
    #: Set for aggregate calls, e.g. ``count`` for COUNT(*); None for scalars.
    aggregate_name: str | None = None
    #: Argument expression of the aggregate (Star() for COUNT(*)).
    aggregate_argument: Expression | None = None


@dataclass(frozen=True)
class OrderBy:
    expression: Expression | None  # None means ORDER BY RANDOM()
    descending: bool = False
    random: bool = False


@dataclass(frozen=True)
class SelectStatement:
    items: tuple[SelectItem, ...]
    table: str | None
    where: Expression | None = None
    order_by: OrderBy | None = None
    limit: int | None = None

    @property
    def has_aggregates(self) -> bool:
        return any(item.aggregate_name is not None for item in self.items)


@dataclass(frozen=True)
class CreateTableStatement:
    name: str
    columns: tuple[tuple[str, ColumnType], ...]


@dataclass(frozen=True)
class DropTableStatement:
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class InsertStatement:
    table: str
    rows: tuple[tuple[Any, ...], ...] = field(default_factory=tuple)


Statement = SelectStatement | CreateTableStatement | DropTableStatement | InsertStatement


# ---------------------------------------------------------------------------
# Recursive-descent parser
# ---------------------------------------------------------------------------
class _Parser:
    def __init__(self, sql: str, known_aggregates: set[str] | None = None):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0
        self.known_aggregates = {name.lower() for name in (known_aggregates or set())}

    # ------------------------------------------------------------- utilities
    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def check(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        if token.kind != kind:
            return False
        if value is not None and token.value.lower() != value.lower():
            return False
        return True

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            actual = self.peek()
            expected = value or kind
            raise ParseError(
                f"expected {expected!r} but found {actual.value!r}", actual.position
            )
        return token

    # ------------------------------------------------------------ statements
    def parse_statement(self) -> Statement:
        if self.check("keyword", "select"):
            statement = self.parse_select()
        elif self.check("keyword", "create"):
            statement = self.parse_create_table()
        elif self.check("keyword", "drop"):
            statement = self.parse_drop_table()
        elif self.check("keyword", "insert"):
            statement = self.parse_insert()
        else:
            token = self.peek()
            raise ParseError(f"unexpected start of statement: {token.value!r}", token.position)
        self.accept("op", ";")
        if not self.check("eof"):
            token = self.peek()
            raise ParseError(f"trailing input after statement: {token.value!r}", token.position)
        return statement

    def parse_create_table(self) -> CreateTableStatement:
        self.expect("keyword", "create")
        self.expect("keyword", "table")
        name = self.expect("ident").value
        self.expect("op", "(")
        columns: list[tuple[str, ColumnType]] = []
        while True:
            column_name = self.expect("ident").value
            type_tokens = [self.expect("ident").value]
            # Allow array suffix, e.g. FLOAT8[]
            if self.accept("op", "["):
                self.expect("op", "]")
                type_tokens.append("[]")
            type_name = "".join(type_tokens)
            columns.append((column_name, ColumnType.from_string(type_name)))
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        return CreateTableStatement(name=name, columns=tuple(columns))

    def parse_drop_table(self) -> DropTableStatement:
        self.expect("keyword", "drop")
        self.expect("keyword", "table")
        if_exists = False
        if self.check("ident", "if"):
            self.advance()
            exists_token = self.expect("ident")
            if exists_token.value.lower() != "exists":
                raise ParseError("expected EXISTS after IF", exists_token.position)
            if_exists = True
        name = self.expect("ident").value
        return DropTableStatement(name=name, if_exists=if_exists)

    def parse_insert(self) -> InsertStatement:
        self.expect("keyword", "insert")
        self.expect("keyword", "into")
        table = self.expect("ident").value
        self.expect("keyword", "values")
        rows: list[tuple[Any, ...]] = []
        while True:
            self.expect("op", "(")
            values: list[Any] = []
            while True:
                values.append(self.parse_literal_value())
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
            rows.append(tuple(values))
            if not self.accept("op", ","):
                break
        return InsertStatement(table=table, rows=tuple(rows))

    def parse_literal_value(self) -> Any:
        """Parse a literal usable in VALUES: numbers, strings, booleans, arrays."""
        if self.accept("keyword", "null"):
            return None
        if self.accept("keyword", "true"):
            return True
        if self.accept("keyword", "false"):
            return False
        if self.check("keyword", "array"):
            self.advance()
            self.expect("op", "[")
            items: list[float] = []
            if not self.check("op", "]"):
                while True:
                    items.append(float(self._parse_signed_number()))
                    if not self.accept("op", ","):
                        break
            self.expect("op", "]")
            return items
        if self.check("string"):
            return self._string_value(self.advance().value)
        return self._parse_signed_number()

    def _parse_signed_number(self) -> float | int:
        negative = False
        if self.accept("op", "-"):
            negative = True
        elif self.accept("op", "+"):
            pass
        token = self.expect("number")
        value = _number_value(token.value)
        return -value if negative else value

    @staticmethod
    def _string_value(raw: str) -> str:
        return raw[1:-1].replace("''", "'")

    # ---------------------------------------------------------------- select
    def parse_select(self) -> SelectStatement:
        self.expect("keyword", "select")
        items = [self.parse_select_item()]
        while self.accept("op", ","):
            items.append(self.parse_select_item())

        table: str | None = None
        where: Expression | None = None
        order_by: OrderBy | None = None
        limit: int | None = None

        if self.accept("keyword", "from"):
            table = self.expect("ident").value
        if self.accept("keyword", "where"):
            where = self.parse_expression()
        if self.accept("keyword", "order"):
            self.expect("keyword", "by")
            if self.check("keyword", "random"):
                self.advance()
                self.expect("op", "(")
                self.expect("op", ")")
                order_by = OrderBy(expression=None, random=True)
            else:
                expression = self.parse_expression()
                descending = False
                if self.accept("keyword", "desc"):
                    descending = True
                else:
                    self.accept("keyword", "asc")
                order_by = OrderBy(expression=expression, descending=descending)
        if self.accept("keyword", "limit"):
            limit_token = self.expect("number")
            limit = int(_number_value(limit_token.value))

        return SelectStatement(
            items=tuple(items), table=table, where=where, order_by=order_by, limit=limit
        )

    def parse_select_item(self) -> SelectItem:
        if self.check("op", "*"):
            self.advance()
            return SelectItem(expression=Star())
        expression = self.parse_expression()
        alias = None
        if self.accept("keyword", "as"):
            alias = self.expect("ident").value
        elif self.check("ident") and not self.check("keyword"):
            # Bare alias (SELECT expr name) — only if next token is an identifier.
            alias = self.advance().value
        aggregate_name = None
        aggregate_argument = None
        if isinstance(expression, FunctionCall) and self._is_aggregate(expression.name):
            aggregate_name = expression.name.lower()
            aggregate_argument = expression.args[0] if expression.args else Star()
        return SelectItem(
            expression=expression,
            alias=alias,
            aggregate_name=aggregate_name,
            aggregate_argument=aggregate_argument,
        )

    def _is_aggregate(self, name: str) -> bool:
        return name.lower() in self.known_aggregates

    # ----------------------------------------------------------- expressions
    def parse_expression(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        left = self.parse_and()
        while self.accept("keyword", "or"):
            right = self.parse_and()
            left = BinaryOp("or", left, right)
        return left

    def parse_and(self) -> Expression:
        left = self.parse_not()
        while self.accept("keyword", "and"):
            right = self.parse_not()
            left = BinaryOp("and", left, right)
        return left

    def parse_not(self) -> Expression:
        if self.accept("keyword", "not"):
            return UnaryOp("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expression:
        left = self.parse_additive()
        while self.check("op") and self.peek().value in ("=", "==", "!=", "<>", "<", "<=", ">", ">="):
            op = self.advance().value
            right = self.parse_additive()
            left = BinaryOp(op, left, right)
        return left

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while self.check("op") and self.peek().value in ("+", "-"):
            op = self.advance().value
            right = self.parse_multiplicative()
            left = BinaryOp(op, left, right)
        return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_unary()
        while self.check("op") and self.peek().value in ("*", "/", "%"):
            op = self.advance().value
            right = self.parse_unary()
            left = BinaryOp(op, left, right)
        return left

    def parse_unary(self) -> Expression:
        if self.check("op") and self.peek().value == "-":
            self.advance()
            return UnaryOp("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        if self.accept("op", "("):
            expression = self.parse_expression()
            self.expect("op", ")")
            return expression
        if self.check("number"):
            return Literal(_number_value(self.advance().value))
        if self.check("string"):
            return Literal(self._string_value(self.advance().value))
        if self.accept("keyword", "null"):
            return Literal(None)
        if self.accept("keyword", "true"):
            return Literal(True)
        if self.accept("keyword", "false"):
            return Literal(False)
        if self.check("op", "*"):
            self.advance()
            return Star()
        if self.check("ident") or self.check("keyword", "random"):
            name = self.advance().value
            if self.accept("op", "("):
                args: list[Expression] = []
                if not self.check("op", ")"):
                    if self.check("op", "*"):
                        self.advance()
                        args.append(Star())
                    else:
                        args.append(self.parse_expression())
                        while self.accept("op", ","):
                            args.append(self.parse_expression())
                self.expect("op", ")")
                return FunctionCall(name, tuple(args))
            return ColumnRef(name)
        token = self.peek()
        raise ParseError(f"unexpected token {token.value!r} in expression", token.position)


def _number_value(text: str) -> int | float:
    if re.fullmatch(r"\d+", text):
        return int(text)
    return float(text)


def parse(sql: str, known_aggregates: Sequence[str] | None = None) -> Statement:
    """Parse a single SQL statement into its AST.

    ``known_aggregates`` lets the engine tell the parser which function names
    denote aggregates (so ``count(*)`` is recognised as an aggregation while
    ``SVMTrain(...)`` remains a scalar UDF call).
    """
    return _Parser(sql, set(known_aggregates or [])).parse_statement()
