"""Per-database write-ahead log with torn-write-safe framing.

Every ledger-classified mutation an engine applies (``insert``,
``insert_many``, rewrites such as ``shuffle``/``cluster_by``/``truncate``,
plus DDL: table create/drop) is appended to the database's WAL *after* it is
applied in memory and *before* control returns to the caller, so a process
that dies at any instant can be reopened and replayed to the exact mutation
boundary it last completed.

Physical layout — the database directory holds numbered **segments**::

    wal-000000.log          9-byte header, then records
    wal-000001.log          the active segment (highest index)

Each checkpoint records the ``(segment, offset)`` the log had reached; after
a successful checkpoint the log **rotates** to a fresh segment and segments
older than the checkpointed one are pruned.  Recovery therefore replays: the
checkpointed segment from the stored offset, then every later segment in
full.  Rotation (rather than in-place truncation) is what makes the replay
boundary unambiguous when the process dies *between* checkpoint rename and
log reset.

Record framing is torn-write-safe: a fixed ``<II`` header (payload length,
CRC-32 of the payload) precedes each pickled payload.  A crash mid-append
leaves a tail whose length or checksum cannot validate; :func:`scan_segment`
stops at the first such record and reports the number of clean bytes, and
:func:`repair_wal_directory` truncates the torn tail before the log is
reopened for append.  Only the *last* segment can ever be torn — earlier
segments were rotated away whole.

Fsync policy is per-database (``Database(durability=...)``):

* ``"off"`` — no WAL at all; durability is checkpoint-granular.
* ``"buffered"`` (default) — every append is flushed to the OS page cache
  (``file.flush()``), so the record survives the *process* dying (SIGKILL,
  the crash-injection harness) but not the machine.
* ``"fsync"`` — every append is also ``os.fsync``'d: machine-crash durable,
  one disk round-trip per mutation.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from .errors import EnvSpecError, ExecutionError

#: Record framing: payload length + CRC-32 of the payload.
RECORD_HEADER = struct.Struct("<II")

#: Segment file header: magic + format version + segment index.
SEGMENT_MAGIC = b"BWAL1"
SEGMENT_HEADER = struct.Struct("<I")
SEGMENT_HEADER_SIZE = len(SEGMENT_MAGIC) + SEGMENT_HEADER.size

DURABILITY_MODES = ("off", "buffered", "fsync")


@dataclass(frozen=True)
class DurabilityPolicy:
    """How hard the engine tries to keep mutations after a crash."""

    mode: str = "buffered"

    def __post_init__(self) -> None:
        if self.mode not in DURABILITY_MODES:
            raise EnvSpecError(
                f"unknown durability mode {self.mode!r}; expected one of {DURABILITY_MODES}"
            )

    @property
    def wal_enabled(self) -> bool:
        return self.mode != "off"

    @property
    def fsync(self) -> bool:
        return self.mode == "fsync"

    @classmethod
    def resolve(cls, value: "DurabilityPolicy | str | None") -> "DurabilityPolicy":
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        return cls(mode=str(value).lower())


def _segment_path(directory: Path, index: int) -> Path:
    return directory / f"wal-{index:06d}.log"


def segment_files(directory: Path) -> list[tuple[int, Path]]:
    """``(index, path)`` of every WAL segment in the directory, ordered."""
    found = []
    for path in directory.glob("wal-*.log"):
        try:
            index = int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            continue
        found.append((index, path))
    return sorted(found)


def scan_segment(path: Path) -> tuple[list[tuple[int, Any]], int, int]:
    """Validate one segment; returns ``(records, clean_length, torn_bytes)``.

    ``records`` is ``[(offset, payload), ...]`` for every record whose frame
    validates, in order.  ``clean_length`` is the byte length of the valid
    prefix (header + whole records); everything past it — a short header, a
    short payload, or a CRC mismatch — is torn tail, reported as
    ``torn_bytes``.  A segment whose file header is itself unreadable is
    treated as entirely torn (``clean_length`` 0).
    """
    data = path.read_bytes()
    if len(data) < SEGMENT_HEADER_SIZE or not data.startswith(SEGMENT_MAGIC):
        return [], 0, len(data)
    records: list[tuple[int, Any]] = []
    offset = SEGMENT_HEADER_SIZE
    while offset < len(data):
        if offset + RECORD_HEADER.size > len(data):
            break
        length, checksum = RECORD_HEADER.unpack_from(data, offset)
        start = offset + RECORD_HEADER.size
        end = start + length
        if end > len(data):
            break
        payload_bytes = data[start:end]
        if zlib.crc32(payload_bytes) != checksum:
            break
        records.append((offset, pickle.loads(payload_bytes)))
        offset = end
    return records, offset, len(data) - offset


def repair_wal_directory(directory: Path) -> int:
    """Truncate the torn tail of the last (active) segment.

    A crash can only tear the segment that was being appended to; earlier
    segments were rotated away whole.  Returns the number of torn bytes
    discarded (0 when the log is clean or absent).
    """
    segments = segment_files(directory)
    if not segments:
        return 0
    index, path = segments[-1]
    _, clean_length, torn = scan_segment(path)
    if torn:
        with open(path, "r+b") as handle:
            handle.truncate(clean_length)
        if clean_length == 0:
            # Even the segment header was torn (crash mid-rotate): rewrite it
            # so the segment is a valid empty log again.
            with open(path, "wb") as handle:
                handle.write(SEGMENT_MAGIC + SEGMENT_HEADER.pack(index))
                handle.flush()
                os.fsync(handle.fileno())
    return torn


def iter_wal_records(
    directory: Path, after: "tuple[int, int] | None" = None
) -> Iterator[Any]:
    """Yield record payloads past a checkpoint position, in log order.

    ``after`` is the ``(segment, offset)`` a checkpoint recorded — records at
    or past that offset in that segment, plus every later segment in full,
    are yielded.  ``None`` replays the whole log (no checkpoint ever
    happened).  Call :func:`repair_wal_directory` first; this iterator stops
    at (rather than repairs) torn tails.
    """
    start_segment, start_offset = after if after is not None else (-1, 0)
    for index, path in segment_files(directory):
        if index < start_segment:
            continue
        records, _, _ = scan_segment(path)
        for offset, payload in records:
            if index == start_segment and offset < start_offset:
                continue
            yield payload


class WriteAheadLog:
    """Append handle on a database directory's WAL.

    Opens (creating if needed) the highest-numbered segment for append; the
    caller must have repaired torn tails first (the engine's recovery path
    does).  ``append`` is atomic at record granularity with respect to
    recovery: a record either replays whole or is discarded as torn tail.
    """

    def __init__(
        self,
        directory: Path,
        policy: DurabilityPolicy | None = None,
        *,
        crash: "object | None" = None,
    ):
        self.directory = Path(directory)
        self.policy = policy or DurabilityPolicy()
        self._crash = crash
        self._file = None
        self.closed = False
        segments = segment_files(self.directory)
        if segments:
            self._segment = segments[-1][0]
            self._file = open(segments[-1][1], "ab")
            self._offset = self._file.tell()
        else:
            self._segment = 0
            self._start_segment(0)

    def _start_segment(self, index: int) -> None:
        self._segment = index
        self._file = open(_segment_path(self.directory, index), "ab")
        self._file.write(SEGMENT_MAGIC + SEGMENT_HEADER.pack(index))
        self._file.flush()
        os.fsync(self._file.fileno())
        self._offset = SEGMENT_HEADER_SIZE

    def position(self) -> tuple[int, int]:
        """Current end of log as ``(segment, offset)`` — the replay boundary
        a checkpoint taken *now* should record."""
        return (self._segment, self._offset)

    def append(self, record: Any) -> tuple[int, int]:
        """Frame, write and flush one record; returns its ``(segment, offset)``."""
        if self.closed:
            raise ExecutionError("write-ahead log is closed")
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        header = RECORD_HEADER.pack(len(payload), zlib.crc32(payload))
        if self._crash is not None and self._crash.should_fire("wal_append"):
            # A real torn write: half the frame reaches the OS, then the
            # process dies.  Recovery must discard exactly this tail.
            self._file.write(header + payload[: len(payload) // 2 + 1])
            self._file.flush()
            os.fsync(self._file.fileno())
            self._crash.fire()
        position = (self._segment, self._offset)
        self._file.write(header)
        self._file.write(payload)
        self._file.flush()
        if self.policy.fsync:
            os.fsync(self._file.fileno())
        self._offset += RECORD_HEADER.size + len(payload)
        return position

    def rotate(self) -> int:
        """Switch appends to a fresh segment (called after a checkpoint)."""
        if self.closed:
            raise ExecutionError("write-ahead log is closed")
        self._file.flush()
        self._file.close()
        self._start_segment(self._segment + 1)
        return self._segment

    def prune(self, keep_from: int) -> int:
        """Delete segments with index < ``keep_from``; returns how many."""
        removed = 0
        for index, path in segment_files(self.directory):
            if index < keep_from:
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def flush(self) -> None:
        if not self.closed:
            self._file.flush()
            if self.policy.fsync:
                os.fsync(self._file.fileno())

    def close(self) -> None:
        """Flush and close the active segment.  Idempotent."""
        if self.closed:
            return
        self.flush()
        self._file.close()
        self.closed = True
