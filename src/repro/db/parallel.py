"""Segmented (shared-nothing) parallel engine, modelled on the paper's "DBMS B".

A :class:`SegmentedDatabase` wraps a catalog of tables that are round-robin
partitioned across ``num_segments`` segments.  Aggregates that provide a
``merge`` function are executed independently on every segment and the partial
states are merged before ``terminate`` — exactly the "pure UDA" parallelism of
Section 3.3.  The per-segment work is performed sequentially in this process
(the reproduction is single-process Python), but the engine records the
per-segment tuple counts and charges the personality's model-passing cost per
segment so the experiment harness can report both measured per-epoch times and
modelled parallel speed-ups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from .aggregates import UserDefinedAggregate
from .chunk_plan import ChunkPlan
from .engine import DBMS_B, Database, EnginePersonality
from .errors import ExecutionError, UnknownTableError
from .expressions import Expression
from .table import Table
from .types import ColumnType, Schema


@dataclass
class ParallelAggregateResult:
    """Result of a segmented aggregate run, with per-segment accounting."""

    value: Any
    per_segment_tuples: list[int]
    num_segments: int
    #: Number of merge() calls performed to combine the partial states.
    merges: int

    @property
    def total_tuples(self) -> int:
        return sum(self.per_segment_tuples)

    @property
    def max_segment_tuples(self) -> int:
        return max(self.per_segment_tuples) if self.per_segment_tuples else 0


class SegmentedDatabase:
    """A shared-nothing parallel database with round-robin partitioned tables."""

    def __init__(
        self,
        num_segments: int | None = None,
        personality: EnginePersonality | str = DBMS_B,
        *,
        seed: int | None = None,
        recovery: "object | None" = None,
        faults: "Sequence | None" = None,
        path: "object | None" = None,
        durability: "object | None" = None,
        crashes: "Sequence | None" = None,
        payload_transport: "str | None" = None,
    ):
        self.master = Database(
            personality,
            seed=seed,
            recovery=recovery,
            faults=faults,
            path=path,
            durability=durability,
            crashes=crashes,
            payload_transport=payload_transport,
        )
        if num_segments is not None and num_segments <= 0:
            raise ExecutionError("num_segments must be positive")
        segments = num_segments if num_segments is not None else self.master.personality.default_segments
        self.num_segments = segments
        self._segment_tables: dict[str, list[Table]] = {}
        #: Master-table version each segment set currently reflects, so
        #: :meth:`redistribute` can classify the delta since the last sync and
        #: extend segments in place on append-only mutations.
        self._segment_versions: dict[str, int] = {}
        # Durability only lives on the master: segment tables are derived
        # state, reconstructible from the master heap, so crash recovery
        # restores the master catalog and this loop re-partitions it —
        # per-segment table identity (names, round-robin placement) is a pure
        # function of the master, hence preserved across the crash.
        for key, table in self.master.tables.items():
            self._segment_tables[key] = table.partition(self.num_segments)
            self._segment_versions[key] = table.version

    @classmethod
    def open(
        cls,
        path,
        num_segments: int | None = None,
        personality: EnginePersonality | str = DBMS_B,
        **kwargs,
    ) -> "SegmentedDatabase":
        """Open/recover a durable segmented database (see ``Database.open``)."""
        return cls(num_segments, personality, path=path, **kwargs)

    @property
    def recovery_report(self):
        return self.master.recovery_report

    @property
    def crash_injector(self):
        return self.master.crash_injector

    def checkpoint(self, **kwargs):
        """Checkpoint the master catalog (segments are derived state)."""
        return self.master.checkpoint(**kwargs)

    def training_state(self, name: str):
        return self.master.training_state(name)

    def clear_training_state(self, name: str) -> None:
        self.master.clear_training_state(name)

    # -------------------------------------------------------------- catalog
    @property
    def personality(self) -> EnginePersonality:
        return self.master.personality

    def create_table(
        self, name: str, columns: Sequence[tuple[str, ColumnType | str]] | Schema
    ) -> Table:
        table = self.master.create_table(name, columns)
        self._segment_tables[name.lower()] = table.partition(self.num_segments)
        self._segment_versions[name.lower()] = table.version
        return table

    def load_table(self, table: Table, *, replace: bool = False) -> None:
        """Register an already-populated table and distribute it to segments."""
        self.master.register_table(table, replace=replace)
        self._segment_tables[table.name.lower()] = table.partition(self.num_segments)
        self._segment_versions[table.name.lower()] = table.version

    def insert(self, table_name: str, rows) -> int:
        """Insert rows on the master and extend (or rebuild) the segments.

        Appends route through the incremental path in :meth:`redistribute`:
        the existing segment tables are extended in place, so their example
        caches and any resident worker payloads survive the insert.
        """
        count = self.master.insert(table_name, rows)
        self.redistribute(table_name)
        return count

    def table(self, name: str) -> Table:
        return self.master.table(name)

    def segments_of(self, name: str) -> list[Table]:
        try:
            return self._segment_tables[name.lower()]
        except KeyError:
            raise UnknownTableError(name) from None

    def redistribute(self, name: str) -> None:
        """Bring the segment tables back in sync with the master copy.

        Consults the master's version ledger: when every mutation since the
        last sync appended rows at the tail, the new rows are round-robin
        *appended* to the existing segment tables — row ``g`` goes to segment
        ``g % num_segments``, exactly where a full re-partition would put it,
        so incremental extension and rebuild produce identical segments while
        extension keeps the segment ``Table`` objects (and everything keyed on
        them: example-cache entries, resident worker payloads) alive.
        Physical rewrites fall back to a full re-partition.
        """
        table = self.master.table(name)
        key = name.lower()
        segments = self._segment_tables.get(key)
        synced = self._segment_versions.get(key)
        if segments is not None and synced is not None:
            delta = table.classify_delta(synced)
            if delta.is_same:
                return
            if delta.is_append:
                self._extend_segments(segments, table, delta.base_rows)
                self._segment_versions[key] = table.version
                return
        self._segment_tables[key] = table.partition(self.num_segments)
        self._segment_versions[key] = table.version

    def _extend_segments(self, segments: list[Table], table: Table, base_rows: int) -> None:
        """Append the master rows ``[base_rows, len)`` to their home segments."""
        buckets: list[list[tuple]] = [[] for _ in segments]
        for offset, values in enumerate(table.tail_values(base_rows)):
            buckets[(base_rows + offset) % len(segments)].append(values)
        for segment, rows in zip(segments, buckets):
            if rows:
                segment.insert_many(rows)

    # ------------------------------------------------------------ registration
    def register_aggregate(self, name: str, factory: Callable[[], UserDefinedAggregate]) -> None:
        self.master.register_aggregate(name, factory)

    def register_function(self, name: str, func: Callable) -> None:
        self.master.register_function(name, func)

    # ------------------------------------------------------------- execution
    def execute(self, sql: str):
        """Execute SQL against the master copy (non-aggregate paths)."""
        return self.master.execute(sql)

    def run_parallel_aggregate(
        self,
        table_name: str,
        aggregate_factory: Callable[[], UserDefinedAggregate],
        argument: Expression | str | None = None,
        *,
        where: Expression | None = None,
        segment_row_orders: Sequence[Sequence[int]] | None = None,
        execution: str = "auto",
        backend: str = "in_process",
    ) -> ParallelAggregateResult:
        """Run a UDA independently on every segment and merge the results.

        ``segment_row_orders`` optionally gives an explicit visit order per
        segment (used by the logical ordering policies).  The aggregate must
        support ``merge``; otherwise the call degrades to a single-segment run
        on the master copy, mirroring how an RDBMS falls back to serial
        aggregation for non-algebraic aggregates.  The fallback honours
        ``segment_row_orders`` only when there is exactly one segment (whose
        layout matches the master row for row); with several segments the
        per-segment orders cannot be replayed serially and the call raises
        rather than silently training in stored heap order.

        ``execution`` selects the per-segment code path, with the same
        contract as :meth:`Executor.run_aggregate`: ``"auto"`` (the default)
        serves each segment from its own cached columnar chunks whenever the
        aggregate and task support it, falling back to per-tuple; ``"per_tuple"``
        forces the paper's tuple-at-a-time protocol; ``"chunked"`` raises if
        any segment cannot chunk.  Unlike the serial
        :meth:`Executor.run_aggregate` — whose ``"per_tuple"`` default is kept
        as the paper's reference protocol — this entry point defaults to the
        chunk plane; callers measuring per-tuple engine overhead (Tables 2-3)
        must pass ``execution="per_tuple"`` explicitly.

        ``backend`` selects who runs the per-segment work: ``"in_process"``
        (the default) performs the segment passes sequentially in this
        process; ``"process"`` runs each segment in its own OS worker from
        the master engine's persistent pool.  The partitioning, per-example
        float operations and left-to-right merge are identical, so for a
        fixed seed and segment count the two backends produce **bit-for-bit
        the same model** — the pure-UDA determinism contract.
        """
        if execution not in ("per_tuple", "chunked", "auto"):
            raise ExecutionError(f"unknown execution mode {execution!r}")
        if backend not in ("in_process", "process"):
            raise ExecutionError(f"unknown execution backend {backend!r}")
        segments = self.segments_of(table_name)
        probe = aggregate_factory()
        if backend == "process" and probe.supports_merge and self.num_segments > 1:
            if execution == "per_tuple":
                raise ExecutionError(
                    "the process backend ships cache-decoded examples and "
                    "cannot replay the per-tuple engine protocol; use the "
                    "in-process backend for per-tuple runs"
                )
            return self._run_parallel_aggregate_process(
                segments, aggregate_factory, where, segment_row_orders
            )
        if not probe.supports_merge or self.num_segments == 1:
            # The single-segment layout matches the master copy row for row,
            # so its visit order applies directly; multi-segment orders are
            # segment-local and cannot be replayed on the master fallback, so
            # refusing beats silently training in stored heap order.
            order = None
            if segment_row_orders is not None:
                if self.num_segments > 1:
                    raise ExecutionError(
                        f"aggregate {type(probe).__name__} does not support merge; "
                        "the serial fallback cannot honour per-segment row orders"
                    )
                order = segment_row_orders[0]
            value = self.master.executor.run_aggregate(
                self.master.table(table_name), probe, argument,
                where=where, row_order=order, execution=execution,
            )
            return ParallelAggregateResult(
                value=value,
                per_segment_tuples=[len(self.master.table(table_name))],
                num_segments=1,
                merges=0,
            )

        partial_states: list[Any] = []
        instances: list[UserDefinedAggregate] = []
        per_segment_tuples: list[int] = []
        for index, segment in enumerate(segments):
            instance = aggregate_factory()
            order = None
            if segment_row_orders is not None:
                order = segment_row_orders[index]
            state = self._run_segment(instance, segment, argument, where, order, execution)
            instances.append(instance)
            partial_states.append(state)
            per_segment_tuples.append(len(segment))

        merged = partial_states[0]
        merges = 0
        for state in partial_states[1:]:
            merged = instances[0].merge(merged, state)
            merges += 1
        value = instances[0].terminate(merged)
        return ParallelAggregateResult(
            value=value,
            per_segment_tuples=per_segment_tuples,
            num_segments=len(segments),
            merges=merges,
        )

    def _run_parallel_aggregate_process(
        self,
        segments: list[Table],
        aggregate_factory: Callable[[], UserDefinedAggregate],
        where: Expression | None,
        segment_row_orders: Sequence[Sequence[int]] | None,
    ) -> ParallelAggregateResult:
        """Segment passes on real OS workers: one worker per segment.

        Each worker receives its segment's cache-decoded examples (pickled
        once per table version) and runs the plain ``initialize``/
        ``transition`` protocol over them; the parent merges the partial
        states left-to-right exactly like the in-process path, so the result
        is bit-for-bit identical for a fixed seed and segment count.
        """
        from .chunk_plan import resolve_ordinals
        from .process_backend import run_partitioned_uda

        executor = self.master.executor
        pool = self.master.process_pool(len(segments))
        instances: list[UserDefinedAggregate] = []
        parts = []
        per_segment_tuples: list[int] = []
        for index, segment in enumerate(segments):
            instance = aggregate_factory()
            order = segment_row_orders[index] if segment_row_orders is not None else None
            ordinals = resolve_ordinals(
                segment, executor.example_cache, executor.functions, where, order
            )
            segment.scan_count += 1
            executor._charge_overhead(instance.state_passing_units)
            instances.append(instance)
            parts.append((segment, instance, ordinals))
            per_segment_tuples.append(len(segment))
        partial_states = run_partitioned_uda(pool, parts, executor.example_cache)

        merged = partial_states[0]
        merges = 0
        for state in partial_states[1:]:
            merged = instances[0].merge(merged, state)
            merges += 1
        value = instances[0].terminate(merged)
        return ParallelAggregateResult(
            value=value,
            per_segment_tuples=per_segment_tuples,
            num_segments=len(segments),
            merges=merges,
        )

    def _run_segment(
        self,
        instance: UserDefinedAggregate,
        segment: Table,
        argument: Expression | str | None,
        where: Expression | None,
        row_order: Sequence[int] | None,
        execution: str = "auto",
    ) -> Any:
        """Run initialize+transition over one segment, returning the raw state.

        On the chunked path the segment keeps its own example cache entries —
        keyed by the segment table's (name, version, task) exactly like the
        master table's — in the master executor's shared :class:`ExampleCache`,
        so partitioned epochs decode each segment once per redistribution
        instead of once per tuple per epoch.
        """
        executor = self.master.executor
        if execution != "per_tuple":
            if instance.supports_chunks:
                plan = executor.chunk_plan(
                    segment, instance, where=where, row_order=row_order
                )
                if plan is not None:
                    return executor.consume_chunk_plan(segment, instance, plan)
            if execution == "chunked":
                raise ExecutionError(
                    f"aggregate {type(instance).__name__} cannot run chunked over "
                    f"segment {segment.name!r} (unsupported aggregate, task or column types)"
                )
        argument_expression: Expression | None
        if isinstance(argument, str):
            from .expressions import ColumnRef

            argument_expression = ColumnRef(argument)
        else:
            argument_expression = argument

        state = instance.initialize()
        if row_order is None:
            rows = segment.scan()
        else:
            # Ordered per-tuple passes count one logical scan, like scan().
            segment.scan_count += 1
            rows = (segment.row_at(i) for i in row_order)
        for row in rows:
            if where is not None and not bool(where.evaluate(row, executor.functions)):
                continue
            executor._charge_overhead(instance.state_passing_units)
            if instance.wants_row or argument_expression is None:
                value: Any = row
            else:
                value = argument_expression.evaluate(row, executor.functions)
            state = instance.transition(state, value)
        return state

    # ------------------------------------------------------------------ misc
    def close_process_pools(self) -> None:
        """Reap the master engine's process-backend worker pools."""
        self.master.close_process_pools()

    def close(self) -> None:
        """Release the master engine's OS resources (pools, arena).  Idempotent."""
        self.master.close()

    def __enter__(self) -> "SegmentedDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def shuffle_table(self, name: str, *, seed: int | None = None) -> None:
        """Shuffle the master copy and redistribute segments."""
        rng = np.random.default_rng(seed)
        self.master.table(name).shuffle(rng)
        self.redistribute(name)

    def __repr__(self) -> str:
        return (
            f"SegmentedDatabase(personality={self.personality.name!r}, "
            f"segments={self.num_segments}, tables={self.master.table_names()})"
        )
