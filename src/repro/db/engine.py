"""The single-node database engine facade.

:class:`Database` ties together the catalog (tables), the UDA registry, scalar
user-defined functions, the simulated shared-memory arena and the executor.
It also carries an :class:`EnginePersonality` that models the per-tuple and
model-passing cost differences between the three engines the paper evaluates
(PostgreSQL, "DBMS A", "DBMS B"): the absolute numbers in Tables 2–3 depend on
the engine, and the personalities let the overhead experiments reproduce the
relative pattern (DBMS A has expensive function-call / model-passing overhead;
DBMS B is a parallel engine with cheap per-tuple cost per segment).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from .aggregates import AggregateRegistry, UserDefinedAggregate
from .checkpoint import CheckpointManager, TrainingState, recover_database
from .errors import DuplicateTableError, ExecutionError, UnknownTableError
from .executor import Executor, QueryResult
from .expressions import Expression
from .fault import CrashInjector, crashes_from_env, faults_from_env
from .parser import (
    CreateTableStatement,
    DropTableStatement,
    InsertStatement,
    SelectStatement,
    parse,
)
from .shared_memory import SharedMemoryArena
from .table import LedgerEntry, Table
from .types import Column, ColumnType, Schema
from .wal import DurabilityPolicy, WriteAheadLog


@dataclass(frozen=True)
class EnginePersonality:
    """Relative cost model of an RDBMS engine.

    ``per_tuple_overhead`` is the abstract cost charged by the executor for
    every tuple fed to an aggregate (scan + tuple formation + UDA call
    overhead).  ``model_passing_cost`` is the extra cost charged each time a
    UDA state (the model) is serialised across a function-call boundary, which
    is what makes the pure-UDA implementation on DBMS A slow in the paper.
    ``default_segments`` is the parallelism the engine runs with out of the box.
    """

    name: str
    per_tuple_overhead: float = 1.0
    model_passing_cost: float = 0.0
    default_segments: int = 1


POSTGRES = EnginePersonality(name="postgres", per_tuple_overhead=1.0, model_passing_cost=0.2)
DBMS_A = EnginePersonality(name="dbms_a", per_tuple_overhead=4.0, model_passing_cost=6.0)
DBMS_B = EnginePersonality(
    name="dbms_b", per_tuple_overhead=2.0, model_passing_cost=1.0, default_segments=8
)

PERSONALITIES: dict[str, EnginePersonality] = {
    "postgres": POSTGRES,
    "postgresql": POSTGRES,
    "dbms_a": DBMS_A,
    "dbms_b": DBMS_B,
}


class Database:
    """A single-node in-memory database instance."""

    def __init__(
        self,
        personality: EnginePersonality | str = POSTGRES,
        *,
        seed: int | None = None,
        recovery: "object | None" = None,
        faults: "Sequence | None" = None,
        cache_entries: int | None = None,
        path: "str | Path | None" = None,
        durability: "DurabilityPolicy | str | None" = None,
        crashes: "Sequence | None" = None,
        payload_transport: "str | None" = None,
    ):
        if isinstance(personality, str):
            try:
                personality = PERSONALITIES[personality.lower()]
            except KeyError:
                raise ExecutionError(f"unknown engine personality: {personality!r}") from None
        self.personality = personality
        self.tables: dict[str, Table] = {}
        self.aggregates = AggregateRegistry()
        self.functions: dict[str, Callable] = {}
        self.shared_memory = SharedMemoryArena()
        #: Process-backend worker pools, keyed by worker count and reused
        #: across epochs/runs so an epoch costs messages, not process spawns.
        self._process_pools: dict[int, "object"] = {}
        #: Recovery policy for supervised pools (None → RecoveryPolicy.from_env()
        #: at pool creation) and fault plans for the injection harness (None →
        #: read REPRO_FAULT at pool creation).
        self.recovery_policy = recovery
        self.fault_plans = faults
        #: Payload transport for engine-created pools: ``auto`` (pages where
        #: possible), ``pages``, ``pickle``, or None → REPRO_PAYLOAD_TRANSPORT
        #: at pool creation.  Validated eagerly, like the specs below.
        if payload_transport is None:
            from .process_backend import resolve_payload_transport

            resolve_payload_transport()
        else:
            from .process_backend import PAYLOAD_TRANSPORTS

            if payload_transport not in PAYLOAD_TRANSPORTS:
                raise ExecutionError(
                    f"unknown payload transport {payload_transport!r}; "
                    f"expected one of {PAYLOAD_TRANSPORTS}"
                )
        self.payload_transport = payload_transport
        # Fail loudly on malformed env specs *at construction* instead of
        # deep inside the first pool build or training epoch: validate
        # REPRO_RECOVERY_* and REPRO_FAULT eagerly whenever the engine would
        # later read them (EnvSpecError, a ValueError, names the bad field).
        if recovery is None:
            from .supervisor import RecoveryPolicy

            RecoveryPolicy.from_env()
        if faults is None:
            faults_from_env()
        #: Whole-process crash injection (REPRO_CRASH / ``crashes=``): the
        #: driver, the WAL and the checkpoint writer call its crash points.
        self.crash_injector = CrashInjector(
            crashes if crashes is not None else crashes_from_env()
        )
        #: Structured RecoveryEvent / DegradationEvent log, appended to by
        #: supervised pools and the degradation ladder.  The driver snapshots
        #: it around a training run to report what a run absorbed.
        self.recovery_log: list = []
        #: Sticky flag: once the respawn budget is exhausted, process-backed
        #: plans skip straight to their fallback instead of rebuilding (and
        #: re-losing) a pool every epoch.  Cleared by :meth:`reset_degradation`.
        self.process_degraded = False
        self.rng = np.random.default_rng(seed)
        executor_kwargs = {}
        if cache_entries is not None:
            # Bound on retained ExampleCache entries (LRU by last touch) so
            # long streaming runs do not grow decoded-batch memory unbounded.
            executor_kwargs["cache_entries"] = cache_entries
        self.executor = Executor(
            self.aggregates,
            self.functions,
            per_tuple_overhead=personality.per_tuple_overhead,
            model_passing_overhead=personality.model_passing_cost,
            rng=self.rng,
            **executor_kwargs,
        )
        self.executor.on_degradation = self.record_recovery_event

        # ------------------------------------------------------- durability
        #: Saved TrainingState objects by name.  In-memory for every engine;
        #: persisted in each checkpoint when the engine is durable.
        self._training_states: dict[str, TrainingState] = {}
        self.durability = DurabilityPolicy.resolve(durability)
        self.path = Path(path) if path is not None else None
        self.wal: "WriteAheadLog | None" = None
        self.checkpoints: "CheckpointManager | None" = None
        #: :class:`~repro.db.checkpoint.RecoveryReport` of what opening this
        #: directory recovered (None for non-durable engines).
        self.recovery_report = None
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
            self.checkpoints = CheckpointManager(self.path, crash=self.crash_injector)
            # Recovery runs before the WAL reopens for append and before
            # observers attach, so replayed mutations are never re-logged.
            self.recovery_report = recover_database(self, self.path)
            if self.durability.wal_enabled:
                self.wal = WriteAheadLog(
                    self.path, self.durability, crash=self.crash_injector
                )
            for table in self.tables.values():
                table.add_observer(self._on_table_mutation)

    @classmethod
    def open(
        cls,
        path: "str | Path",
        personality: EnginePersonality | str = POSTGRES,
        **kwargs,
    ) -> "Database":
        """Open (creating or recovering) a durable database directory.

        A fresh directory starts empty with a live WAL; an existing one is
        recovered — latest valid checkpoint, WAL replayed past it, training
        states restored — before the instance is returned.  See
        :attr:`recovery_report` for what happened.
        """
        return cls(personality, path=path, **kwargs)

    @property
    def durable(self) -> bool:
        """True when this engine persists to a directory."""
        return self.path is not None

    def _on_table_mutation(self, table: Table, entry: LedgerEntry) -> None:
        """WAL observer: append one mutation record (rows + ledger entry)."""
        if self.wal is None or self.wal.closed:
            return
        if entry.kind == "append":
            rows = table.tail_values(entry.rows_after - entry.rows_added)
        else:
            rows = table.tail_values(0)
        self.wal.append(
            {
                "type": "mutation",
                "table": table.name.lower(),
                "entry": entry,
                "rows": rows,
                "clustered_on": table.clustered_on,
            }
        )

    def _attach_durable(self, table: Table) -> None:
        """Log a table's creation and start observing its mutations."""
        if self.path is None:
            return
        if self.wal is not None and not self.wal.closed:
            self.wal.append({"type": "create", "image": table.to_image()})
        table.add_observer(self._on_table_mutation)

    def _detach_durable(self, table: Table, *, log_drop: bool) -> None:
        if self.path is None:
            return
        table.remove_observer(self._on_table_mutation)
        if log_drop and self.wal is not None and not self.wal.closed:
            self.wal.append({"type": "drop", "name": table.name.lower()})

    def checkpoint(self, *, training: "dict[str, TrainingState] | None" = None):
        """Snapshot the catalog + training states; rotate and prune the WAL.

        ``training`` merges new/updated :class:`TrainingState` objects first.
        On a non-durable engine the states are still retained in memory (so
        same-process resume works) but nothing is written; returns the
        checkpoint path, or None when not durable.
        """
        if training:
            for key, state in training.items():
                self._training_states[key.lower()] = state
        if self.checkpoints is None:
            return None
        position = self.wal.position() if self.wal is not None and not self.wal.closed else None
        payload = {
            "tables": {key: table.to_image() for key, table in self.tables.items()},
            "training": dict(self._training_states),
            "wal_position": position,
        }
        written = self.checkpoints.write(payload)
        if self.wal is not None and not self.wal.closed:
            # Everything up to `position` is now covered by the snapshot;
            # rotate so recovery's replay boundary is a whole-segment edge,
            # and drop segments older than the one the checkpoint points at.
            self.wal.rotate()
            self.wal.prune(position[0])
        return written

    def training_state(self, name: str) -> "TrainingState | None":
        """The saved training state under ``name`` (or None)."""
        return self._training_states.get(name.lower())

    def training_state_names(self) -> list[str]:
        return sorted(self._training_states)

    def clear_training_state(self, name: str) -> None:
        """Forget a saved training state (persisted at the next checkpoint)."""
        self._training_states.pop(name.lower(), None)

    # ----------------------------------------------------------------- DDL/DML
    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, ColumnType | str]] | Schema,
        *,
        if_not_exists: bool = False,
    ) -> Table:
        """Create a table from ``(name, type)`` pairs or an existing Schema."""
        key = name.lower()
        if key in self.tables:
            if if_not_exists:
                return self.tables[key]
            raise DuplicateTableError(name)
        if isinstance(columns, Schema):
            schema = columns
        else:
            schema = Schema.of(
                *(
                    (column_name, ColumnType.from_string(t) if isinstance(t, str) else t)
                    for column_name, t in columns
                )
            )
        table = Table(name, schema)
        self.tables[key] = table
        self._attach_durable(table)
        return table

    def register_table(self, table: Table, *, replace: bool = False) -> None:
        """Register an externally built Table in the catalog."""
        key = table.name.lower()
        previous = self.tables.get(key)
        if previous is not None and not replace:
            raise DuplicateTableError(table.name)
        if previous is not None and previous is not table:
            # The displaced table must stop logging: it is no longer catalog
            # state, and its mutations would corrupt replay ordering.
            self._detach_durable(previous, log_drop=False)
        self.tables[key] = table
        self._attach_durable(table)

    def drop_table(self, name: str, *, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self.tables:
            if if_exists:
                return
            raise UnknownTableError(name)
        table = self.tables.pop(key)
        self._detach_durable(table, log_drop=True)

    def table(self, name: str) -> Table:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def insert(self, table_name: str, rows) -> int:
        """Insert rows (a single row or an iterable of rows) into a table."""
        table = self.table(table_name)
        if isinstance(rows, (tuple, dict)) or (
            isinstance(rows, list) and rows and not isinstance(rows[0], (list, tuple, dict))
        ):
            table.insert(rows)
            return 1
        return table.insert_many(rows)

    # ------------------------------------------------------------ registration
    def register_aggregate(
        self, name: str, factory: Callable[[], UserDefinedAggregate]
    ) -> None:
        """Register a UDA factory under ``name``."""
        self.aggregates.register(name, factory)

    def register_function(self, name: str, func: Callable) -> None:
        """Register a scalar user-defined function (e.g. ``SVMTrain``)."""
        self.functions[name.lower()] = func

    def has_function(self, name: str) -> bool:
        return name.lower() in self.functions

    # ------------------------------------------------------------------ query
    def execute(self, sql: str) -> QueryResult:
        """Parse and execute one SQL statement."""
        statement = parse(sql, known_aggregates=self.aggregates.names())
        if isinstance(statement, CreateTableStatement):
            self.create_table(statement.name, statement.columns)
            return QueryResult(columns=[], rows=[])
        if isinstance(statement, DropTableStatement):
            self.drop_table(statement.name, if_exists=statement.if_exists)
            return QueryResult(columns=[], rows=[])
        if isinstance(statement, InsertStatement):
            count = self.insert(statement.table, list(statement.rows))
            return QueryResult(columns=["inserted"], rows=[(count,)])
        if isinstance(statement, SelectStatement):
            table = self.table(statement.table) if statement.table else None
            return self.executor.execute_select(statement, table)
        raise ExecutionError(f"unsupported statement type: {type(statement).__name__}")

    def query(self, sql: str) -> list[tuple]:
        """Execute and return just the rows."""
        return self.execute(sql).rows

    # ---------------------------------------------------------- programmatic
    def process_pool(self, workers: int):
        """The engine's persistent process-backend pool of the given size.

        Pools are created lazily, cached by worker count and kept alive for
        reuse across epochs and training runs; :meth:`close_process_pools`
        (or interpreter exit) reaps them.  Engine-created pools are
        *supervised*: pipe reads are deadline-bounded per the engine's
        recovery policy, dead/hung workers are respawned with their payloads
        replayed, and recovery incidents land in :attr:`recovery_log`.
        """
        from .supervisor import SupervisedWorkerPool

        pool = self._process_pools.get(workers)
        if pool is None or pool._closed:
            pool = SupervisedWorkerPool(
                workers,
                policy=self.recovery_policy,
                faults=self.fault_plans,
                on_event=self.record_recovery_event,
                transport=self.payload_transport,
            )
            self._process_pools[workers] = pool
        return pool

    def record_recovery_event(self, event) -> None:
        """Append a RecoveryEvent / DegradationEvent to the engine log."""
        self.recovery_log.append(event)

    def recovery_events(self) -> list:
        """Copy of the structured recovery/degradation log."""
        return list(self.recovery_log)

    def mark_process_degraded(self) -> None:
        """Route subsequent process-backed plans straight to their fallback."""
        self.process_degraded = True

    def reset_degradation(self) -> None:
        """Clear the sticky degradation flag (fresh pools may be built again)."""
        self.process_degraded = False

    def close_process_pools(self) -> None:
        """Stop and reap every process-backend worker pool.  Idempotent."""
        for pool in self._process_pools.values():
            pool.close()
        self._process_pools.clear()

    def close(self) -> None:
        """Release every OS resource the engine owns.  Idempotent.

        Reaps the process-backend worker pools, frees all shared-memory
        arena segments, and — for durable engines — flushes and closes the
        write-ahead log.  Double-close is a no-op, including on an engine
        that was itself produced by a recovery :meth:`open`: the WAL handle
        closes exactly once and later closes return without touching it.
        The ``atexit`` sweeps remain as a crash net, but deterministic
        callers (the driver, the experiment harness, tests) should close
        engines — or use ``with Database(...) as db:`` — so no worker
        processes or ``/dev/shm`` blocks outlive the run that made them.
        """
        self.close_process_pools()
        self.shared_memory.free_all()
        if self.wal is not None:
            self.wal.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run_aggregate(
        self,
        table_name: str,
        aggregate: UserDefinedAggregate | str,
        argument: Expression | str | None = None,
        *,
        where: Expression | None = None,
        row_order: Sequence[int] | None = None,
        execution: str = "per_tuple",
        backend: str = "in_process",
        process_workers: int | None = None,
    ) -> Any:
        """Run a UDA over a table directly (bypassing SQL), honouring the
        engine's per-tuple cost model and an optional explicit row order.
        ``execution`` selects per-tuple vs chunked columnar aggregation;
        ``backend="process"`` fans a mergeable aggregate out over the
        engine's persistent worker-process pool (``process_workers`` sizes
        it, defaulting to one worker per core) — see
        :meth:`Executor.run_aggregate`."""
        table = self.table(table_name)
        pool = None
        if backend == "process":
            from .process_backend import default_process_workers

            pool = self.process_pool(process_workers or default_process_workers())
        return self.executor.run_aggregate(
            table, aggregate, argument, where=where, row_order=row_order,
            execution=execution, backend=backend, process_pool=pool,
            process_workers=process_workers,
        )

    # ------------------------------------------------------------------ misc
    def table_names(self) -> list[str]:
        return sorted(table.name for table in self.tables.values())

    def __repr__(self) -> str:
        return (
            f"Database(personality={self.personality.name!r}, "
            f"tables={self.table_names()})"
        )


def connect(personality: str | EnginePersonality = "postgres", *, seed: int | None = None) -> Database:
    """Create a new database instance (mirrors a DB-API ``connect`` call)."""
    return Database(personality, seed=seed)
