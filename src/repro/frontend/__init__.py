"""MADlib-mimicking SQL front end: SVMTrain / LRTrain / ... and predictors."""

from .models import load_model, model_exists, save_model
from .predict import install_prediction_functions
from .train import install_frontend

__all__ = [
    "install_frontend",
    "install_prediction_functions",
    "load_model",
    "model_exists",
    "save_model",
]
