"""Persisted model tables: save and load trained models as relations.

Following Section 2.1 of the paper, a trained model "is then persisted as a
user table" named by the caller (e.g. ``myModel``).  We store every model as a
generic long-format relation ``(component, idx, value)`` where ``idx`` is the
flattened index inside the component array, plus a companion ``<name>_meta``
table describing component shapes so the model can be reconstructed exactly.
"""

from __future__ import annotations

import numpy as np

from ..core.model import Model
from ..db.engine import Database
from ..db.parallel import SegmentedDatabase
from ..db.types import ColumnType

DatabaseLike = "Database | SegmentedDatabase"


def _catalog(database) -> Database:
    return database.master if isinstance(database, SegmentedDatabase) else database


def save_model(database, model_name: str, model: Model) -> None:
    """Persist a model into ``model_name`` (+ ``model_name_meta``)."""
    catalog = _catalog(database)
    for table_name in (model_name, f"{model_name}_meta"):
        if catalog.has_table(table_name):
            catalog.drop_table(table_name)

    values_table = catalog.create_table(
        model_name,
        [("component", ColumnType.TEXT), ("idx", ColumnType.INTEGER), ("value", ColumnType.FLOAT)],
    )
    meta_table = catalog.create_table(
        f"{model_name}_meta",
        [("component", ColumnType.TEXT), ("shape", ColumnType.TEXT)],
    )
    for component_name, array in model.items():
        meta_table.insert((component_name, ",".join(str(s) for s in array.shape)))
        flat = array.ravel()
        values_table.insert_many(
            (component_name, int(index), float(value)) for index, value in enumerate(flat)
        )


def load_model(database, model_name: str) -> Model:
    """Reconstruct a model previously stored by :func:`save_model`."""
    catalog = _catalog(database)
    values_table = catalog.table(model_name)
    meta_table = catalog.table(f"{model_name}_meta")

    shapes: dict[str, tuple[int, ...]] = {}
    for row in meta_table.scan():
        shape = tuple(int(part) for part in row["shape"].split(",") if part != "")
        shapes[row["component"]] = shape or (1,)

    arrays = {name: np.zeros(int(np.prod(shape))) for name, shape in shapes.items()}
    for row in values_table.scan():
        arrays[row["component"]][row["idx"]] = row["value"]
    return Model({name: arrays[name].reshape(shapes[name]) for name in shapes})


def model_exists(database, model_name: str) -> bool:
    catalog = _catalog(database)
    return catalog.has_table(model_name) and catalog.has_table(f"{model_name}_meta")
