"""Persisted model tables: save and load trained models as relations.

Following Section 2.1 of the paper, a trained model "is then persisted as a
user table" named by the caller (e.g. ``myModel``).  We store every model as a
generic long-format relation ``(component, idx, value)`` where ``idx`` is the
flattened index inside the component array, plus a companion ``<name>_meta``
table describing component shapes so the model can be reconstructed exactly.
"""

from __future__ import annotations

import numpy as np

from ..core.model import Model
from ..db.engine import Database
from ..db.parallel import SegmentedDatabase
from ..db.types import ColumnType

DatabaseLike = "Database | SegmentedDatabase"


def _catalog(database) -> Database:
    return database.master if isinstance(database, SegmentedDatabase) else database


#: Meta-table component name recording which table (and at which version) the
#: model was trained over.  ``__``-prefixed names are reserved bookkeeping
#: rows, never model components.
SOURCE_COMPONENT = "__source__"


def save_model(
    database,
    model_name: str,
    model: Model,
    *,
    source_table: str | None = None,
    table_version: int | None = None,
    checkpoint: bool = False,
) -> None:
    """Persist a model into ``model_name`` (+ ``model_name_meta``).

    When ``source_table``/``table_version`` are given, the meta table also
    records the training watermark — which table the model absorbed, at which
    ledger version — so a later retrain can continue incrementally over just
    the rows appended since (see :func:`trained_source`).

    Model tables are ordinary catalog tables, so on a durable engine their
    creation and rows flow through the WAL like any other DDL/DML — a crash
    right after ``save_model`` returns loses nothing.  ``checkpoint=True``
    additionally takes a whole-database checkpoint afterwards, folding the
    fresh model (and any cleared training state) into the next snapshot.
    """
    catalog = _catalog(database)
    for table_name in (model_name, f"{model_name}_meta"):
        if catalog.has_table(table_name):
            catalog.drop_table(table_name)

    values_table = catalog.create_table(
        model_name,
        [("component", ColumnType.TEXT), ("idx", ColumnType.INTEGER), ("value", ColumnType.FLOAT)],
    )
    meta_table = catalog.create_table(
        f"{model_name}_meta",
        [("component", ColumnType.TEXT), ("shape", ColumnType.TEXT)],
    )
    for component_name, array in model.items():
        meta_table.insert((component_name, ",".join(str(s) for s in array.shape)))
        flat = array.ravel()
        values_table.insert_many(
            (component_name, int(index), float(value)) for index, value in enumerate(flat)
        )
    if source_table is not None and table_version is not None and table_version >= 0:
        meta_table.insert((SOURCE_COMPONENT, f"{source_table.lower()}@{table_version}"))
    if checkpoint and getattr(catalog, "durable", False):
        catalog.checkpoint()


def load_model(database, model_name: str) -> Model:
    """Reconstruct a model previously stored by :func:`save_model`."""
    catalog = _catalog(database)
    values_table = catalog.table(model_name)
    meta_table = catalog.table(f"{model_name}_meta")

    shapes: dict[str, tuple[int, ...]] = {}
    for row in meta_table.scan():
        if row["component"].startswith("__"):  # reserved bookkeeping rows
            continue
        shape = tuple(int(part) for part in row["shape"].split(",") if part != "")
        shapes[row["component"]] = shape or (1,)

    arrays = {name: np.zeros(int(np.prod(shape))) for name, shape in shapes.items()}
    for row in values_table.scan():
        if row["component"] in arrays:
            arrays[row["component"]][row["idx"]] = row["value"]
    return Model({name: arrays[name].reshape(shapes[name]) for name in shapes})


def trained_source(database, model_name: str) -> tuple[str, int] | None:
    """The ``(table_name, table_version)`` watermark a model was trained at.

    ``None`` when the model predates watermarking (or was saved without one)
    — callers must then fall back to full retraining.
    """
    catalog = _catalog(database)
    if not catalog.has_table(f"{model_name}_meta"):
        return None
    for row in catalog.table(f"{model_name}_meta").scan():
        if row["component"] == SOURCE_COMPONENT:
            name, _, version = row["shape"].rpartition("@")
            try:
                return name, int(version)
            except ValueError:
                return None
    return None


def model_exists(database, model_name: str) -> bool:
    catalog = _catalog(database)
    return catalog.has_table(model_name) and catalog.has_table(f"{model_name}_meta")
