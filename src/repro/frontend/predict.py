"""Prediction / scoring SQL functions operating on persisted model tables.

Mirrors the paper's remark that "the model can be applied to new unlabeled
data to make predictions by using a similar SQL query":

    SELECT LRPredict('myModel', 'NewPapers', 'vec');            -- writes scores
    SELECT ClassifyAccuracy('myModel', 'LabeledPapers', 'vec', 'label');
"""

from __future__ import annotations

from typing import Mapping

from ..db.engine import Database
from ..db.parallel import SegmentedDatabase
from ..db.types import ColumnType
from ..tasks.base import SupervisedExample, dot_product
from ..tasks.logistic_regression import sigmoid
from .models import load_model


def _catalog(database) -> Database:
    return database.master if isinstance(database, SegmentedDatabase) else database


def install_prediction_functions(database: Database | SegmentedDatabase) -> None:
    """Register prediction and evaluation SQL functions."""
    catalog = _catalog(database)

    def _decision_values(model_name: str, table_name: str, feature_column: str):
        model = load_model(database, model_name)
        weights = model["w"]
        table = catalog.table(table_name)
        for row in table.scan():
            yield row, dot_product(weights, row[feature_column])

    def lr_predict(model_name: str, table_name: str, feature_column: str,
                   output_table: str = "") -> str:
        """Score every row with P(label = +1); optionally persist the scores."""
        scores = [
            (index, sigmoid(value))
            for index, (_, value) in enumerate(
                _decision_values(model_name, table_name, feature_column)
            )
        ]
        if output_table:
            if catalog.has_table(output_table):
                catalog.drop_table(output_table)
            out = catalog.create_table(
                output_table, [("row_idx", ColumnType.INTEGER), ("score", ColumnType.FLOAT)]
            )
            out.insert_many(scores)
        mean_score = sum(score for _, score in scores) / max(1, len(scores))
        return f"scored {len(scores)} rows with '{model_name}' (mean p = {mean_score:.4f})"

    def svm_predict(model_name: str, table_name: str, feature_column: str,
                    output_table: str = "") -> str:
        """Score every row with the signed decision value w . x."""
        values = [
            (index, value)
            for index, (_, value) in enumerate(
                _decision_values(model_name, table_name, feature_column)
            )
        ]
        if output_table:
            if catalog.has_table(output_table):
                catalog.drop_table(output_table)
            out = catalog.create_table(
                output_table, [("row_idx", ColumnType.INTEGER), ("decision", ColumnType.FLOAT)]
            )
            out.insert_many(values)
        positive = sum(1 for _, value in values if value >= 0)
        return f"scored {len(values)} rows with '{model_name}' ({positive} predicted positive)"

    def classify_accuracy(model_name: str, table_name: str, feature_column: str,
                          label_column: str) -> float:
        """Classification accuracy of a persisted linear model on labelled data."""
        model = load_model(database, model_name)
        weights = model["w"]
        table = catalog.table(table_name)
        correct = 0
        total = 0
        for row in table.scan():
            example = SupervisedExample(row[feature_column], row[label_column])
            predicted = 1.0 if dot_product(weights, example.features) >= 0 else -1.0
            if predicted == (1.0 if example.label > 0 else -1.0):
                correct += 1
            total += 1
        return correct / total if total else 0.0

    def lmf_predict(model_name: str, table_name: str, row_column: str = "row_id",
                    col_column: str = "col_id") -> float:
        """Mean predicted rating over the (row, col) pairs in a table."""
        import numpy as np

        model = load_model(database, model_name)
        left = model["L"]
        right = model["R"]
        table = catalog.table(table_name)
        predictions = [
            float(np.dot(left[int(row[row_column])], right[int(row[col_column])]))
            for row in table.scan()
        ]
        return float(np.mean(predictions)) if predictions else 0.0

    catalog.register_function("lrpredict", lr_predict)
    catalog.register_function("svmpredict", svm_predict)
    catalog.register_function("classifyaccuracy", classify_accuracy)
    catalog.register_function("lmfpredict", lmf_predict)
