"""MADlib-mimicking SQL training functions.

Section 2.1 of the paper shows the end-user interface::

    SELECT SVMTrain('myModel', 'LabeledPapers', 'vec', 'label');

:func:`install_frontend` registers that family of scalar functions
(``SVMTrain``, ``LRTrain``, ``LassoTrain``, ``LMFTrain``, ``CRFTrain``) on a
database so exactly that query works.  Each function infers the model
dimensions from the data, trains with the Bismarck runner (shuffle-once,
shared defaults), persists the model as a user table, and returns a short
summary string — mirroring how MADlib's training functions behave.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Mapping

import numpy as np

from ..core.driver import BismarckRunner, IGDConfig
from ..db.engine import Database
from ..db.parallel import SegmentedDatabase
from ..tasks.crf import ConditionalRandomFieldTask
from ..tasks.lasso import LassoTask
from ..tasks.logistic_regression import LogisticRegressionTask
from ..tasks.matrix_factorization import LowRankMatrixFactorizationTask
from ..tasks.svm import SVMTask
from .models import load_model, model_exists, save_model, trained_source

DEFAULT_EPOCHS = 10
DEFAULT_STEP_SIZE = {"kind": "epoch_decay", "alpha0": 0.1, "decay": 0.95}
#: During incremental continuation, run one pass over the whole table every
#: this many delta epochs so old rows keep influencing the refreshed model.
DEFAULT_FULL_PASS_EVERY = 4


def _catalog(database) -> Database:
    return database.master if isinstance(database, SegmentedDatabase) else database


def _infer_feature_dimension(table, feature_column: str) -> int:
    """Dimensionality of the feature column: array length or max sparse index + 1."""
    dimension = 0
    for row in table.scan():
        features = row[feature_column]
        if isinstance(features, Mapping):
            if features:
                dimension = max(dimension, max(features) + 1)
        else:
            dimension = max(dimension, len(features))
    if dimension == 0:
        raise ValueError(f"could not infer a feature dimension from column {feature_column!r}")
    return dimension


def _warm_start(database, task, table_name: str, model_name: str):
    """A ``(model, since_version)`` continuation point, or ``None``.

    Retraining an existing model over the same (possibly grown) table
    continues from the persisted watermark instead of starting cold — the
    driver's :meth:`~repro.core.driver.BismarckRunner.partial_fit` then
    decides, from the table's ledger, whether the delta is append-only
    (incremental epochs) or a rewrite (full retrain).  A dimension change
    (e.g. appended rows widened the feature space) disqualifies the warm
    model: its arrays no longer match the task.
    """
    catalog = _catalog(database)
    if not model_exists(catalog, model_name):
        return None
    source = trained_source(catalog, model_name)
    if source is None or source[0] != table_name.lower():
        return None
    model = load_model(catalog, model_name)
    probe = task.initial_model(np.random.default_rng(0))
    if model.component_names() != probe.component_names() or any(
        model[name].shape != probe[name].shape for name in probe.component_names()
    ):
        return None
    return model, source[1]


def _train_and_persist(database, task, table_name: str, model_name: str, config: IGDConfig) -> str:
    catalog = _catalog(database)
    if getattr(catalog, "durable", False) and config.checkpoint_every <= 0:
        # Durable engines get crash-safe training for free: checkpoint every
        # epoch under the model's name, so an interrupted SQL train resumes
        # instead of restarting.
        config = replace(
            config, checkpoint_every=1, checkpoint_name=model_name.lower()
        )
    state_name = (config.checkpoint_name or model_name).lower()
    runner = BismarckRunner(database, task, config)

    state = catalog.training_state(state_name)
    if (
        state is not None
        and state.task == task.describe()
        and state.table_name == table_name.lower()
    ):
        # A crash interrupted this exact training run mid-way: continue it
        # from the recovered TrainingState (bit-for-bit for deterministic
        # schemes) rather than warm-starting from the last *persisted* model.
        result = runner.partial_fit(table_name, resume_from=state)
        mode = "resumed"
    else:
        warm = _warm_start(database, task, table_name, model_name)
        if warm is not None:
            result = runner.partial_fit(
                table_name,
                initial_model=warm[0],
                since_version=warm[1],
                full_pass_every=DEFAULT_FULL_PASS_EVERY,
            )
            mode = "continued" if result.ordering_name.startswith("delta") else "retrained"
        else:
            result = runner.train(table_name)
            mode = "trained"
    save_model(
        database, model_name, result.model,
        source_table=table_name, table_version=result.table_version,
    )
    # Only after the model is durably persisted may the in-flight training
    # state be forgotten: a crash between training and save_model must still
    # resume.  The final checkpoint folds both into one snapshot.
    catalog.clear_training_state(state_name)
    if getattr(catalog, "durable", False):
        catalog.checkpoint()
    return (
        f"model '{model_name}' {mode} with {task.name}: "
        f"epochs={result.epochs_run}, objective={result.final_objective:.6g}"
    )


def _config(step_size: Any = None, epochs: int | None = None, **overrides) -> IGDConfig:
    return IGDConfig(
        step_size=step_size if step_size is not None else dict(DEFAULT_STEP_SIZE),
        max_epochs=int(epochs) if epochs is not None else DEFAULT_EPOCHS,
        ordering="shuffle_once",
        **overrides,
    )


def install_frontend(database: Database | SegmentedDatabase) -> None:
    """Register the training and prediction SQL functions on ``database``."""
    catalog = _catalog(database)

    # The example cache keys decoded entries on the task *instance*, so a
    # retrain must reuse the exact task object to extend cached chunks
    # incrementally instead of re-decoding the table.  Memoise tasks on
    # their full parameterisation — a dimension change (appended rows
    # widened the feature space) naturally maps to a fresh task.
    task_cache: dict[tuple, Any] = {}

    def _cached_task(key: tuple, build):
        task = task_cache.get(key)
        if task is None:
            task = task_cache[key] = build()
        return task

    def lr_train(model_name: str, table_name: str, feature_column: str, label_column: str,
                 step_size: float | None = None, epochs: int | None = None,
                 mu: float = 0.0) -> str:
        table = catalog.table(table_name)
        dimension = _infer_feature_dimension(table, feature_column)
        task = _cached_task(
            ("lr", dimension, mu, feature_column, label_column),
            lambda: LogisticRegressionTask(
                dimension, mu=mu, feature_column=feature_column, label_column=label_column
            ),
        )
        return _train_and_persist(database, task, table_name, model_name, _config(step_size, epochs))

    def svm_train(model_name: str, table_name: str, feature_column: str, label_column: str,
                  step_size: float | None = None, epochs: int | None = None,
                  mu: float = 0.0) -> str:
        table = catalog.table(table_name)
        dimension = _infer_feature_dimension(table, feature_column)
        task = _cached_task(
            ("svm", dimension, mu, feature_column, label_column),
            lambda: SVMTask(
                dimension, mu=mu, feature_column=feature_column, label_column=label_column
            ),
        )
        return _train_and_persist(database, task, table_name, model_name, _config(step_size, epochs))

    def lasso_train(model_name: str, table_name: str, feature_column: str, label_column: str,
                    mu: float = 0.1, step_size: float | None = None,
                    epochs: int | None = None) -> str:
        table = catalog.table(table_name)
        dimension = _infer_feature_dimension(table, feature_column)
        task = _cached_task(
            ("lasso", dimension, mu, feature_column, label_column),
            lambda: LassoTask(
                dimension, mu=mu, feature_column=feature_column, label_column=label_column
            ),
        )
        return _train_and_persist(database, task, table_name, model_name, _config(step_size, epochs))

    def lmf_train(model_name: str, table_name: str, row_column: str = "row_id",
                  col_column: str = "col_id", value_column: str = "rating",
                  rank: int = 10, step_size: float | None = None,
                  epochs: int | None = None, mu: float = 0.01) -> str:
        table = catalog.table(table_name)
        num_rows = max(int(row[row_column]) for row in table.scan()) + 1
        num_cols = max(int(row[col_column]) for row in table.scan()) + 1
        task = _cached_task(
            ("lmf", num_rows, num_cols, int(rank), mu, row_column, col_column, value_column),
            lambda: LowRankMatrixFactorizationTask(
                num_rows,
                num_cols,
                rank=int(rank),
                mu=mu,
                row_column=row_column,
                col_column=col_column,
                value_column=value_column,
            ),
        )
        effective_step = step_size if step_size is not None else 0.05
        return _train_and_persist(
            database, task, table_name, model_name, _config(effective_step, epochs)
        )

    def crf_train(model_name: str, table_name: str, tokens_column: str = "tokens",
                  labels_column: str = "labels", step_size: float | None = None,
                  epochs: int | None = None) -> str:
        table = catalog.table(table_name)
        probe_task = ConditionalRandomFieldTask(
            1_000_000, 2, features_column=tokens_column, labels_column=labels_column
        )
        max_feature = 0
        max_label = 1
        for row in table.scan():
            example = probe_task.example_from_row(row)
            for features in example.token_features:
                if features:
                    max_feature = max(max_feature, max(features))
            max_label = max(max_label, max(example.labels))
        task = _cached_task(
            ("crf", max_feature + 1, max_label + 1, tokens_column, labels_column),
            lambda: ConditionalRandomFieldTask(
                max_feature + 1,
                max_label + 1,
                features_column=tokens_column,
                labels_column=labels_column,
            ),
        )
        return _train_and_persist(database, task, table_name, model_name, _config(step_size, epochs))

    catalog.register_function("lrtrain", lr_train)
    catalog.register_function("svmtrain", svm_train)
    catalog.register_function("lassotrain", lasso_train)
    catalog.register_function("lmftrain", lmf_train)
    catalog.register_function("crftrain", crf_train)

    # Prediction functions are registered alongside training so one install
    # call wires up the whole MADlib-style surface.
    from .predict import install_prediction_functions

    install_prediction_functions(database)
