"""MADlib-mimicking SQL training functions.

Section 2.1 of the paper shows the end-user interface::

    SELECT SVMTrain('myModel', 'LabeledPapers', 'vec', 'label');

:func:`install_frontend` registers that family of scalar functions
(``SVMTrain``, ``LRTrain``, ``LassoTrain``, ``LMFTrain``, ``CRFTrain``) on a
database so exactly that query works.  Each function infers the model
dimensions from the data, trains with the Bismarck runner (shuffle-once,
shared defaults), persists the model as a user table, and returns a short
summary string — mirroring how MADlib's training functions behave.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.driver import BismarckRunner, IGDConfig
from ..db.engine import Database
from ..db.parallel import SegmentedDatabase
from ..tasks.crf import ConditionalRandomFieldTask
from ..tasks.lasso import LassoTask
from ..tasks.logistic_regression import LogisticRegressionTask
from ..tasks.matrix_factorization import LowRankMatrixFactorizationTask
from ..tasks.svm import SVMTask
from .models import save_model

DEFAULT_EPOCHS = 10
DEFAULT_STEP_SIZE = {"kind": "epoch_decay", "alpha0": 0.1, "decay": 0.95}


def _catalog(database) -> Database:
    return database.master if isinstance(database, SegmentedDatabase) else database


def _infer_feature_dimension(table, feature_column: str) -> int:
    """Dimensionality of the feature column: array length or max sparse index + 1."""
    dimension = 0
    for row in table.scan():
        features = row[feature_column]
        if isinstance(features, Mapping):
            if features:
                dimension = max(dimension, max(features) + 1)
        else:
            dimension = max(dimension, len(features))
    if dimension == 0:
        raise ValueError(f"could not infer a feature dimension from column {feature_column!r}")
    return dimension


def _train_and_persist(database, task, table_name: str, model_name: str, config: IGDConfig) -> str:
    runner = BismarckRunner(database, task, config)
    result = runner.train(table_name)
    save_model(database, model_name, result.model)
    return (
        f"model '{model_name}' trained with {task.name}: "
        f"epochs={result.epochs_run}, objective={result.final_objective:.6g}"
    )


def _config(step_size: Any = None, epochs: int | None = None, **overrides) -> IGDConfig:
    return IGDConfig(
        step_size=step_size if step_size is not None else dict(DEFAULT_STEP_SIZE),
        max_epochs=int(epochs) if epochs is not None else DEFAULT_EPOCHS,
        ordering="shuffle_once",
        **overrides,
    )


def install_frontend(database: Database | SegmentedDatabase) -> None:
    """Register the training and prediction SQL functions on ``database``."""
    catalog = _catalog(database)

    def lr_train(model_name: str, table_name: str, feature_column: str, label_column: str,
                 step_size: float | None = None, epochs: int | None = None,
                 mu: float = 0.0) -> str:
        table = catalog.table(table_name)
        dimension = _infer_feature_dimension(table, feature_column)
        task = LogisticRegressionTask(
            dimension, mu=mu, feature_column=feature_column, label_column=label_column
        )
        return _train_and_persist(database, task, table_name, model_name, _config(step_size, epochs))

    def svm_train(model_name: str, table_name: str, feature_column: str, label_column: str,
                  step_size: float | None = None, epochs: int | None = None,
                  mu: float = 0.0) -> str:
        table = catalog.table(table_name)
        dimension = _infer_feature_dimension(table, feature_column)
        task = SVMTask(
            dimension, mu=mu, feature_column=feature_column, label_column=label_column
        )
        return _train_and_persist(database, task, table_name, model_name, _config(step_size, epochs))

    def lasso_train(model_name: str, table_name: str, feature_column: str, label_column: str,
                    mu: float = 0.1, step_size: float | None = None,
                    epochs: int | None = None) -> str:
        table = catalog.table(table_name)
        dimension = _infer_feature_dimension(table, feature_column)
        task = LassoTask(
            dimension, mu=mu, feature_column=feature_column, label_column=label_column
        )
        return _train_and_persist(database, task, table_name, model_name, _config(step_size, epochs))

    def lmf_train(model_name: str, table_name: str, row_column: str = "row_id",
                  col_column: str = "col_id", value_column: str = "rating",
                  rank: int = 10, step_size: float | None = None,
                  epochs: int | None = None, mu: float = 0.01) -> str:
        table = catalog.table(table_name)
        num_rows = max(int(row[row_column]) for row in table.scan()) + 1
        num_cols = max(int(row[col_column]) for row in table.scan()) + 1
        task = LowRankMatrixFactorizationTask(
            num_rows,
            num_cols,
            rank=int(rank),
            mu=mu,
            row_column=row_column,
            col_column=col_column,
            value_column=value_column,
        )
        effective_step = step_size if step_size is not None else 0.05
        return _train_and_persist(
            database, task, table_name, model_name, _config(effective_step, epochs)
        )

    def crf_train(model_name: str, table_name: str, tokens_column: str = "tokens",
                  labels_column: str = "labels", step_size: float | None = None,
                  epochs: int | None = None) -> str:
        table = catalog.table(table_name)
        probe_task = ConditionalRandomFieldTask(
            1_000_000, 2, features_column=tokens_column, labels_column=labels_column
        )
        max_feature = 0
        max_label = 1
        for row in table.scan():
            example = probe_task.example_from_row(row)
            for features in example.token_features:
                if features:
                    max_feature = max(max_feature, max(features))
            max_label = max(max_label, max(example.labels))
        task = ConditionalRandomFieldTask(
            max_feature + 1,
            max_label + 1,
            features_column=tokens_column,
            labels_column=labels_column,
        )
        return _train_and_persist(database, task, table_name, model_name, _config(step_size, epochs))

    catalog.register_function("lrtrain", lr_train)
    catalog.register_function("svmtrain", svm_train)
    catalog.register_function("lassotrain", lasso_train)
    catalog.register_function("lmftrain", lmf_train)
    catalog.register_function("crftrain", crf_train)

    # Prediction functions are registered alongside training so one install
    # call wires up the whole MADlib-style surface.
    from .predict import install_prediction_functions

    install_prediction_functions(database)
