"""Linear-chain conditional random field labelling (the "CRF" task).

Objective (Figure 1B): maximise ``sum_k [ sum_j w_j F_j(y_k, x_k) - log Z(x_k) ]``
over label sequences; we minimise the negative log-likelihood.  Each training
example is one token sequence (a database tuple holding the token feature
indices and the gold labels), so — as with every other task — IGD touches one
tuple per gradient step.

The model has two components:

* ``emission``  — shape (num_features, num_labels); weight of feature f firing
  with label y on a token;
* ``transition`` — shape (num_labels, num_labels); weight of label bigram
  (y_prev, y_curr).

Gradients are computed with the standard forward–backward algorithm in log
space (empirical feature counts minus expected counts under the model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from ..core.model import Model
from ..core.proximal import IdentityProximal, ProximalOperator
from ..db.types import Row
from .base import DecodedExampleBatch, PerExampleChunkTask


@dataclass(frozen=True)
class SequenceExample:
    """A token sequence: per-token active feature indices plus gold labels."""

    token_features: tuple[tuple[int, ...], ...]
    labels: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.token_features) != len(self.labels):
            raise ValueError(
                f"sequence has {len(self.token_features)} tokens but "
                f"{len(self.labels)} labels"
            )

    def __len__(self) -> int:
        return len(self.labels)


def _log_sum_exp(values: np.ndarray, axis: int | None = None) -> np.ndarray:
    # Array methods instead of np.* wrappers: this runs O(T) times per
    # forward-backward pass, where the wrapper dispatch overhead is measurable.
    # The reductions are the same ufuncs, so results are bit-identical.
    maximum = values.max(axis=axis, keepdims=True)
    result = maximum + np.log(np.exp(values - maximum).sum(axis=axis, keepdims=True))
    if axis is None:
        return result.reshape(())
    return np.squeeze(result, axis=axis)


def _flatten_features(example: SequenceExample) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a sequence's per-token features into (indices, token offsets)."""
    counts = np.fromiter(
        (len(features) for features in example.token_features),
        dtype=np.intp,
        count=len(example),
    )
    offsets = np.zeros(len(example) + 1, dtype=np.intp)
    np.cumsum(counts, out=offsets[1:])
    flat = np.fromiter(
        (f for features in example.token_features for f in features),
        dtype=np.intp,
        count=int(offsets[-1]),
    )
    return flat, offsets


class SequenceBatch(DecodedExampleBatch):
    """Cached decoded sequences plus flattened per-token feature arrays.

    Decoding a sequence row means parsing its TEXT payload — by far the most
    expensive per-tuple cost of the CRF task — so the chunk cache alone is a
    large win.  On top of it, each example's active features are flattened
    into one index array with token offsets so the chunked kernels skip even
    the per-epoch flattening the per-tuple scoring kernel performs; both paths
    then run the identical ``reduceat`` gather, keeping them bit-for-bit.
    """

    __slots__ = ("flat_features", "token_offsets")

    def __init__(
        self,
        examples: list[SequenceExample],
        *,
        flat_features: list[np.ndarray] | None = None,
        token_offsets: list[np.ndarray] | None = None,
    ):
        super().__init__(examples)
        if flat_features is not None and token_offsets is not None:
            # Gathered/concatenated batches reuse the already-flattened
            # arrays; re-flattening would re-pay the decode the cache saved.
            self.flat_features = flat_features
            self.token_offsets = token_offsets
            return
        self.flat_features: list[np.ndarray] = []
        self.token_offsets: list[np.ndarray] = []
        for example in examples:
            flat, offsets = _flatten_features(example)
            self.flat_features.append(flat)
            self.token_offsets.append(offsets)

    def take(self, indices) -> "SequenceBatch":
        """Sequence gather preserving the cached flattened feature arrays."""
        ordinals = [int(i) for i in indices]
        return SequenceBatch(
            [self.examples[i] for i in ordinals],
            flat_features=[self.flat_features[i] for i in ordinals],
            token_offsets=[self.token_offsets[i] for i in ordinals],
        )

    @classmethod
    def concat(cls, batches: "list[SequenceBatch]") -> "SequenceBatch":
        if len(batches) == 1:
            return batches[0]
        return cls(
            [example for batch in batches for example in batch.examples],
            flat_features=[f for batch in batches for f in batch.flat_features],
            token_offsets=[t for batch in batches for t in batch.token_offsets],
        )


class ConditionalRandomFieldTask(PerExampleChunkTask):
    """Linear-chain CRF trained by incremental gradient descent."""

    name = "crf"

    def __init__(
        self,
        num_features: int,
        num_labels: int,
        *,
        mu: float = 0.0,
        features_column: str = "tokens",
        labels_column: str = "labels",
        proximal: ProximalOperator | None = None,
    ):
        super().__init__(proximal)
        if num_features <= 0 or num_labels <= 1:
            raise ValueError("need at least one feature and two labels")
        self.num_features = num_features
        self.num_labels = num_labels
        self.mu = mu
        self.features_column = features_column
        self.labels_column = labels_column

    # -------------------------------------------------------------- interface
    def initial_model(self, rng: np.random.Generator | None = None) -> Model:
        return Model(
            {
                "emission": np.zeros((self.num_features, self.num_labels)),
                "transition": np.zeros((self.num_labels, self.num_labels)),
            }
        )

    def example_from_row(self, row: Row | Mapping[str, Any]) -> SequenceExample:
        """Rows store sequences as encoded text: ``"1,2|4"`` tokens, ``"0 1"`` labels.

        Token features are ``|``-separated tokens each holding a
        comma-separated list of feature indices; labels are space-separated
        integers.  (This keeps the sequences inside plain TEXT columns, the
        same trick in-RDBMS CRF implementations use.)
        """
        raw_tokens = row[self.features_column]
        raw_labels = row[self.labels_column]
        if isinstance(raw_tokens, str):
            token_features = tuple(
                tuple(int(f) for f in token.split(",") if f != "")
                for token in raw_tokens.split("|")
            )
        else:
            token_features = tuple(tuple(int(f) for f in token) for token in raw_tokens)
        if isinstance(raw_labels, str):
            labels = tuple(int(label) for label in raw_labels.split())
        else:
            labels = tuple(int(label) for label in raw_labels)
        return SequenceExample(token_features=token_features, labels=labels)

    # --------------------------------------------------------------- internals
    def _token_scores(self, model: Model, example: SequenceExample) -> np.ndarray:
        """Per-token emission scores, shape (T, num_labels)."""
        flat, offsets = _flatten_features(example)
        return self._token_scores_cached(model["emission"], flat, offsets, len(example))

    def _token_scores_cached(
        self, emission: np.ndarray, flat: np.ndarray, offsets: np.ndarray, length: int
    ) -> np.ndarray:
        """Per-token scores from flattened feature arrays.

        This is the single scoring kernel for both execution paths: the
        per-tuple path flattens each example's features on the fly, the
        chunked path reuses the arrays cached in its :class:`SequenceBatch`.
        Sharing one kernel is what keeps the two paths bit-for-bit identical —
        ``reduceat``'s reduction order over multiple segments is not the
        left-to-right loop order, so a loop-based path could not match it.
        """
        scores = np.zeros((length, self.num_labels))
        if flat.size:
            gathered = emission[flat]
            counts = np.diff(offsets)
            # Zero-width reduceat segments misbehave (repeated starts), so
            # reduce over non-empty tokens only: their starts are strictly
            # increasing and each segment runs to the next non-empty start,
            # which is exactly that token's features.
            nonempty = counts > 0
            scores[nonempty] = np.add.reduceat(gathered, offsets[:-1][nonempty], axis=0)
        return scores

    def _forward_backward(
        self, model: Model, example: SequenceExample, scores: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, float, np.ndarray]:
        """Return (alpha, beta, log_Z, scores) in log space."""
        transition = model["transition"]
        if scores is None:
            scores = self._token_scores(model, example)
        length = len(example)
        alpha = np.zeros((length, self.num_labels))
        beta = np.zeros((length, self.num_labels))
        alpha[0] = scores[0]
        # The log-sum-exps are inlined (same ufunc reductions as
        # :func:`_log_sum_exp`, bit-identical results): these two recursions
        # run O(T) times per tuple and dominate the task's wall-clock, so the
        # per-call wrapper/keepdims/squeeze overhead is worth removing.
        for t in range(1, length):
            # alpha[t, y] = score[t, y] + logsumexp_y'( alpha[t-1, y'] + T[y', y] )
            combined = alpha[t - 1][:, None] + transition
            maximum = combined.max(axis=0)
            alpha[t] = scores[t] + (
                maximum + np.log(np.exp(combined - maximum).sum(axis=0))
            )
        beta[length - 1] = 0.0
        for t in range(length - 2, -1, -1):
            combined = transition + scores[t + 1][None, :] + beta[t + 1][None, :]
            maximum = combined.max(axis=1)
            beta[t] = maximum + np.log(
                np.exp(combined - maximum[:, None]).sum(axis=1)
            )
        log_z = float(_log_sum_exp(alpha[length - 1]))
        return alpha, beta, log_z, scores

    # -------------------------------------------------------------- interface
    def loss(self, model: Model, example: SequenceExample) -> float:
        """Negative log-likelihood of the gold label sequence."""
        return self._loss_with_scores(model, example, None)

    def _loss_with_scores(
        self, model: Model, example: SequenceExample, token_scores: np.ndarray | None
    ) -> float:
        _, _, log_z, scores = self._forward_backward(model, example, scores=token_scores)
        transition = model["transition"]
        labels = np.asarray(example.labels, dtype=np.intp)
        gold_score = float(scores[np.arange(len(labels)), labels].sum())
        if labels.size > 1:
            gold_score += float(transition[labels[:-1], labels[1:]].sum())
        return log_z - gold_score

    def gradient_step(self, model: Model, example: SequenceExample, alpha: float) -> None:
        """One IGD step: add ``alpha * (empirical - expected)`` feature counts."""
        flat, offsets = _flatten_features(example)
        scores = self._token_scores_cached(model["emission"], flat, offsets, len(example))
        forward_backward = self._forward_backward(model, example, scores=scores)
        self._apply_gradient(
            model, example, alpha, forward_backward, flat=flat, offsets=offsets
        )

    def _apply_gradient(
        self,
        model: Model,
        example: SequenceExample,
        alpha: float,
        forward_backward: tuple[np.ndarray, np.ndarray, float, np.ndarray],
        flat: np.ndarray | None = None,
        offsets: np.ndarray | None = None,
    ) -> None:
        """Apply ``alpha * (empirical - expected)`` counts from one F-B pass.

        ``flat`` / ``offsets`` optionally reuse a :class:`SequenceBatch`'s
        cached flattened feature arrays; the per-tuple path flattens on the
        fly.  Both execution paths run this single vectorized implementation,
        which is what keeps them bit-for-bit identical.
        """
        emission = model["emission"]
        transition = model["transition"]
        alphas, betas, log_z, scores = forward_backward
        length = len(example)
        if flat is None:
            flat, offsets = _flatten_features(example)
        labels = np.asarray(example.labels, dtype=np.intp)

        # Unary marginals p(y_t = y | x), shape (T, num_labels).
        unary = np.exp(alphas + betas - log_z)

        # Emission updates: empirical minus expected, scaled by the step
        # size.  ``add.at``/``subtract.at`` accumulate repeated feature
        # indices, matching the per-feature loop they replace.
        if flat.size:
            token_of_feature = np.repeat(
                np.arange(length, dtype=np.intp), np.diff(offsets)
            )
            np.add.at(emission, (flat, labels[token_of_feature]), alpha)
            np.subtract.at(emission, flat, alpha * unary[token_of_feature])

        # Pairwise marginals and transition updates.  All marginals are
        # computed against the pre-update transition weights (the same ones
        # the forward/backward pass used) before any update lands.
        if length > 1:
            pairwise_log = (
                alphas[:-1, :, None]
                + transition[None, :, :]
                + scores[1:, None, :]
                + betas[1:, None, :]
                - log_z
            )
            expected = np.exp(pairwise_log).sum(axis=0)
            np.add.at(transition, (labels[:-1], labels[1:]), alpha)
            transition -= alpha * expected

        if self.mu > 0:
            emission -= alpha * self.mu * emission
            transition -= alpha * self.mu * transition

    # ----------------------------------------------------------- batched API
    def batch_from_chunk(self, chunk) -> SequenceBatch | None:
        """Decode a chunk of TEXT-encoded sequences once, with flat feature arrays."""
        decoded = super().batch_from_chunk(chunk)
        if decoded is None:
            return None
        return SequenceBatch(decoded.examples)

    def igd_chunk(
        self,
        model: Model,
        batch: SequenceBatch,
        alphas: np.ndarray,
        proximal: ProximalOperator,
    ) -> None:
        """Sequential IGD over cached decoded sequences.

        The forward–backward pass runs on token scores gathered from the
        batch's flattened feature arrays; gradients and updates are the exact
        per-tuple operations, so the models are bit-for-bit identical.
        """
        apply_proximal = not isinstance(proximal, IdentityProximal)
        flat_features = batch.flat_features
        token_offsets = batch.token_offsets
        for i, example in enumerate(batch.examples):
            scores = self._token_scores_cached(
                model["emission"], flat_features[i], token_offsets[i], len(example)
            )
            forward_backward = self._forward_backward(model, example, scores=scores)
            self._apply_gradient(
                model, example, alphas[i], forward_backward,
                flat=flat_features[i], offsets=token_offsets[i],
            )
            if apply_proximal:
                proximal.apply(model, alphas[i])

    def batch_loss(self, model: Model, batch: SequenceBatch) -> float:
        emission = model["emission"]
        total = 0.0
        for i, example in enumerate(batch.examples):
            scores = self._token_scores_cached(
                emission, batch.flat_features[i], batch.token_offsets[i], len(example)
            )
            total += self._loss_with_scores(model, example, scores)
        return total

    def predict(self, model: Model, example: SequenceExample) -> list[int]:
        """Viterbi decoding of the most likely label sequence."""
        transition = model["transition"]
        scores = self._token_scores(model, example)
        length = len(example)
        viterbi = np.zeros((length, self.num_labels))
        backpointer = np.zeros((length, self.num_labels), dtype=np.int64)
        viterbi[0] = scores[0]
        for t in range(1, length):
            candidate = viterbi[t - 1][:, None] + transition
            backpointer[t] = np.argmax(candidate, axis=0)
            viterbi[t] = scores[t] + np.max(candidate, axis=0)
        labels = [int(np.argmax(viterbi[length - 1]))]
        for t in range(length - 1, 0, -1):
            labels.append(int(backpointer[t, labels[-1]]))
        labels.reverse()
        return labels

    def predict_batch(self, model: Model, batch: SequenceBatch) -> list[list[int]]:
        """Viterbi decoding of every sequence in a batch, in lockstep.

        Inference used to loop per token per sequence; here the whole corpus
        decodes together.  Token emission scores for *all* sequences are
        gathered with a single ``reduceat`` over the batch's cached flattened
        feature arrays, then the Viterbi recursion advances one time step at
        a time across every still-active sequence at once (sequences are
        processed in descending length order, so the active set is always a
        prefix).  ``argmax``/``max`` run over the same candidate matrices as
        :meth:`predict`, with identical tie-breaking, so the decoded labels
        are exactly the per-sequence results.
        """
        examples = batch.examples
        num_sequences = len(examples)
        if num_sequences == 0:
            return []
        transition = model["transition"]
        emission = model["emission"]
        lengths = np.fromiter((len(e) for e in examples), dtype=np.intp, count=num_sequences)

        # Longest first: the t-th Viterbi step then touches rows [0, active).
        order = np.argsort(-lengths, kind="stable")
        sorted_lengths = lengths[order]
        max_length = int(sorted_lengths[0])
        token_starts = np.zeros(num_sequences + 1, dtype=np.intp)
        np.cumsum(sorted_lengths, out=token_starts[1:])

        # One scoring pass for every token of every sequence: concatenate the
        # cached flattened feature arrays and run the shared reduceat kernel.
        flat_all = np.concatenate([batch.flat_features[i] for i in order])
        counts_all = np.concatenate([np.diff(batch.token_offsets[i]) for i in order])
        offsets_all = np.zeros(int(token_starts[-1]) + 1, dtype=np.intp)
        np.cumsum(counts_all, out=offsets_all[1:])
        scores_all = self._token_scores_cached(
            emission, flat_all, offsets_all, int(token_starts[-1])
        )

        viterbi = scores_all[token_starts[:-1]].copy()  # (S, L): each row's t=0 scores
        backpointer = np.zeros((num_sequences, max_length, self.num_labels), dtype=np.int64)
        for t in range(1, max_length):
            # Sequences still running at step t form the prefix [0, active).
            active = int(np.searchsorted(-sorted_lengths, -t, side="left"))
            candidate = viterbi[:active, :, None] + transition[None, :, :]
            backpointer[:active, t] = np.argmax(candidate, axis=1)
            viterbi[:active] = scores_all[token_starts[:active] + t] + np.max(candidate, axis=1)

        labels = np.zeros((num_sequences, max_length), dtype=np.int64)
        labels[np.arange(num_sequences), sorted_lengths - 1] = np.argmax(viterbi, axis=1)
        for t in range(max_length - 1, 0, -1):
            active = int(np.searchsorted(-sorted_lengths, -t, side="left"))
            rows = np.arange(active)
            labels[rows, t - 1] = backpointer[rows, t, labels[rows, t]]

        results: list[list[int]] = [[] for _ in range(num_sequences)]
        for sorted_index, original_index in enumerate(order):
            results[int(original_index)] = labels[
                sorted_index, : sorted_lengths[sorted_index]
            ].tolist()
        return results

    def token_accuracy(
        self, model: Model, examples: "Sequence[SequenceExample] | SequenceBatch"
    ) -> float:
        """Fraction of tokens whose Viterbi label matches the gold label.

        Decodes the whole corpus with the batched Viterbi kernel; passing a
        cached :class:`SequenceBatch` reuses its flattened feature arrays,
        and a plain sequence of examples is flattened once here.
        """
        batch = examples if isinstance(examples, SequenceBatch) else SequenceBatch(list(examples))
        predictions = self.predict_batch(model, batch)
        correct = 0
        total = 0
        for example, predicted in zip(batch.examples, predictions):
            correct += sum(1 for p, g in zip(predicted, example.labels) if p == g)
            total += len(example)
        return correct / total if total else 0.0
