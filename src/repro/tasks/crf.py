"""Linear-chain conditional random field labelling (the "CRF" task).

Objective (Figure 1B): maximise ``sum_k [ sum_j w_j F_j(y_k, x_k) - log Z(x_k) ]``
over label sequences; we minimise the negative log-likelihood.  Each training
example is one token sequence (a database tuple holding the token feature
indices and the gold labels), so — as with every other task — IGD touches one
tuple per gradient step.

The model has two components:

* ``emission``  — shape (num_features, num_labels); weight of feature f firing
  with label y on a token;
* ``transition`` — shape (num_labels, num_labels); weight of label bigram
  (y_prev, y_curr).

Gradients are computed with the standard forward–backward algorithm in log
space (empirical feature counts minus expected counts under the model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from ..core.model import Model
from ..core.proximal import ProximalOperator
from ..db.types import Row
from .base import Task


@dataclass(frozen=True)
class SequenceExample:
    """A token sequence: per-token active feature indices plus gold labels."""

    token_features: tuple[tuple[int, ...], ...]
    labels: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.token_features) != len(self.labels):
            raise ValueError(
                f"sequence has {len(self.token_features)} tokens but "
                f"{len(self.labels)} labels"
            )

    def __len__(self) -> int:
        return len(self.labels)


def _log_sum_exp(values: np.ndarray, axis: int | None = None) -> np.ndarray:
    maximum = np.max(values, axis=axis, keepdims=True)
    result = maximum + np.log(np.sum(np.exp(values - maximum), axis=axis, keepdims=True))
    if axis is None:
        return result.reshape(())
    return np.squeeze(result, axis=axis)


class ConditionalRandomFieldTask(Task):
    """Linear-chain CRF trained by incremental gradient descent."""

    name = "crf"

    def __init__(
        self,
        num_features: int,
        num_labels: int,
        *,
        mu: float = 0.0,
        features_column: str = "tokens",
        labels_column: str = "labels",
        proximal: ProximalOperator | None = None,
    ):
        super().__init__(proximal)
        if num_features <= 0 or num_labels <= 1:
            raise ValueError("need at least one feature and two labels")
        self.num_features = num_features
        self.num_labels = num_labels
        self.mu = mu
        self.features_column = features_column
        self.labels_column = labels_column

    # -------------------------------------------------------------- interface
    def initial_model(self, rng: np.random.Generator | None = None) -> Model:
        return Model(
            {
                "emission": np.zeros((self.num_features, self.num_labels)),
                "transition": np.zeros((self.num_labels, self.num_labels)),
            }
        )

    def example_from_row(self, row: Row | Mapping[str, Any]) -> SequenceExample:
        """Rows store sequences as encoded text: ``"1,2|4"`` tokens, ``"0 1"`` labels.

        Token features are ``|``-separated tokens each holding a
        comma-separated list of feature indices; labels are space-separated
        integers.  (This keeps the sequences inside plain TEXT columns, the
        same trick in-RDBMS CRF implementations use.)
        """
        raw_tokens = row[self.features_column]
        raw_labels = row[self.labels_column]
        if isinstance(raw_tokens, str):
            token_features = tuple(
                tuple(int(f) for f in token.split(",") if f != "")
                for token in raw_tokens.split("|")
            )
        else:
            token_features = tuple(tuple(int(f) for f in token) for token in raw_tokens)
        if isinstance(raw_labels, str):
            labels = tuple(int(label) for label in raw_labels.split())
        else:
            labels = tuple(int(label) for label in raw_labels)
        return SequenceExample(token_features=token_features, labels=labels)

    # --------------------------------------------------------------- internals
    def _token_scores(self, model: Model, example: SequenceExample) -> np.ndarray:
        """Per-token emission scores, shape (T, num_labels)."""
        emission = model["emission"]
        scores = np.zeros((len(example), self.num_labels))
        for t, features in enumerate(example.token_features):
            for feature in features:
                scores[t] += emission[feature]
        return scores

    def _forward_backward(
        self, model: Model, example: SequenceExample
    ) -> tuple[np.ndarray, np.ndarray, float, np.ndarray]:
        """Return (alpha, beta, log_Z, scores) in log space."""
        transition = model["transition"]
        scores = self._token_scores(model, example)
        length = len(example)
        alpha = np.zeros((length, self.num_labels))
        beta = np.zeros((length, self.num_labels))
        alpha[0] = scores[0]
        for t in range(1, length):
            # alpha[t, y] = score[t, y] + logsumexp_y'( alpha[t-1, y'] + T[y', y] )
            alpha[t] = scores[t] + _log_sum_exp(
                alpha[t - 1][:, None] + transition, axis=0
            )
        beta[length - 1] = 0.0
        for t in range(length - 2, -1, -1):
            beta[t] = _log_sum_exp(
                transition + scores[t + 1][None, :] + beta[t + 1][None, :], axis=1
            )
        log_z = float(_log_sum_exp(alpha[length - 1]))
        return alpha, beta, log_z, scores

    # -------------------------------------------------------------- interface
    def loss(self, model: Model, example: SequenceExample) -> float:
        """Negative log-likelihood of the gold label sequence."""
        _, _, log_z, scores = self._forward_backward(model, example)
        transition = model["transition"]
        gold_score = 0.0
        previous_label: int | None = None
        for t, label in enumerate(example.labels):
            gold_score += scores[t, label]
            if previous_label is not None:
                gold_score += transition[previous_label, label]
            previous_label = label
        return log_z - gold_score

    def gradient_step(self, model: Model, example: SequenceExample, alpha: float) -> None:
        """One IGD step: add ``alpha * (empirical - expected)`` feature counts."""
        emission = model["emission"]
        transition = model["transition"]
        alphas, betas, log_z, scores = self._forward_backward(model, example)
        length = len(example)

        # Unary marginals p(y_t = y | x), shape (T, num_labels).
        unary_log = alphas + betas - log_z
        unary = np.exp(unary_log)

        # Emission updates: empirical minus expected, scaled by the step size.
        for t, features in enumerate(example.token_features):
            gold = example.labels[t]
            for feature in features:
                emission[feature, gold] += alpha
                emission[feature] -= alpha * unary[t]

        # Pairwise marginals and transition updates.  Marginals must be
        # computed against the pre-update transition weights (the same ones
        # the forward/backward pass used), so snapshot them before mutating.
        original_transition = transition.copy()
        for t in range(1, length):
            pairwise_log = (
                alphas[t - 1][:, None]
                + original_transition
                + scores[t][None, :]
                + betas[t][None, :]
                - log_z
            )
            pairwise = np.exp(pairwise_log)
            transition[example.labels[t - 1], example.labels[t]] += alpha
            transition -= alpha * pairwise

        if self.mu > 0:
            emission -= alpha * self.mu * emission
            transition -= alpha * self.mu * transition

    def predict(self, model: Model, example: SequenceExample) -> list[int]:
        """Viterbi decoding of the most likely label sequence."""
        transition = model["transition"]
        scores = self._token_scores(model, example)
        length = len(example)
        viterbi = np.zeros((length, self.num_labels))
        backpointer = np.zeros((length, self.num_labels), dtype=np.int64)
        viterbi[0] = scores[0]
        for t in range(1, length):
            candidate = viterbi[t - 1][:, None] + transition
            backpointer[t] = np.argmax(candidate, axis=0)
            viterbi[t] = scores[t] + np.max(candidate, axis=0)
        labels = [int(np.argmax(viterbi[length - 1]))]
        for t in range(length - 1, 0, -1):
            labels.append(int(backpointer[t, labels[-1]]))
        labels.reverse()
        return labels

    def token_accuracy(self, model: Model, examples: Sequence[SequenceExample]) -> float:
        """Fraction of tokens whose Viterbi label matches the gold label."""
        correct = 0
        total = 0
        for example in examples:
            predicted = self.predict(model, example)
            correct += sum(1 for p, g in zip(predicted, example.labels) if p == g)
            total += len(example)
        return correct / total if total else 0.0
