"""Analytics tasks expressible as incremental gradient descent (Figure 1B)."""

from .base import (
    LinearModelTask,
    SupervisedExample,
    Task,
    dot_product,
    feature_dimension,
    scale_and_add,
)
from .crf import ConditionalRandomFieldTask, SequenceExample
from .kalman import KalmanSmoothingTask, ObservationExample
from .lasso import LassoTask
from .least_squares import (
    LinearRegressionTask,
    OneDimensionalLeastSquares,
    catx_closed_form_final,
    catx_closed_form_iterates,
)
from .logistic_regression import LogisticRegressionTask, log1p_exp, sigmoid
from .matrix_factorization import LowRankMatrixFactorizationTask, RatingExample
from .portfolio import PortfolioOptimizationTask, ReturnSample
from .registry import create_task, is_registered, register_task, task_names, unregister_task
from .svm import SVMTask

__all__ = [
    "ConditionalRandomFieldTask",
    "KalmanSmoothingTask",
    "LassoTask",
    "LinearModelTask",
    "LinearRegressionTask",
    "LogisticRegressionTask",
    "LowRankMatrixFactorizationTask",
    "ObservationExample",
    "OneDimensionalLeastSquares",
    "PortfolioOptimizationTask",
    "RatingExample",
    "ReturnSample",
    "SVMTask",
    "SequenceExample",
    "SupervisedExample",
    "Task",
    "catx_closed_form_final",
    "catx_closed_form_iterates",
    "create_task",
    "dot_product",
    "feature_dimension",
    "is_registered",
    "log1p_exp",
    "register_task",
    "scale_and_add",
    "sigmoid",
    "task_names",
    "unregister_task",
]
