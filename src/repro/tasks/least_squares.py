"""Least-squares tasks, including the paper's 1-D CA-TX example.

Example 2.1 / 3.1 of the paper uses the simplest possible least-squares
problem — ``min_w 0.5 * sum_i (w * x_i - y_i)^2`` with all ``x_i = 1`` and the
labels split half +1 / half -1 — to show how clustered orderings slow IGD
down.  :class:`OneDimensionalLeastSquares` implements exactly that problem,
and :func:`catx_closed_form_iterates` reproduces the closed-form dynamics from
Appendix C so tests can cross-check the simulated IGD against theory.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..core.model import Model
from ..core.proximal import IdentityProximal, ProximalOperator
from ..db.types import Row
from .base import ExampleBatch, LinearModelTask, SupervisedExample, dot_product, scale_and_add


def _squared_error_batch_loss(task: LinearModelTask, model: Model, batch: ExampleBatch) -> float:
    residuals = batch.decision_values(model["w"]) - batch.y
    return float(0.5 * np.sum(residuals * residuals))


def _squared_error_igd_chunk(
    task: LinearModelTask,
    model: Model,
    batch: ExampleBatch,
    alphas: np.ndarray,
    proximal: ProximalOperator,
) -> None:
    w = model["w"]
    y = batch.y
    apply_proximal = not isinstance(proximal, IdentityProximal)
    for i in range(batch.length):
        residual = batch.row_dot(w, i) - y[i]
        batch.add_scaled_row(w, i, -(alphas[i] * residual))
        if apply_proximal:
            proximal.apply(model, alphas[i])


def _squared_error_minibatch_step(
    task: LinearModelTask,
    model: Model,
    batch: ExampleBatch,
    start: int,
    stop: int,
    alpha: float,
) -> None:
    w = model["w"]
    residuals = batch.decision_values(w, start, stop) - batch.y[start:stop]
    batch.add_scaled_rows(w, (-alpha / (stop - start)) * residuals, start, stop)


class OneDimensionalLeastSquares(LinearModelTask):
    """``f_i(w) = 0.5 * (w * x_i - y_i)^2`` with scalar w (the CA-TX problem)."""

    name = "least_squares_1d"

    def __init__(
        self,
        *,
        feature_column: str = "x",
        label_column: str = "y",
        proximal: ProximalOperator | None = None,
    ):
        super().__init__(
            1, feature_column=feature_column, label_column=label_column, proximal=proximal
        )

    def example_from_row(self, row: Row | Mapping[str, Any]) -> SupervisedExample:
        return SupervisedExample(float(row[self.feature_column]), float(row[self.label_column]))

    def gradient_step(self, model: Model, example: SupervisedExample, alpha: float) -> None:
        w = model["w"]
        x = float(example.features)
        residual = w[0] * x - example.label
        w[0] -= alpha * residual * x

    def loss(self, model: Model, example: SupervisedExample) -> float:
        w = model["w"]
        x = float(example.features)
        residual = w[0] * x - example.label
        return 0.5 * residual * residual

    def predict(self, model: Model, example: SupervisedExample) -> float:
        return float(model["w"][0] * float(example.features))

    # ------------------------------------------------- batched API (scalar x)
    batch_loss = _squared_error_batch_loss
    igd_chunk = _squared_error_igd_chunk
    minibatch_step = _squared_error_minibatch_step


class LinearRegressionTask(LinearModelTask):
    """General d-dimensional least squares: ``f_i(w) = 0.5 * (w.x_i - y_i)^2``."""

    name = "least_squares"

    def gradient_step(self, model: Model, example: SupervisedExample, alpha: float) -> None:
        w = model["w"]
        residual = dot_product(w, example.features) - example.label
        scale_and_add(w, example.features, -alpha * residual)

    def loss(self, model: Model, example: SupervisedExample) -> float:
        residual = dot_product(model["w"], example.features) - example.label
        return 0.5 * residual * residual

    def predict(self, model: Model, example: SupervisedExample) -> float:
        return dot_product(model["w"], example.features)

    # ----------------------------------------------------------- batched API
    batch_loss = _squared_error_batch_loss
    igd_chunk = _squared_error_igd_chunk
    minibatch_step = _squared_error_minibatch_step


def catx_closed_form_iterates(
    labels: Sequence[float], w0: float, alpha: float
) -> np.ndarray:
    """Closed-form IGD iterates for the CA-TX problem (Appendix C).

    Given a fixed visit order encoded by ``labels`` (the label of the example
    seen at each step) and a constant step size ``alpha``, the dynamical
    system ``w_{k+1} = w_k - alpha * (w_k - y_{sigma(k)})`` unfolds to::

        w_{k+1} = (1 - alpha)^{k+1} w_0 + alpha * sum_{j=0..k} (1-alpha)^{k-j} y_{sigma(j)}

    Returns the array ``[w_0, w_1, ..., w_m]`` of length ``len(labels) + 1``.
    """
    labels = np.asarray(labels, dtype=np.float64)
    iterates = np.empty(labels.size + 1)
    iterates[0] = w0
    w = float(w0)
    for k, y in enumerate(labels):
        w = w - alpha * (w - float(y))
        iterates[k + 1] = w
    return iterates


def catx_closed_form_final(labels: Sequence[float], w0: float, alpha: float) -> float:
    """Direct evaluation of the unfolded closed form (no recursion).

    Used by tests to verify that the recursive simulation and the analytic
    expression from Appendix C agree.
    """
    labels = np.asarray(labels, dtype=np.float64)
    k = labels.size
    powers = (1.0 - alpha) ** np.arange(k - 1, -1, -1)
    return float((1.0 - alpha) ** k * w0 + alpha * np.dot(powers, labels))
