"""Low-rank matrix factorisation (the "LMF" recommendation task).

Objective (Figure 1B): ``sum_{(i,j) in Omega} (L_i . R_j - M_ij)^2 +
mu * ||L, R||_F^2`` where ``M`` is observed only on the sparse index set
``Omega``.  The problem is not convex, but — as the paper notes — IGD still
solves it well in practice (this is the Gemulla-style SGD matrix
factorisation).  Each training example is a single observed entry
``(i, j, M_ij)``, so the data-access pattern is exactly one tuple per step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..core.model import Model
from ..core.proximal import IdentityProximal, ProximalOperator
from ..db.types import Row
from .base import Task


@dataclass(frozen=True)
class RatingExample:
    """One observed matrix entry."""

    row: int
    col: int
    value: float


class RatingBatch:
    """Columnar block of observed matrix entries (the LMF ExampleBatch)."""

    __slots__ = ("rows", "cols", "values", "length")

    def __init__(self, rows: np.ndarray, cols: np.ndarray, values: np.ndarray):
        self.rows = rows
        self.cols = cols
        self.values = values
        self.length = int(values.shape[0])

    def __len__(self) -> int:
        return self.length

    def take(self, indices) -> "RatingBatch":
        """Entry gather: the observed entries at ``indices``, in that order."""
        ordinals = np.asarray(indices, dtype=np.intp)
        return RatingBatch(self.rows[ordinals], self.cols[ordinals], self.values[ordinals])

    @classmethod
    def concat(cls, batches: "list[RatingBatch]") -> "RatingBatch":
        if len(batches) == 1:
            return batches[0]
        return cls(
            np.concatenate([batch.rows for batch in batches]),
            np.concatenate([batch.cols for batch in batches]),
            np.concatenate([batch.values for batch in batches]),
        )


class LowRankMatrixFactorizationTask(Task):
    """Factorise a partially observed matrix M ~ L @ R.T with rank ``rank``."""

    name = "low_rank_matrix_factorization"
    supports_batches = True

    def __init__(
        self,
        num_rows: int,
        num_cols: int,
        rank: int = 10,
        *,
        mu: float = 0.01,
        init_scale: float = 0.1,
        row_column: str = "row_id",
        col_column: str = "col_id",
        value_column: str = "rating",
        proximal: ProximalOperator | None = None,
    ):
        super().__init__(proximal)
        if num_rows <= 0 or num_cols <= 0:
            raise ValueError("matrix dimensions must be positive")
        if rank <= 0:
            raise ValueError("rank must be positive")
        if mu < 0:
            raise ValueError("mu must be non-negative")
        self.num_rows = num_rows
        self.num_cols = num_cols
        self.rank = rank
        self.mu = mu
        self.init_scale = init_scale
        self.row_column = row_column
        self.col_column = col_column
        self.value_column = value_column

    # -------------------------------------------------------------- interface
    def initial_model(self, rng: np.random.Generator | None = None) -> Model:
        """Random small factors: zero init would be a saddle point."""
        rng = rng or np.random.default_rng(0)
        left = rng.normal(scale=self.init_scale, size=(self.num_rows, self.rank))
        right = rng.normal(scale=self.init_scale, size=(self.num_cols, self.rank))
        return Model({"L": left, "R": right})

    def example_from_row(self, row: Row | Mapping[str, Any]) -> RatingExample:
        return RatingExample(
            row=int(row[self.row_column]),
            col=int(row[self.col_column]),
            value=float(row[self.value_column]),
        )

    def gradient_step(self, model: Model, example: RatingExample, alpha: float) -> None:
        left = model["L"]
        right = model["R"]
        li = left[example.row]
        rj = right[example.col]
        residual = float(np.dot(li, rj)) - example.value
        # Simultaneous update using the current (pre-update) factors.
        li_new = li - alpha * (residual * rj + self.mu * li)
        rj_new = rj - alpha * (residual * li + self.mu * rj)
        left[example.row] = li_new
        right[example.col] = rj_new

    def loss(self, model: Model, example: RatingExample) -> float:
        predicted = float(np.dot(model["L"][example.row], model["R"][example.col]))
        residual = predicted - example.value
        return residual * residual

    def predict(self, model: Model, example: RatingExample) -> float:
        return float(np.dot(model["L"][example.row], model["R"][example.col]))

    # ----------------------------------------------------------- batched API
    def batch_from_chunk(self, chunk) -> RatingBatch | None:
        rows = chunk.column(self.row_column)
        cols = chunk.column(self.col_column)
        values = chunk.column(self.value_column)
        if rows.dtype == object or cols.dtype == object or values.dtype == object:
            return None
        return RatingBatch(
            np.asarray(rows, dtype=np.intp),
            np.asarray(cols, dtype=np.intp),
            np.asarray(values, dtype=np.float64),
        )

    def batch_loss(self, model: Model, batch: RatingBatch) -> float:
        predicted = np.einsum(
            "ij,ij->i", model["L"][batch.rows], model["R"][batch.cols]
        )
        residuals = predicted - batch.values
        return float(np.sum(residuals * residuals))

    def igd_chunk(
        self, model: Model, batch: RatingBatch, alphas: np.ndarray, proximal: ProximalOperator
    ) -> None:
        left = model["L"]
        right = model["R"]
        mu = self.mu
        rows, cols, values = batch.rows, batch.cols, batch.values
        apply_proximal = not isinstance(proximal, IdentityProximal)
        for i in range(batch.length):
            r = rows[i]
            c = cols[i]
            li = left[r]
            rj = right[c]
            residual = float(np.dot(li, rj)) - values[i]
            alpha = alphas[i]
            # Simultaneous update using the current (pre-update) factors.
            li_new = li - alpha * (residual * rj + mu * li)
            rj_new = rj - alpha * (residual * li + mu * rj)
            left[r] = li_new
            right[c] = rj_new
            if apply_proximal:
                proximal.apply(model, alpha)

    def minibatch_step(
        self, model: Model, batch: RatingBatch, start: int, stop: int, alpha: float
    ) -> None:
        left = model["L"]
        right = model["R"]
        rows = batch.rows[start:stop]
        cols = batch.cols[start:stop]
        values = batch.values[start:stop]
        li = left[rows]
        rj = right[cols]
        residuals = np.einsum("ij,ij->i", li, rj) - values
        coefficient = alpha / (stop - start)
        gradient_left = residuals[:, None] * rj + self.mu * li
        gradient_right = residuals[:, None] * li + self.mu * rj
        # Duplicate row/col indices within a mini-batch must accumulate.
        np.add.at(left, rows, -coefficient * gradient_left)
        np.add.at(right, cols, -coefficient * gradient_right)

    # ---------------------------------------------------------------- helpers
    def regularization_penalty(self, model: Model) -> float:
        """The ``mu * ||L, R||_F^2`` term of the full objective."""
        left = model["L"]
        right = model["R"]
        return self.mu * float(np.sum(left * left) + np.sum(right * right))

    def full_objective(self, model: Model, examples) -> float:
        """Data term plus the Frobenius regulariser."""
        return self.total_loss(model, examples) + self.regularization_penalty(model)

    def reconstruction_rmse(self, model: Model, examples) -> float:
        examples = list(examples)
        if not examples:
            return 0.0
        squared = sum(self.loss(model, example) for example in examples)
        return float(np.sqrt(squared / len(examples)))
