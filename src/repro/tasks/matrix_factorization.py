"""Low-rank matrix factorisation (the "LMF" recommendation task).

Objective (Figure 1B): ``sum_{(i,j) in Omega} (L_i . R_j - M_ij)^2 +
mu * ||L, R||_F^2`` where ``M`` is observed only on the sparse index set
``Omega``.  The problem is not convex, but — as the paper notes — IGD still
solves it well in practice (this is the Gemulla-style SGD matrix
factorisation).  Each training example is a single observed entry
``(i, j, M_ij)``, so the data-access pattern is exactly one tuple per step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..core.model import Model
from ..core.proximal import ProximalOperator
from ..db.types import Row
from .base import Task


@dataclass(frozen=True)
class RatingExample:
    """One observed matrix entry."""

    row: int
    col: int
    value: float


class LowRankMatrixFactorizationTask(Task):
    """Factorise a partially observed matrix M ~ L @ R.T with rank ``rank``."""

    name = "low_rank_matrix_factorization"

    def __init__(
        self,
        num_rows: int,
        num_cols: int,
        rank: int = 10,
        *,
        mu: float = 0.01,
        init_scale: float = 0.1,
        row_column: str = "row_id",
        col_column: str = "col_id",
        value_column: str = "rating",
        proximal: ProximalOperator | None = None,
    ):
        super().__init__(proximal)
        if num_rows <= 0 or num_cols <= 0:
            raise ValueError("matrix dimensions must be positive")
        if rank <= 0:
            raise ValueError("rank must be positive")
        if mu < 0:
            raise ValueError("mu must be non-negative")
        self.num_rows = num_rows
        self.num_cols = num_cols
        self.rank = rank
        self.mu = mu
        self.init_scale = init_scale
        self.row_column = row_column
        self.col_column = col_column
        self.value_column = value_column

    # -------------------------------------------------------------- interface
    def initial_model(self, rng: np.random.Generator | None = None) -> Model:
        """Random small factors: zero init would be a saddle point."""
        rng = rng or np.random.default_rng(0)
        left = rng.normal(scale=self.init_scale, size=(self.num_rows, self.rank))
        right = rng.normal(scale=self.init_scale, size=(self.num_cols, self.rank))
        return Model({"L": left, "R": right})

    def example_from_row(self, row: Row | Mapping[str, Any]) -> RatingExample:
        return RatingExample(
            row=int(row[self.row_column]),
            col=int(row[self.col_column]),
            value=float(row[self.value_column]),
        )

    def gradient_step(self, model: Model, example: RatingExample, alpha: float) -> None:
        left = model["L"]
        right = model["R"]
        li = left[example.row]
        rj = right[example.col]
        residual = float(np.dot(li, rj)) - example.value
        # Simultaneous update using the current (pre-update) factors.
        li_new = li - alpha * (residual * rj + self.mu * li)
        rj_new = rj - alpha * (residual * li + self.mu * rj)
        left[example.row] = li_new
        right[example.col] = rj_new

    def loss(self, model: Model, example: RatingExample) -> float:
        predicted = float(np.dot(model["L"][example.row], model["R"][example.col]))
        residual = predicted - example.value
        return residual * residual

    def predict(self, model: Model, example: RatingExample) -> float:
        return float(np.dot(model["L"][example.row], model["R"][example.col]))

    # ---------------------------------------------------------------- helpers
    def regularization_penalty(self, model: Model) -> float:
        """The ``mu * ||L, R||_F^2`` term of the full objective."""
        left = model["L"]
        right = model["R"]
        return self.mu * float(np.sum(left * left) + np.sum(right * right))

    def full_objective(self, model: Model, examples) -> float:
        """Data term plus the Frobenius regulariser."""
        return self.total_loss(model, examples) + self.regularization_penalty(model)

    def reconstruction_rmse(self, model: Model, examples) -> float:
        examples = list(examples)
        if not examples:
            return 0.0
        squared = sum(self.loss(model, example) for example in examples)
        return float(np.sqrt(squared / len(examples)))
