"""Logistic regression task (the "LR" of the paper).

Objective: ``sum_i log(1 + exp(-y_i * w . x_i)) + mu * ||w||_1`` with labels
``y_i in {-1, +1}``.  The gradient step is the C snippet from Figure 4 of the
paper, transcribed:

.. code-block:: c

    wx  = Dot_Product(w, e.x);
    sig = Sigmoid(-wx * e.y);
    c   = stepsize * e.y * sig;
    Scale_And_Add(w, e.x, c);
"""

from __future__ import annotations

import math

from ..core.model import Model
from ..core.proximal import L1Proximal, ProximalOperator
from .base import LinearModelTask, SupervisedExample, dot_product, scale_and_add


def sigmoid(value: float) -> float:
    """Numerically stable logistic function."""
    if value >= 0:
        return 1.0 / (1.0 + math.exp(-value))
    exp_value = math.exp(value)
    return exp_value / (1.0 + exp_value)


def log1p_exp(value: float) -> float:
    """Numerically stable ``log(1 + exp(value))``."""
    if value > 35.0:
        return value
    if value < -35.0:
        return 0.0
    return math.log1p(math.exp(value))


class LogisticRegressionTask(LinearModelTask):
    """Binary logistic regression with optional L1 regularisation."""

    name = "logistic_regression"

    def __init__(
        self,
        dimension: int,
        *,
        mu: float = 0.0,
        feature_column: str = "vec",
        label_column: str = "label",
        proximal: ProximalOperator | None = None,
    ):
        if proximal is None and mu > 0:
            proximal = L1Proximal(mu)
        super().__init__(
            dimension,
            feature_column=feature_column,
            label_column=label_column,
            proximal=proximal,
        )
        self.mu = mu

    def gradient_step(self, model: Model, example: SupervisedExample, alpha: float) -> None:
        w = model["w"]
        wx = dot_product(w, example.features)
        sig = sigmoid(-wx * example.label)
        c = alpha * example.label * sig
        scale_and_add(w, example.features, c)

    def loss(self, model: Model, example: SupervisedExample) -> float:
        wx = dot_product(model["w"], example.features)
        return log1p_exp(-example.label * wx)

    def predict(self, model: Model, example: SupervisedExample) -> float:
        """Probability that the label is +1."""
        wx = dot_product(model["w"], example.features)
        return sigmoid(wx)

    def classify(self, model: Model, example: SupervisedExample) -> int:
        """Hard label in {-1, +1}."""
        return 1 if self.predict(model, example) >= 0.5 else -1
