"""Logistic regression task (the "LR" of the paper).

Objective: ``sum_i log(1 + exp(-y_i * w . x_i)) + mu * ||w||_1`` with labels
``y_i in {-1, +1}``.  The gradient step is the C snippet from Figure 4 of the
paper, transcribed:

.. code-block:: c

    wx  = Dot_Product(w, e.x);
    sig = Sigmoid(-wx * e.y);
    c   = stepsize * e.y * sig;
    Scale_And_Add(w, e.x, c);
"""

from __future__ import annotations

import math

import numpy as np

from ..core.model import Model
from ..core.proximal import IdentityProximal, L1Proximal, ProximalOperator
from .base import ExampleBatch, LinearModelTask, SupervisedExample, dot_product, scale_and_add


def sigmoid(value: float) -> float:
    """Numerically stable logistic function."""
    if value >= 0:
        return 1.0 / (1.0 + math.exp(-value))
    exp_value = math.exp(value)
    return exp_value / (1.0 + exp_value)


def log1p_exp(value: float) -> float:
    """Numerically stable ``log(1 + exp(value))``."""
    if value > 35.0:
        return value
    if value < -35.0:
        return 0.0
    return math.log1p(math.exp(value))


def sigmoid_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`sigmoid` with the same stable branch structure."""
    out = np.empty_like(values)
    positive = values >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-values[positive]))
    exp_values = np.exp(values[~positive])
    out[~positive] = exp_values / (1.0 + exp_values)
    return out


def log1p_exp_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`log1p_exp` with the same clamping thresholds."""
    out = np.where(values > 35.0, values, 0.0)
    middle = (values <= 35.0) & (values >= -35.0)
    out[middle] = np.log1p(np.exp(values[middle]))
    return out


class LogisticRegressionTask(LinearModelTask):
    """Binary logistic regression with optional L1 regularisation."""

    name = "logistic_regression"

    def __init__(
        self,
        dimension: int,
        *,
        mu: float = 0.0,
        feature_column: str = "vec",
        label_column: str = "label",
        proximal: ProximalOperator | None = None,
    ):
        if proximal is None and mu > 0:
            proximal = L1Proximal(mu)
        super().__init__(
            dimension,
            feature_column=feature_column,
            label_column=label_column,
            proximal=proximal,
        )
        self.mu = mu

    def gradient_step(self, model: Model, example: SupervisedExample, alpha: float) -> None:
        w = model["w"]
        wx = dot_product(w, example.features)
        sig = sigmoid(-wx * example.label)
        c = alpha * example.label * sig
        scale_and_add(w, example.features, c)

    def loss(self, model: Model, example: SupervisedExample) -> float:
        wx = dot_product(model["w"], example.features)
        return log1p_exp(-example.label * wx)

    def predict(self, model: Model, example: SupervisedExample) -> float:
        """Probability that the label is +1."""
        wx = dot_product(model["w"], example.features)
        return sigmoid(wx)

    def classify(self, model: Model, example: SupervisedExample) -> int:
        """Hard label in {-1, +1}."""
        return 1 if self.predict(model, example) >= 0.5 else -1

    # ----------------------------------------------------------- batched API
    def batch_loss(self, model: Model, batch: ExampleBatch) -> float:
        decisions = batch.decision_values(model["w"])
        return float(np.sum(log1p_exp_array(-batch.y * decisions)))

    def batch_classify_decisions(self, decisions: np.ndarray) -> np.ndarray:
        # Mirror the scalar classify threshold (sigmoid(wx) >= 0.5) exactly:
        # for wx an ulp below zero the rounded sigmoid can still equal 0.5,
        # where a plain wx >= 0 test would disagree with the per-tuple path.
        return np.where(sigmoid_array(decisions) >= 0.5, 1, -1)

    def igd_chunk(
        self, model: Model, batch: ExampleBatch, alphas: np.ndarray, proximal: ProximalOperator
    ) -> None:
        w = model["w"]
        y = batch.y
        apply_proximal = not isinstance(proximal, IdentityProximal)
        for i in range(batch.length):
            wx = batch.row_dot(w, i)
            label = y[i]
            c = alphas[i] * label * sigmoid(-wx * label)
            batch.add_scaled_row(w, i, c)
            if apply_proximal:
                proximal.apply(model, alphas[i])

    def minibatch_step(
        self, model: Model, batch: ExampleBatch, start: int, stop: int, alpha: float
    ) -> None:
        w = model["w"]
        y = batch.y[start:stop]
        decisions = batch.decision_values(w, start, stop)
        gradients = y * sigmoid_array(-decisions * y)
        batch.add_scaled_rows(w, (alpha / (stop - start)) * gradients, start, stop)
