"""Kalman-filter state smoothing as an IGD task.

Figure 1B lists the objective::

    sum_{t=1..T} ||C w_t - f(y_t)||_2^2 + ||w_t - A w_{t-1}||_2^2

i.e. fit a sequence of latent states ``w_1 .. w_T`` to noisy observations
``y_t`` under linear dynamics ``A`` and observation model ``C``.  The model is
the whole state trajectory (a T x d matrix); each training example is one time
step ``(t, y_t)``, and its gradient touches ``w_t`` and ``w_{t-1}`` only — so
the tuple-at-a-time access pattern is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..core.model import Model
from ..core.proximal import ProximalOperator
from ..db.types import Row
from .base import PerExampleChunkTask


@dataclass(frozen=True)
class ObservationExample:
    """One observed time step."""

    time_index: int
    observation: np.ndarray


class KalmanSmoothingTask(PerExampleChunkTask):
    """Least-squares state smoothing under linear dynamics.

    Chunked execution comes from :class:`~repro.tasks.base.PerExampleChunkTask`:
    observation rows are decoded once per table version and the exact
    per-example gradient steps replay over the cached examples, so every
    backend's chunk path is bit-for-bit the per-tuple path.
    """

    name = "kalman"

    def __init__(
        self,
        num_steps: int,
        state_dim: int,
        obs_dim: int | None = None,
        *,
        dynamics: np.ndarray | None = None,
        observation_matrix: np.ndarray | None = None,
        smoothing_weight: float = 1.0,
        time_column: str = "t",
        observation_column: str = "y",
        proximal: ProximalOperator | None = None,
    ):
        super().__init__(proximal)
        if num_steps <= 1:
            raise ValueError("need at least two time steps")
        if state_dim <= 0:
            raise ValueError("state dimension must be positive")
        obs_dim = obs_dim or state_dim
        self.num_steps = num_steps
        self.state_dim = state_dim
        self.obs_dim = obs_dim
        self.dynamics = (
            np.asarray(dynamics, dtype=np.float64)
            if dynamics is not None
            else np.eye(state_dim)
        )
        self.observation_matrix = (
            np.asarray(observation_matrix, dtype=np.float64)
            if observation_matrix is not None
            else np.eye(obs_dim, state_dim)
        )
        if self.dynamics.shape != (state_dim, state_dim):
            raise ValueError("dynamics matrix A must be (state_dim, state_dim)")
        if self.observation_matrix.shape != (obs_dim, state_dim):
            raise ValueError("observation matrix C must be (obs_dim, state_dim)")
        self.smoothing_weight = smoothing_weight
        self.time_column = time_column
        self.observation_column = observation_column

    # -------------------------------------------------------------- interface
    def initial_model(self, rng: np.random.Generator | None = None) -> Model:
        return Model({"states": np.zeros((self.num_steps, self.state_dim))})

    def example_from_row(self, row: Row | Mapping[str, Any]) -> ObservationExample:
        observation = np.asarray(row[self.observation_column], dtype=np.float64)
        if observation.ndim == 0:
            observation = observation.reshape(1)
        return ObservationExample(time_index=int(row[self.time_column]), observation=observation)

    def gradient_step(self, model: Model, example: ObservationExample, alpha: float) -> None:
        states = model["states"]
        t = example.time_index
        c_matrix = self.observation_matrix
        a_matrix = self.dynamics

        # Observation term gradient w.r.t. w_t: 2 C^T (C w_t - y_t)
        observation_residual = c_matrix @ states[t] - example.observation
        grad_t = 2.0 * c_matrix.T @ observation_residual

        if t >= 1:
            dynamics_residual = states[t] - a_matrix @ states[t - 1]
            grad_t = grad_t + 2.0 * self.smoothing_weight * dynamics_residual
            grad_prev = -2.0 * self.smoothing_weight * a_matrix.T @ dynamics_residual
            states[t - 1] -= alpha * grad_prev
        states[t] -= alpha * grad_t

    def loss(self, model: Model, example: ObservationExample) -> float:
        states = model["states"]
        t = example.time_index
        observation_residual = self.observation_matrix @ states[t] - example.observation
        value = float(np.dot(observation_residual, observation_residual))
        if t >= 1:
            dynamics_residual = states[t] - self.dynamics @ states[t - 1]
            value += self.smoothing_weight * float(np.dot(dynamics_residual, dynamics_residual))
        return value

    def predict(self, model: Model, example: ObservationExample) -> np.ndarray:
        """The smoothed state estimate at the example's time step."""
        return model["states"][example.time_index].copy()

    def smoothed_trajectory(self, model: Model) -> np.ndarray:
        return model["states"].copy()
