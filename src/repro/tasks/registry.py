"""Task registry: maps task names to constructors.

The SQL front end (``repro.frontend``) resolves the task to train through this
registry, so adding a new analytics technique to the system is exactly the
paper's claim — implement a :class:`~repro.tasks.base.Task` subclass (a few
dozen lines) and register it; every other part of the architecture (ordering,
parallelism, sampling, convergence, the SQL interface) is reused unchanged.
"""

from __future__ import annotations

from typing import Callable

from .base import Task
from .crf import ConditionalRandomFieldTask
from .kalman import KalmanSmoothingTask
from .lasso import LassoTask
from .least_squares import LinearRegressionTask, OneDimensionalLeastSquares
from .logistic_regression import LogisticRegressionTask
from .matrix_factorization import LowRankMatrixFactorizationTask
from .portfolio import PortfolioOptimizationTask
from .svm import SVMTask

TaskFactory = Callable[..., Task]

_REGISTRY: dict[str, TaskFactory] = {}


def register_task(name: str, factory: TaskFactory) -> None:
    """Register a task constructor under a (case-insensitive) name."""
    _REGISTRY[name.lower()] = factory


def unregister_task(name: str) -> None:
    _REGISTRY.pop(name.lower(), None)


def task_names() -> list[str]:
    """All registered task names, sorted."""
    return sorted(_REGISTRY)


def is_registered(name: str) -> bool:
    return name.lower() in _REGISTRY


def create_task(name: str, **kwargs) -> Task:
    """Instantiate a registered task by name."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown task {name!r}; registered tasks: {task_names()}"
        ) from None
    return factory(**kwargs)


# Built-in tasks (the zoo of Figure 1B plus the CA-TX least-squares problems).
register_task("logistic_regression", LogisticRegressionTask)
register_task("lr", LogisticRegressionTask)
register_task("svm", SVMTask)
register_task("classification", SVMTask)
register_task("least_squares", LinearRegressionTask)
register_task("linear_regression", LinearRegressionTask)
register_task("least_squares_1d", OneDimensionalLeastSquares)
register_task("lasso", LassoTask)
register_task("lmf", LowRankMatrixFactorizationTask)
register_task("matrix_factorization", LowRankMatrixFactorizationTask)
register_task("crf", ConditionalRandomFieldTask)
register_task("kalman", KalmanSmoothingTask)
register_task("portfolio", PortfolioOptimizationTask)
