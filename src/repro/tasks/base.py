"""Task interface: objective, per-example gradient step, and loss.

Every analytics technique Bismarck supports (Figure 1B of the paper) is a
:class:`Task`: it knows how to build its initial model, how to turn a database
row into a training example, how to take one incremental gradient step on one
example (the body of the UDA ``transition`` function), and how to evaluate its
loss on one example (used by the loss UDA and the stopping rules).

The code-snippet comparison in Figure 4 of the paper — LR and SVM differ in a
handful of lines inside ``transition`` — is mirrored here: the task subclasses
are tiny, and everything else (ordering, parallelism, sampling, convergence)
is shared.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np

from ..core.model import Model
from ..core.proximal import IdentityProximal, ProximalOperator
from ..db.types import Row

# ---------------------------------------------------------------------------
# Sparse/dense feature helpers (the Dot_Product / Scale_And_Add of Figure 4)
# ---------------------------------------------------------------------------
FeatureVector = "np.ndarray | Mapping[int, float]"


def dot_product(weights: np.ndarray, features: Any) -> float:
    """``w . x`` for dense (ndarray) or sparse (index->value mapping) features."""
    if isinstance(features, Mapping):
        return float(sum(weights[index] * value for index, value in features.items()))
    return float(np.dot(weights, features))


def scale_and_add(weights: np.ndarray, features: Any, scalar: float) -> None:
    """``w += scalar * x`` in place, for dense or sparse features."""
    if isinstance(features, Mapping):
        for index, value in features.items():
            weights[index] += scalar * value
    else:
        weights += scalar * features


def feature_dimension(features: Any) -> int:
    """Dimensionality implied by a feature vector (max index + 1 for sparse)."""
    if isinstance(features, Mapping):
        return (max(features) + 1) if features else 0
    return int(np.asarray(features).shape[0])


class Task:
    """Base class for analytics tasks solved by IGD."""

    #: Short machine-readable name, used by the SQL front end and registries.
    name: str = "task"

    def __init__(self, proximal: ProximalOperator | None = None):
        self.proximal: ProximalOperator = proximal or IdentityProximal()

    # -------------------------------------------------------------- interface
    def initial_model(self, rng: np.random.Generator | None = None) -> Model:
        """Build the initial model state (typically zeros)."""
        raise NotImplementedError

    def example_from_row(self, row: Row | Mapping[str, Any]) -> Any:
        """Convert a database row into this task's example representation."""
        raise NotImplementedError

    def gradient_step(self, model: Model, example: Any, alpha: float) -> None:
        """One incremental gradient step on ``example`` with step size ``alpha``.

        Mutates ``model`` in place; the proximal operator is applied by the
        caller (the IGD UDA), not here, so the same task works with different
        regularisers.
        """
        raise NotImplementedError

    def loss(self, model: Model, example: Any) -> float:
        """Per-example loss f(w, z_i) (without the P(w) term)."""
        raise NotImplementedError

    def predict(self, model: Model, example: Any) -> Any:
        """Optional prediction for one example."""
        raise NotImplementedError(f"{type(self).__name__} does not implement predict()")

    # --------------------------------------------------------------- helpers
    def total_loss(self, model: Model, examples: Iterable[Any]) -> float:
        """Sum of per-example losses (the data term of the objective)."""
        return float(sum(self.loss(model, example) for example in examples))

    def objective(self, model: Model, examples: Iterable[Any]) -> float:
        """Full objective: data term plus the proximal operator's penalty."""
        return self.total_loss(model, examples) + self.proximal.penalty(model)

    def batch_gradient(self, model: Model, examples: Iterable[Any]) -> Model:
        """Full (batch) gradient as a Model with the same structure.

        Default implementation accumulates the effect of per-example IGD steps
        with a unit step size, which equals the analytic gradient for tasks
        whose gradient_step is a plain ``w -= alpha * grad`` update.  Tasks
        with conditional updates (e.g. SVM's hinge) inherit this behaviour
        correctly because the subgradient is what the step applies.
        """
        gradient = model.zeros_like()
        probe = model.copy()
        for example in examples:
            snapshot = model.copy()
            self.gradient_step(snapshot, example, 1.0)
            # gradient contribution = -(w_after - w_before) for alpha = 1
            for component_name, array in gradient.items():
                array -= snapshot[component_name] - model[component_name]
        del probe
        return gradient

    def describe(self) -> str:
        return self.name


class SupervisedExample:
    """A generic (features, label) example used by LR, SVM and least squares."""

    __slots__ = ("features", "label")

    def __init__(self, features: Any, label: float):
        self.features = features
        self.label = float(label)

    def __repr__(self) -> str:
        return f"SupervisedExample(label={self.label}, features={type(self.features).__name__})"


class LinearModelTask(Task):
    """Shared plumbing for tasks whose model is a single coefficient vector."""

    def __init__(
        self,
        dimension: int,
        *,
        feature_column: str = "vec",
        label_column: str = "label",
        proximal: ProximalOperator | None = None,
    ):
        super().__init__(proximal)
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        self.dimension = dimension
        self.feature_column = feature_column
        self.label_column = label_column

    def initial_model(self, rng: np.random.Generator | None = None) -> Model:
        return Model({"w": np.zeros(self.dimension)})

    def example_from_row(self, row: Row | Mapping[str, Any]) -> SupervisedExample:
        features = row[self.feature_column]
        label = row[self.label_column]
        return SupervisedExample(features, label)

    def decision_value(self, model: Model, example: SupervisedExample) -> float:
        return dot_product(model["w"], example.features)
